//! Discrete system state: molecule counts per species.

use std::fmt;
use std::ops::Index;

use serde::{Deserialize, Serialize};

use crate::error::CrnError;
use crate::reaction::Reaction;
use crate::species::SpeciesId;

/// The discrete state of a reaction network: one non-negative molecule count
/// per species, indexed by [`SpeciesId`].
///
/// A state is just a dense vector of counts; it does not hold a reference to
/// the network it belongs to, so the caller is responsible for using it with
/// a network of compatible size (checked operations return
/// [`CrnError::SpeciesOutOfRange`] when they can detect a mismatch).
///
/// # Example
///
/// ```
/// use crn::{SpeciesId, State};
///
/// let mut state = State::zero(3);
/// state.set(SpeciesId::from_index(0), 15);
/// state.set(SpeciesId::from_index(1), 25);
/// assert_eq!(state.count(SpeciesId::from_index(0)), 15);
/// assert_eq!(state.total(), 40);
/// ```
#[derive(Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct State {
    counts: Vec<u64>,
}

impl Clone for State {
    fn clone(&self) -> Self {
        State {
            counts: self.counts.clone(),
        }
    }

    /// Copies `source` into `self` without reallocating when capacity
    /// suffices. The parallel ensemble engine re-primes one state buffer per
    /// worker through this, so an `N`-trial run performs `O(workers)` state
    /// allocations instead of `O(N)`.
    fn clone_from(&mut self, source: &Self) {
        self.counts.clone_from(&source.counts);
    }
}

impl State {
    /// Creates a state with `species_len` species, all at count zero.
    pub fn zero(species_len: usize) -> Self {
        State {
            counts: vec![0; species_len],
        }
    }

    /// Creates a state from an explicit vector of counts.
    pub fn from_counts(counts: Vec<u64>) -> Self {
        State { counts }
    }

    /// Returns the number of species tracked by this state.
    pub fn species_len(&self) -> usize {
        self.counts.len()
    }

    /// Returns the count of the given species.
    ///
    /// # Panics
    ///
    /// Panics if `species` is out of range for this state.
    pub fn count(&self, species: SpeciesId) -> u64 {
        self.counts[species.index()]
    }

    /// Returns the count of the given species, or `None` if the species
    /// index is out of range.
    pub fn try_count(&self, species: SpeciesId) -> Option<u64> {
        self.counts.get(species.index()).copied()
    }

    /// Sets the count of the given species.
    ///
    /// # Panics
    ///
    /// Panics if `species` is out of range for this state.
    pub fn set(&mut self, species: SpeciesId, count: u64) {
        self.counts[species.index()] = count;
    }

    /// Adds `delta` to the count of the given species, saturating at zero.
    ///
    /// # Panics
    ///
    /// Panics if `species` is out of range for this state.
    pub fn add(&mut self, species: SpeciesId, delta: i64) {
        let slot = &mut self.counts[species.index()];
        if delta >= 0 {
            *slot = slot.saturating_add(delta as u64);
        } else {
            *slot = slot.saturating_sub(delta.unsigned_abs());
        }
    }

    /// Returns the counts as a slice indexed by species index.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Returns the total number of molecules across all species.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Returns `true` if the reaction's reactant multiset is available in
    /// this state (i.e. the reaction could fire).
    pub fn can_fire(&self, reaction: &Reaction) -> bool {
        reaction.reactants().iter().all(|t| {
            self.counts
                .get(t.species.index())
                .is_some_and(|&c| c >= u64::from(t.coefficient))
        })
    }

    /// Applies one firing of `reaction` to this state in place.
    ///
    /// # Errors
    ///
    /// Returns [`CrnError::InsufficientReactants`] if some reactant is not
    /// present in sufficient quantity and [`CrnError::SpeciesOutOfRange`] if
    /// the reaction references species beyond this state's length. On error
    /// the state is left unmodified.
    pub fn apply(&mut self, reaction: &Reaction) -> Result<(), CrnError> {
        for term in reaction.reactants().iter().chain(reaction.products()) {
            if term.species.index() >= self.counts.len() {
                return Err(CrnError::SpeciesOutOfRange {
                    index: term.species.index(),
                    len: self.counts.len(),
                });
            }
        }
        for term in reaction.reactants() {
            if self.counts[term.species.index()] < u64::from(term.coefficient) {
                return Err(CrnError::InsufficientReactants {
                    reaction: reaction.to_string(),
                });
            }
        }
        for term in reaction.reactants() {
            self.counts[term.species.index()] -= u64::from(term.coefficient);
        }
        for term in reaction.products() {
            self.counts[term.species.index()] += u64::from(term.coefficient);
        }
        Ok(())
    }

    /// Returns a copy of this state with one firing of `reaction` applied.
    ///
    /// # Errors
    ///
    /// See [`State::apply`].
    pub fn after(&self, reaction: &Reaction) -> Result<State, CrnError> {
        let mut next = self.clone();
        next.apply(reaction)?;
        Ok(next)
    }
}

impl Index<SpeciesId> for State {
    type Output = u64;

    fn index(&self, species: SpeciesId) -> &u64 {
        &self.counts[species.index()]
    }
}

impl FromIterator<u64> for State {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        State {
            counts: iter.into_iter().collect(),
        }
    }
}

impl Extend<u64> for State {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        self.counts.extend(iter);
    }
}

impl fmt::Display for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("[")?;
        for (i, c) in self.counts.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{c}")?;
        }
        f.write_str("]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reaction::ReactionTerm;

    fn s(i: usize) -> SpeciesId {
        SpeciesId::from_index(i)
    }

    fn reaction(reactants: &[(usize, u32)], products: &[(usize, u32)], rate: f64) -> Reaction {
        Reaction::new(
            reactants
                .iter()
                .map(|&(i, c)| ReactionTerm::new(s(i), c))
                .collect(),
            products
                .iter()
                .map(|&(i, c)| ReactionTerm::new(s(i), c))
                .collect(),
            rate,
        )
        .unwrap()
    }

    #[test]
    fn paper_example_state_transition() {
        // S1 = [15, 25, 0]; firing a + b -> 2c gives S2 = [14, 24, 2].
        let mut state = State::from_counts(vec![15, 25, 0]);
        let r = reaction(&[(0, 1), (1, 1)], &[(2, 2)], 10.0);
        state.apply(&r).unwrap();
        assert_eq!(state.counts(), &[14, 24, 2]);
    }

    #[test]
    fn apply_fails_without_reactants_and_leaves_state_unchanged() {
        let mut state = State::from_counts(vec![1, 0]);
        let r = reaction(&[(0, 1), (1, 1)], &[], 1.0);
        assert!(!state.can_fire(&r));
        let err = state.apply(&r).unwrap_err();
        assert!(matches!(err, CrnError::InsufficientReactants { .. }));
        assert_eq!(state.counts(), &[1, 0]);
    }

    #[test]
    fn apply_detects_out_of_range_species() {
        let mut state = State::from_counts(vec![5]);
        let r = reaction(&[(0, 1)], &[(3, 1)], 1.0);
        let err = state.apply(&r).unwrap_err();
        assert!(matches!(err, CrnError::SpeciesOutOfRange { .. }));
        assert_eq!(state.counts(), &[5]);
    }

    #[test]
    fn after_returns_new_state() {
        let state = State::from_counts(vec![2, 0]);
        let r = reaction(&[(0, 2)], &[(1, 1)], 1.0);
        let next = state.after(&r).unwrap();
        assert_eq!(state.counts(), &[2, 0]);
        assert_eq!(next.counts(), &[0, 1]);
    }

    #[test]
    fn add_saturates_at_zero() {
        let mut state = State::zero(1);
        state.add(s(0), -5);
        assert_eq!(state.count(s(0)), 0);
        state.add(s(0), 3);
        assert_eq!(state.count(s(0)), 3);
    }

    #[test]
    fn indexing_and_totals() {
        let state: State = vec![1u64, 2, 3].into_iter().collect();
        assert_eq!(state[s(1)], 2);
        assert_eq!(state.total(), 6);
        assert_eq!(state.to_string(), "[1, 2, 3]");
    }

    #[test]
    fn try_count_handles_out_of_range() {
        let state = State::zero(2);
        assert_eq!(state.try_count(s(1)), Some(0));
        assert_eq!(state.try_count(s(5)), None);
    }
}
