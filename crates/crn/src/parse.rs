//! Textual reaction notation.
//!
//! The notation is one reaction per line:
//!
//! ```text
//! # comments start with `#`
//! a + 2 b -> 3 c @ 1.5e3      # trailing comments become the reaction label
//! e1 -> d1 @ 1
//! d1 + d2 -> 0 @ 1e6          # `0`, `∅` or an empty side mean "no species"
//! ```
//!
//! Coefficients may be written either as a separate token (`2 b`) or glued to
//! the species name (`2b`). Rates follow `@` and accept any `f64` literal.
//!
//! Parse errors report the 1-based line *and column* of the offending token,
//! so callers that accept networks over the wire (the `service` crate's
//! `POST /simulate` endpoint, the `stochsynth-cli` client) can point users at
//! the exact character that broke.

use crate::builder::CrnBuilder;
use crate::error::CrnError;
use crate::network::Crn;

/// Parses a whole network from text (one reaction per line).
///
/// # Errors
///
/// Returns [`CrnError::Parse`] describing the first offending line and the
/// column at which parsing failed.
pub fn parse_network(text: &str) -> Result<Crn, CrnError> {
    let mut builder = CrnBuilder::new();
    for (lineno, raw_line) in text.lines().enumerate() {
        let line_number = lineno + 1;
        let (content, comment) = split_comment(raw_line);
        let trimmed = content.trim();
        if trimmed.is_empty() {
            continue;
        }
        // 0-based char offset of the trimmed content within the raw line;
        // every inner error carries a *byte* offset within `trimmed`, which
        // `column_of` converts back to a 1-based character column.
        let leading_bytes = content.len() - content.trim_start().len();
        let base_chars = content[..leading_bytes].chars().count();
        parse_reaction_into(&mut builder, trimmed, comment).map_err(|(offset, message)| {
            CrnError::Parse {
                line: line_number,
                column: base_chars + trimmed[..offset.min(trimmed.len())].chars().count() + 1,
                message,
            }
        })?;
    }
    builder.build()
}

fn split_comment(line: &str) -> (&str, Option<&str>) {
    match line.find('#') {
        Some(pos) => (
            &line[..pos],
            Some(line[pos + 1..].trim()).filter(|c| !c.is_empty()),
        ),
        None => (line, None),
    }
}

/// Inner parse errors are `(byte offset within the trimmed content, message)`.
type SpannedError = (usize, String);

fn parse_reaction_into(
    builder: &mut CrnBuilder,
    content: &str,
    comment: Option<&str>,
) -> Result<(), SpannedError> {
    let (lhs_rhs, rate_text) = content
        .rsplit_once('@')
        .ok_or_else(|| (content.len(), "missing `@ rate`".to_string()))?;
    let rate_offset = lhs_rhs.len() + 1 + (rate_text.len() - rate_text.trim_start().len());
    let rate: f64 = rate_text
        .trim()
        .parse()
        .map_err(|_| (rate_offset, format!("invalid rate `{}`", rate_text.trim())))?;

    let (lhs, rhs) = lhs_rhs
        .split_once("->")
        .ok_or_else(|| (0, "missing `->`".to_string()))?;

    let reactants = parse_side(lhs, 0)?;
    let products = parse_side(rhs, lhs.len() + 2)?;

    let mut rb = builder.reaction().rate(rate);
    for (name, coeff, _) in &reactants {
        rb = rb.reactant_named(name, *coeff);
    }
    for (name, coeff, _) in &products {
        rb = rb.product_named(name, *coeff);
    }
    if let Some(label) = comment {
        rb = rb.label(label);
    }
    rb.add().map_err(|e| (0, e.to_string()))
}

/// Parses one side of a reaction into `(species name, coefficient, offset)`
/// triples; `side_offset` is the byte offset of `side` within the line
/// content, so term errors can report exact columns.
fn parse_side(side: &str, side_offset: usize) -> Result<Vec<(String, u32, usize)>, SpannedError> {
    let trimmed = side.trim();
    if trimmed.is_empty() || trimmed == "0" || trimmed == "∅" {
        return Ok(Vec::new());
    }
    let mut terms = Vec::new();
    let mut pos = side_offset;
    for piece in side.split('+') {
        let term = piece.trim();
        let term_offset = pos + (piece.len() - piece.trim_start().len());
        let (name, coeff) = parse_term(term).map_err(|message| (term_offset, message))?;
        terms.push((name, coeff, term_offset));
        pos += piece.len() + 1;
    }
    Ok(terms)
}

fn parse_term(term: &str) -> Result<(String, u32), String> {
    if term.is_empty() {
        return Err("empty term".to_string());
    }
    // Either "2 b", "2b", or "b".
    let mut parts = term.split_whitespace();
    let first = parts.next().ok_or_else(|| "empty term".to_string())?;
    if let Some(second) = parts.next() {
        if parts.next().is_some() {
            return Err(format!("too many tokens in term `{term}`"));
        }
        let coeff: u32 = first
            .parse()
            .map_err(|_| format!("invalid coefficient `{first}` in term `{term}`"))?;
        if coeff == 0 {
            return Err(format!("zero coefficient in term `{term}`"));
        }
        validate_name(second)?;
        return Ok((second.to_string(), coeff));
    }
    // Single token: split leading digits from the name if any.
    let digits_end = first
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(first.len());
    let (digits, name) = first.split_at(digits_end);
    if name.is_empty() {
        return Err(format!("term `{term}` has no species name"));
    }
    validate_name(name)?;
    let coeff = if digits.is_empty() {
        1
    } else {
        let c: u32 = digits
            .parse()
            .map_err(|_| format!("invalid coefficient `{digits}`"))?;
        if c == 0 {
            return Err(format!("zero coefficient in term `{term}`"));
        }
        c
    };
    Ok((name.to_string(), coeff))
}

fn validate_name(name: &str) -> Result<(), String> {
    let valid = name
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '\'');
    let starts_ok = name
        .chars()
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_');
    if valid && starts_ok {
        Ok(())
    } else {
        Err(format!("invalid species name `{name}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example_reaction() {
        let crn = parse_network("a + b -> 2 c @ 10").unwrap();
        assert_eq!(crn.species_len(), 3);
        let r = &crn.reactions()[0];
        assert_eq!(r.rate(), 10.0);
        assert_eq!(r.order(), 2);
        assert_eq!(r.product_coefficient(crn.species_id("c").unwrap()), 2);
    }

    #[test]
    fn parses_glued_coefficients() {
        let crn = parse_network("2e3 + x1 -> 2e1 @ 1e3").unwrap();
        // NOTE: `2e3` is the species `e3` with coefficient 2, not a float.
        let e3 = crn.species_id("e3").unwrap();
        assert_eq!(crn.reactions()[0].reactant_coefficient(e3), 2);
        assert_eq!(crn.reactions()[0].rate(), 1000.0);
    }

    #[test]
    fn parses_empty_product_side() {
        for notation in [
            "d1 + d2 -> 0 @ 1e6",
            "d1 + d2 -> ∅ @ 1e6",
            "d1 + d2 ->  @ 1e6",
        ] {
            let crn = parse_network(notation).unwrap();
            assert!(
                crn.reactions()[0].products().is_empty(),
                "notation: {notation}"
            );
        }
    }

    #[test]
    fn parses_source_reactions() {
        let crn = parse_network("0 -> a @ 0.5").unwrap();
        assert!(crn.reactions()[0].reactants().is_empty());
        assert_eq!(crn.reactions()[0].order(), 0);
    }

    #[test]
    fn comments_become_labels() {
        let crn = parse_network("e1 -> d1 @ 1 # initializing\n# a full-line comment\n").unwrap();
        assert_eq!(crn.reactions()[0].label(), Some("initializing"));
    }

    #[test]
    fn primed_species_names_are_accepted() {
        let crn = parse_network("x' -> x @ 1").unwrap();
        assert!(crn.species_id("x'").is_some());
    }

    #[test]
    fn reports_line_numbers_on_error() {
        let err = parse_network("a -> b @ 1\nc -> d\n").unwrap_err();
        match err {
            CrnError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    /// Extracts `(line, column)` from a parse error.
    fn position_of(text: &str) -> (usize, usize) {
        match parse_network(text).unwrap_err() {
            CrnError::Parse { line, column, .. } => (line, column),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn reports_column_of_missing_rate() {
        // Column points one past the end of the content, where `@` belongs.
        assert_eq!(position_of("c -> d"), (1, 7));
    }

    #[test]
    fn reports_column_of_invalid_rate() {
        //        123456789012345
        assert_eq!(position_of("ab -> cd @ fast"), (1, 12));
        // Leading whitespace before the rate is skipped.
        assert_eq!(position_of("ab -> cd @    fast"), (1, 15));
    }

    #[test]
    fn reports_column_of_bad_terms() {
        // Second reactant term is invalid:
        //        1234567890
        assert_eq!(position_of("a + b- -> c @ 1"), (1, 5));
        // First product term is invalid:
        assert_eq!(position_of("a -> 3 @ 1"), (1, 6));
        // Bad term on an indented line: the indentation counts.
        assert_eq!(position_of("a -> b @ 1\n   x -> 0 y @ 1"), (2, 9));
    }

    #[test]
    fn columns_count_characters_not_bytes() {
        // `∅` is 3 bytes but one character; the bad rate after it must be
        // reported at its character column.
        //        123456789
        assert_eq!(position_of("∅ -> a @ x"), (1, 10));
    }

    #[test]
    fn rejects_bad_rate_and_bad_names() {
        assert!(parse_network("a -> b @ fast").is_err());
        assert!(parse_network("a -> 3 @ 1").is_err());
        assert!(parse_network("a -> b- @ 1").is_err());
        assert!(parse_network("0 b -> c @ 1").is_err());
    }

    #[test]
    fn round_trip_through_to_text() {
        let source = "a + 2 b -> 3 c @ 1500\nc -> 0 @ 1\n";
        let crn = parse_network(source).unwrap();
        let reparsed = parse_network(&crn.to_text()).unwrap();
        assert_eq!(crn, reparsed);
    }
}
