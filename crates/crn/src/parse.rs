//! Textual reaction notation.
//!
//! The notation is one reaction per line:
//!
//! ```text
//! # comments start with `#`
//! a + 2 b -> 3 c @ 1.5e3      # trailing comments become the reaction label
//! e1 -> d1 @ 1
//! d1 + d2 -> 0 @ 1e6          # `0`, `∅` or an empty side mean "no species"
//! ```
//!
//! Coefficients may be written either as a separate token (`2 b`) or glued to
//! the species name (`2b`). Rates follow `@` and accept any `f64` literal.

use crate::builder::CrnBuilder;
use crate::error::CrnError;
use crate::network::Crn;

/// Parses a whole network from text (one reaction per line).
///
/// # Errors
///
/// Returns [`CrnError::Parse`] describing the first offending line.
pub fn parse_network(text: &str) -> Result<Crn, CrnError> {
    let mut builder = CrnBuilder::new();
    for (lineno, raw_line) in text.lines().enumerate() {
        let line_number = lineno + 1;
        let (content, comment) = split_comment(raw_line);
        let content = content.trim();
        if content.is_empty() {
            continue;
        }
        parse_reaction_into(&mut builder, content, comment, line_number)?;
    }
    builder.build()
}

fn split_comment(line: &str) -> (&str, Option<&str>) {
    match line.find('#') {
        Some(pos) => (
            &line[..pos],
            Some(line[pos + 1..].trim()).filter(|c| !c.is_empty()),
        ),
        None => (line, None),
    }
}

fn parse_reaction_into(
    builder: &mut CrnBuilder,
    content: &str,
    comment: Option<&str>,
    line: usize,
) -> Result<(), CrnError> {
    let err = |message: String| CrnError::Parse { line, message };

    let (lhs_rhs, rate_text) = content
        .rsplit_once('@')
        .ok_or_else(|| err("missing `@ rate`".to_string()))?;
    let rate: f64 = rate_text
        .trim()
        .parse()
        .map_err(|_| err(format!("invalid rate `{}`", rate_text.trim())))?;

    let (lhs, rhs) = lhs_rhs
        .split_once("->")
        .ok_or_else(|| err("missing `->`".to_string()))?;

    let reactants = parse_side(lhs).map_err(&err)?;
    let products = parse_side(rhs).map_err(&err)?;

    let mut rb = builder.reaction().rate(rate);
    for (name, coeff) in &reactants {
        rb = rb.reactant_named(name, *coeff);
    }
    for (name, coeff) in &products {
        rb = rb.product_named(name, *coeff);
    }
    if let Some(label) = comment {
        rb = rb.label(label);
    }
    rb.add().map_err(|e| err(e.to_string()))
}

/// Parses one side of a reaction into `(species name, coefficient)` pairs.
fn parse_side(side: &str) -> Result<Vec<(String, u32)>, String> {
    let side = side.trim();
    if side.is_empty() || side == "0" || side == "∅" {
        return Ok(Vec::new());
    }
    side.split('+')
        .map(|term| parse_term(term.trim()))
        .collect()
}

fn parse_term(term: &str) -> Result<(String, u32), String> {
    if term.is_empty() {
        return Err("empty term".to_string());
    }
    // Either "2 b", "2b", or "b".
    let mut parts = term.split_whitespace();
    let first = parts.next().ok_or_else(|| "empty term".to_string())?;
    if let Some(second) = parts.next() {
        if parts.next().is_some() {
            return Err(format!("too many tokens in term `{term}`"));
        }
        let coeff: u32 = first
            .parse()
            .map_err(|_| format!("invalid coefficient `{first}` in term `{term}`"))?;
        if coeff == 0 {
            return Err(format!("zero coefficient in term `{term}`"));
        }
        validate_name(second)?;
        return Ok((second.to_string(), coeff));
    }
    // Single token: split leading digits from the name if any.
    let digits_end = first
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(first.len());
    let (digits, name) = first.split_at(digits_end);
    if name.is_empty() {
        return Err(format!("term `{term}` has no species name"));
    }
    validate_name(name)?;
    let coeff = if digits.is_empty() {
        1
    } else {
        let c: u32 = digits
            .parse()
            .map_err(|_| format!("invalid coefficient `{digits}`"))?;
        if c == 0 {
            return Err(format!("zero coefficient in term `{term}`"));
        }
        c
    };
    Ok((name.to_string(), coeff))
}

fn validate_name(name: &str) -> Result<(), String> {
    let valid = name
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '\'');
    let starts_ok = name
        .chars()
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_');
    if valid && starts_ok {
        Ok(())
    } else {
        Err(format!("invalid species name `{name}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example_reaction() {
        let crn = parse_network("a + b -> 2 c @ 10").unwrap();
        assert_eq!(crn.species_len(), 3);
        let r = &crn.reactions()[0];
        assert_eq!(r.rate(), 10.0);
        assert_eq!(r.order(), 2);
        assert_eq!(r.product_coefficient(crn.species_id("c").unwrap()), 2);
    }

    #[test]
    fn parses_glued_coefficients() {
        let crn = parse_network("2e3 + x1 -> 2e1 @ 1e3").unwrap();
        // NOTE: `2e3` is the species `e3` with coefficient 2, not a float.
        let e3 = crn.species_id("e3").unwrap();
        assert_eq!(crn.reactions()[0].reactant_coefficient(e3), 2);
        assert_eq!(crn.reactions()[0].rate(), 1000.0);
    }

    #[test]
    fn parses_empty_product_side() {
        for notation in [
            "d1 + d2 -> 0 @ 1e6",
            "d1 + d2 -> ∅ @ 1e6",
            "d1 + d2 ->  @ 1e6",
        ] {
            let crn = parse_network(notation).unwrap();
            assert!(
                crn.reactions()[0].products().is_empty(),
                "notation: {notation}"
            );
        }
    }

    #[test]
    fn parses_source_reactions() {
        let crn = parse_network("0 -> a @ 0.5").unwrap();
        assert!(crn.reactions()[0].reactants().is_empty());
        assert_eq!(crn.reactions()[0].order(), 0);
    }

    #[test]
    fn comments_become_labels() {
        let crn = parse_network("e1 -> d1 @ 1 # initializing\n# a full-line comment\n").unwrap();
        assert_eq!(crn.reactions()[0].label(), Some("initializing"));
    }

    #[test]
    fn primed_species_names_are_accepted() {
        let crn = parse_network("x' -> x @ 1").unwrap();
        assert!(crn.species_id("x'").is_some());
    }

    #[test]
    fn reports_line_numbers_on_error() {
        let err = parse_network("a -> b @ 1\nc -> d\n").unwrap_err();
        match err {
            CrnError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_rate_and_bad_names() {
        assert!(parse_network("a -> b @ fast").is_err());
        assert!(parse_network("a -> 3 @ 1").is_err());
        assert!(parse_network("a -> b- @ 1").is_err());
        assert!(parse_network("0 b -> c @ 1").is_err());
    }

    #[test]
    fn round_trip_through_to_text() {
        let source = "a + 2 b -> 3 c @ 1500\nc -> 0 @ 1\n";
        let crn = parse_network(source).unwrap();
        let reparsed = parse_network(&crn.to_text()).unwrap();
        assert_eq!(crn, reparsed);
    }
}
