//! Species identifiers and metadata.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A handle identifying a species within a [`Crn`](crate::Crn).
///
/// Species identifiers are small integers assigned densely in the order the
/// species were declared, which makes them suitable as indices into
/// per-species arrays such as [`State`](crate::State) vectors or rows of a
/// [`StoichiometryMatrix`](crate::StoichiometryMatrix).
///
/// # Example
///
/// ```
/// use crn::CrnBuilder;
///
/// let mut builder = CrnBuilder::new();
/// let a = builder.species("a");
/// let b = builder.species("b");
/// assert_eq!(a.index(), 0);
/// assert_eq!(b.index(), 1);
/// // Declaring the same name twice returns the same id.
/// assert_eq!(builder.species("a"), a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SpeciesId(pub(crate) u32);

impl SpeciesId {
    /// Creates a species id from a raw dense index.
    ///
    /// This is primarily useful for tests and for code that reconstructs ids
    /// from serialized data; in normal use ids are produced by
    /// [`CrnBuilder::species`](crate::CrnBuilder::species).
    pub fn from_index(index: usize) -> Self {
        SpeciesId(index as u32)
    }

    /// Returns the dense index of this species within its network.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SpeciesId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Metadata describing a single molecular species.
///
/// A species is identified within its network by a [`SpeciesId`] and carries
/// a human-readable name (e.g. `"cro2"`, `"e1"`). Names are unique within a
/// network.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Species {
    id: SpeciesId,
    name: String,
}

impl Species {
    /// Creates a new species record.
    pub(crate) fn new(id: SpeciesId, name: impl Into<String>) -> Self {
        Species {
            id,
            name: name.into(),
        }
    }

    /// Returns the identifier of this species.
    pub fn id(&self) -> SpeciesId {
        self.id
    }

    /// Returns the name of this species.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for Species {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn species_id_round_trips_through_index() {
        let id = SpeciesId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "s7");
    }

    #[test]
    fn species_carries_name_and_id() {
        let sp = Species::new(SpeciesId::from_index(3), "cro2");
        assert_eq!(sp.name(), "cro2");
        assert_eq!(sp.id().index(), 3);
        assert_eq!(sp.to_string(), "cro2");
    }

    #[test]
    fn species_ids_are_ordered_by_index() {
        assert!(SpeciesId::from_index(1) < SpeciesId::from_index(2));
    }
}
