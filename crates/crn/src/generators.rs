//! Parameterised generators for scenario-scale reaction networks.
//!
//! The paper's synthesized modules stay small (tens of reactions), but the
//! workloads the engine targets — gene-regulatory networks, DNA-computing
//! cascades, reaction–diffusion grids — run to thousands of channels. This
//! module builds such networks programmatically so benchmarks, stress
//! tests and examples can sweep network size as a parameter instead of
//! hand-writing reaction lists.
//!
//! Every generator returns a [`GeneratedSystem`]: the network plus a
//! sensible initial state, so call sites can go straight to simulation.
//!
//! ```
//! use crn::generators;
//!
//! let system = generators::reversible_chain(50, 1.0, 0.5, 200);
//! assert_eq!(system.crn.reactions().len(), 100);
//! assert_eq!(system.initial.total(), 200);
//! ```

use crate::builder::CrnBuilder;
use crate::network::Crn;
use crate::state::State;

/// A generated network together with the initial state its generator
/// intends it to be simulated from.
#[derive(Debug, Clone)]
pub struct GeneratedSystem {
    /// The reaction network.
    pub crn: Crn,
    /// The matching initial state (sized for `crn`).
    pub initial: State,
}

/// Linear chain of reversible isomerisations
/// `s0 <-> s1 <-> … <-> s_len`, with `molecules` of `s0` initially.
///
/// `2·len` reactions whose dependency graph has out-degree ≤ 4 — the
/// canonical "many channels, sparse coupling" scaling benchmark
/// (`ssa_methods/chain_*`). Forward reactions fire at `k_fwd`, backward at
/// `k_back`.
///
/// # Panics
///
/// Panics if `len` is zero or a rate is not positive.
pub fn reversible_chain(len: usize, k_fwd: f64, k_back: f64, molecules: u64) -> GeneratedSystem {
    assert!(len > 0, "chain length must be positive");
    assert!(
        k_fwd > 0.0 && k_back > 0.0,
        "chain rates must be positive, got {k_fwd} / {k_back}"
    );
    let mut b = CrnBuilder::new();
    let species: Vec<_> = (0..=len).map(|i| b.species(format!("s{i}"))).collect();
    for i in 0..len {
        b.reaction()
            .reactant(species[i], 1)
            .product(species[i + 1], 1)
            .rate(k_fwd)
            .add()
            .expect("forward reaction");
        b.reaction()
            .reactant(species[i + 1], 1)
            .product(species[i], 1)
            .rate(k_back)
            .add()
            .expect("backward reaction");
    }
    let crn = b.build().expect("chain network");
    let mut initial = crn.zero_state();
    initial.set(species[0], molecules);
    GeneratedSystem { crn, initial }
}

/// Source-driven linear cascade `∅ -> s0 -> s1 -> … -> s_len -> ∅`: a flow
/// pipeline of `len + 2` irreversible reactions that never exhausts.
///
/// Molecules enter at rate `k_in`, hop down the cascade at `k_step` per
/// molecule and degrade at the end. This is the signalling-cascade /
/// DNA-strand-displacement pipeline shape (every stage is consumed by
/// exactly one downstream channel), and with thousands of stages it is the
/// worst case for any per-event cost that scales with the reaction count.
/// Starts with `molecules` spread uniformly over the first quarter of the
/// stages so the early propensity landscape is non-trivial.
///
/// # Panics
///
/// Panics if `len` is zero or a rate is not positive.
pub fn linear_cascade(len: usize, k_in: f64, k_step: f64, molecules: u64) -> GeneratedSystem {
    assert!(len > 0, "cascade length must be positive");
    assert!(
        k_in > 0.0 && k_step > 0.0,
        "cascade rates must be positive, got {k_in} / {k_step}"
    );
    let mut b = CrnBuilder::new();
    let species: Vec<_> = (0..=len).map(|i| b.species(format!("s{i}"))).collect();
    b.reaction()
        .product(species[0], 1)
        .rate(k_in)
        .add()
        .expect("source reaction");
    for i in 0..len {
        b.reaction()
            .reactant(species[i], 1)
            .product(species[i + 1], 1)
            .rate(k_step)
            .add()
            .expect("cascade step");
    }
    b.reaction()
        .reactant(species[len], 1)
        .rate(k_step)
        .add()
        .expect("sink reaction");
    let crn = b.build().expect("cascade network");
    let mut initial = crn.zero_state();
    // Spread `molecules` over the first quarter of the stages: an even
    // share per stage, with the remainder on `s0` so the total is exact.
    let seeded_stages = (len / 4).max(1) as u64;
    let share = molecules / seeded_stages;
    let remainder = molecules % seeded_stages;
    for &s in species.iter().take(seeded_stages as usize) {
        initial.set(s, share);
    }
    initial.set(species[0], share + remainder);
    GeneratedSystem { crn, initial }
}

/// Branched gene-regulatory tree: a complete `branching`-ary tree of depth
/// `depth` whose nodes are two-state genes; each parent's protein switches
/// its children's genes on.
///
/// Per node `n` (species `gOff_n`, `gOn_n`, `p_n`):
///
/// * activation `p_parent + gOff_n -> p_parent + gOn_n @ k_on` (the root
///   gene starts on),
/// * deactivation `gOn_n -> gOff_n @ k_off`,
/// * expression `gOn_n -> gOn_n + p_n @ k_expr`,
/// * decay `p_n -> ∅ @ k_dec`.
///
/// This is the gene-regulatory-network shape from the DNA-computing and
/// systems-biology scaling literature: a wide dynamic range of propensities
/// (binades spread with tree depth) and a dependency graph whose out-degree
/// equals the branching factor.
///
/// # Panics
///
/// Panics if `depth` is zero, `branching` is zero, or any rate is not
/// positive.
pub fn gene_regulatory_tree(
    depth: u32,
    branching: usize,
    k_on: f64,
    k_off: f64,
    k_expr: f64,
    k_dec: f64,
) -> GeneratedSystem {
    assert!(depth > 0, "tree depth must be positive");
    assert!(branching > 0, "branching factor must be positive");
    assert!(
        k_on > 0.0 && k_off > 0.0 && k_expr > 0.0 && k_dec > 0.0,
        "tree rates must be positive"
    );
    let mut nodes = 1usize;
    let mut level = 1usize;
    for _ in 0..depth {
        level *= branching;
        nodes += level;
    }
    let mut b = CrnBuilder::new();
    let g_off: Vec<_> = (0..nodes).map(|n| b.species(format!("gOff{n}"))).collect();
    let g_on: Vec<_> = (0..nodes).map(|n| b.species(format!("gOn{n}"))).collect();
    let protein: Vec<_> = (0..nodes).map(|n| b.species(format!("p{n}"))).collect();
    for n in 0..nodes {
        if n > 0 {
            let parent = (n - 1) / branching;
            b.reaction()
                .reactant(protein[parent], 1)
                .reactant(g_off[n], 1)
                .product(protein[parent], 1)
                .product(g_on[n], 1)
                .rate(k_on)
                .add()
                .expect("activation");
            b.reaction()
                .reactant(g_on[n], 1)
                .product(g_off[n], 1)
                .rate(k_off)
                .add()
                .expect("deactivation");
        }
        b.reaction()
            .reactant(g_on[n], 1)
            .product(g_on[n], 1)
            .product(protein[n], 1)
            .rate(k_expr)
            .add()
            .expect("expression");
        b.reaction()
            .reactant(protein[n], 1)
            .rate(k_dec)
            .add()
            .expect("decay");
    }
    let crn = b.build().expect("gene tree network");
    let mut initial = crn.zero_state();
    // Root gene on; every other gene off; no protein yet — the activation
    // wave has to propagate down the tree.
    initial.set(g_on[0], 1);
    for &off in g_off.iter().skip(1) {
        initial.set(off, 1);
    }
    GeneratedSystem { crn, initial }
}

/// Dimerisation grid: monomer species `m_{x,y}` on a `width × height`
/// lattice; every pair of 4-neighbours reversibly dimerises
/// (`m_u + m_v <-> d_{u,v}`).
///
/// `2·(2·width·height − width − height)` reactions — one second-order
/// binding and one first-order unbinding per lattice edge — with a
/// dependency graph coupling each site to its neighbourhood: the
/// discretised reaction–diffusion shape. Every site starts with
/// `molecules` monomers.
///
/// # Panics
///
/// Panics if the grid has no edge (both dimensions 1) or a rate is not
/// positive.
pub fn dimerisation_grid(
    width: usize,
    height: usize,
    k_bind: f64,
    k_unbind: f64,
    molecules: u64,
) -> GeneratedSystem {
    assert!(
        width * height > 1 && width > 0 && height > 0,
        "grid must have at least one edge"
    );
    assert!(
        k_bind > 0.0 && k_unbind > 0.0,
        "grid rates must be positive, got {k_bind} / {k_unbind}"
    );
    let mut b = CrnBuilder::new();
    let monomer: Vec<Vec<_>> = (0..width)
        .map(|x| {
            (0..height)
                .map(|y| b.species(format!("m_{x}_{y}")))
                .collect()
        })
        .collect();
    let add_edge = |b: &mut CrnBuilder, u: crate::species::SpeciesId, v, x, y, dir| {
        let dimer = b.species(format!("d_{x}_{y}_{dir}"));
        b.reaction()
            .reactant(u, 1)
            .reactant(v, 1)
            .product(dimer, 1)
            .rate(k_bind)
            .add()
            .expect("binding");
        b.reaction()
            .reactant(dimer, 1)
            .product(u, 1)
            .product(v, 1)
            .rate(k_unbind)
            .add()
            .expect("unbinding");
    };
    for x in 0..width {
        for y in 0..height {
            if x + 1 < width {
                add_edge(&mut b, monomer[x][y], monomer[x + 1][y], x, y, "e");
            }
            if y + 1 < height {
                add_edge(&mut b, monomer[x][y], monomer[x][y + 1], x, y, "s");
            }
        }
    }
    let crn = b.build().expect("grid network");
    let mut initial = crn.zero_state();
    for column in &monomer {
        for &m in column {
            initial.set(m, molecules);
        }
    }
    GeneratedSystem { crn, initial }
}

/// A multi-copy lambda-switch ensemble: `copies` independent instances of a
/// minimal lysis/lysogeny toggle sharing one network.
///
/// Each copy `c` is the paper's case-study shape in miniature — two
/// mutually repressing expression loops:
///
/// * expression `cI_c -> 2 cI_c @ k_expr` and `cro_c -> 2 cro_c @ k_expr`,
/// * decay `cI_c -> ∅ @ k_dec`, `cro_c -> ∅ @ k_dec`,
/// * repression `2 cI_c + cro_c -> 2 cI_c @ k_rep` and symmetrically
///   `2 cro_c + cI_c -> 2 cro_c @ k_rep`.
///
/// Six reactions per copy, all copies structurally independent — which is
/// exactly what a scaled-out population study (one switch per simulated
/// cell) looks like to the simulator: the dependency graph is block
/// diagonal, and the total propensity spreads over `copies` blocks. Every
/// copy starts at the unstable point with `seed_molecules` of both
/// proteins.
///
/// # Panics
///
/// Panics if `copies` is zero or a rate is not positive.
pub fn lambda_switch_ensemble(
    copies: usize,
    k_expr: f64,
    k_dec: f64,
    k_rep: f64,
    seed_molecules: u64,
) -> GeneratedSystem {
    assert!(copies > 0, "copy count must be positive");
    assert!(
        k_expr > 0.0 && k_dec > 0.0 && k_rep > 0.0,
        "switch rates must be positive"
    );
    let mut b = CrnBuilder::new();
    let mut all = Vec::with_capacity(copies * 2);
    for c in 0..copies {
        let ci = b.species(format!("cI{c}"));
        let cro = b.species(format!("cro{c}"));
        for &(hero, rival) in &[(ci, cro), (cro, ci)] {
            b.reaction()
                .reactant(hero, 1)
                .product(hero, 2)
                .rate(k_expr)
                .add()
                .expect("expression");
            b.reaction()
                .reactant(hero, 1)
                .rate(k_dec)
                .add()
                .expect("decay");
            b.reaction()
                .reactant(hero, 2)
                .reactant(rival, 1)
                .product(hero, 2)
                .rate(k_rep)
                .add()
                .expect("repression");
        }
        all.push(ci);
        all.push(cro);
    }
    let crn = b.build().expect("switch ensemble network");
    let mut initial = crn.zero_state();
    for &s in &all {
        initial.set(s, seed_molecules);
    }
    GeneratedSystem { crn, initial }
}

/// Competitive race: `tokens` copies of `x` each independently decay into
/// `a` (at `k_a`) or `b` (at `k_b`).
///
/// The workhorse family for model-checking oracles because every verdict
/// has a closed form: each token lands on `a` with probability
/// `k_a / (k_a + k_b)` independently, so `P(a ≥ j before b ≥ k)` is a
/// negative-binomial tail and the time to the first decision is
/// `Exp(tokens·(k_a + k_b))`. Sweeping `k_a` moves the whole landscape
/// analytically.
///
/// # Panics
///
/// Panics if `tokens` is zero or a rate is not positive.
pub fn competitive_race(tokens: u64, k_a: f64, k_b: f64) -> GeneratedSystem {
    assert!(tokens > 0, "token count must be positive");
    assert!(
        k_a > 0.0 && k_b > 0.0,
        "race rates must be positive, got {k_a} / {k_b}"
    );
    let mut b = CrnBuilder::new();
    let x = b.species("x");
    let a = b.species("a");
    let bee = b.species("b");
    b.reaction()
        .reactant(x, 1)
        .product(a, 1)
        .rate(k_a)
        .add()
        .expect("a branch");
    b.reaction()
        .reactant(x, 1)
        .product(bee, 1)
        .rate(k_b)
        .add()
        .expect("b branch");
    let crn = b.build().expect("race network");
    let mut initial = crn.zero_state();
    initial.set(x, tokens);
    GeneratedSystem { crn, initial }
}

/// Immigration–death process: `∅ -> a @ birth`, `a -> ∅ @ death` per copy.
///
/// The canonical stationary-law family: the exact stationary distribution
/// is Poisson with mean `birth / death`, making it the reference target for
/// stationary-mass checks and finite-state-projection quality sweeps (the
/// truncation leak at cap `c` is the Poisson tail above `c`).
///
/// # Panics
///
/// Panics if a rate is not positive.
pub fn birth_death(birth: f64, death: f64) -> GeneratedSystem {
    assert!(
        birth > 0.0 && death > 0.0,
        "birth-death rates must be positive, got {birth} / {death}"
    );
    let mut b = CrnBuilder::new();
    let a = b.species("a");
    b.reaction().product(a, 1).rate(birth).add().expect("birth");
    b.reaction()
        .reactant(a, 1)
        .rate(death)
        .add()
        .expect("death");
    let crn = b.build().expect("birth-death network");
    let initial = crn.zero_state();
    GeneratedSystem { crn, initial }
}

/// Multiscale promoter/metabolite modules: `modules` independent copies of
/// a slow two-state promoter driving a fast enzymatic pool — the
/// fast/slow-partitioned shape the hybrid solver exists for.
///
/// Each module has 6 species (`gOff`, `gOn`, `s`, `e`, `es`, `p`) and 8
/// reactions:
///
/// ```text
/// gOff <-> gOn            @ k_switch            (slow promoter toggle)
/// gOn  -> gOn + s         @ k_prod              (fast substrate burst)
/// e + s <-> es            @ k_bind / k_unbind   (stiff enzyme cycle)
/// es   -> e + p           @ k_cat
/// p    -> ∅               @ 1
/// s    -> ∅               @ k_dil               (slow dilution)
/// ```
///
/// The enzyme kinetics are derived so the cycle turns over at roughly the
/// production rate without runaway: `k_cat = 2·k_prod/enzymes`,
/// `k_unbind = k_cat`, `k_bind = 2·k_cat/pool` and
/// `k_dil = k_prod/(10·pool)`. With `pool` in the thousands and `k_prod`
/// in the tens of thousands the per-channel fast propensities sit at
/// 10³–10⁵ while the promoter toggles at `k_switch` ≈ 1 — five orders of
/// timescale separation, which routes the simulator's auto portfolio to
/// the hybrid stepper. Modules alternate
/// between starting on (`gOn`, even indices) and off, each seeded with
/// `pool` substrate and `enzymes` enzyme copies split evenly between free
/// and substrate-bound (the cycle's quasi-steady state). 90+ modules give
/// the 500-species scale of the benchmark scenario.
///
/// # Panics
///
/// Panics if `modules` is zero, a rate is not positive, or `pool`/`enzymes`
/// is zero.
pub fn multiscale_switch(
    modules: usize,
    k_switch: f64,
    k_prod: f64,
    pool: u64,
    enzymes: u64,
) -> GeneratedSystem {
    assert!(modules > 0, "module count must be positive");
    assert!(
        k_switch > 0.0 && k_prod > 0.0,
        "multiscale rates must be positive, got {k_switch} / {k_prod}"
    );
    assert!(
        pool > 0 && enzymes > 0,
        "pool and enzyme counts must be positive, got {pool} / {enzymes}"
    );
    let k_cat = 2.0 * k_prod / enzymes as f64;
    let k_unbind = k_cat;
    let k_bind = 2.0 * k_cat / pool as f64;
    let k_dil = k_prod / (10.0 * pool as f64);

    let mut b = CrnBuilder::new();
    let mut initial_counts = Vec::with_capacity(modules * 3);
    for m in 0..modules {
        let g_off = b.species(format!("gOff_{m}"));
        let g_on = b.species(format!("gOn_{m}"));
        let s = b.species(format!("s_{m}"));
        let e = b.species(format!("e_{m}"));
        let es = b.species(format!("es_{m}"));
        let p = b.species(format!("p_{m}"));

        b.reaction()
            .reactant(g_off, 1)
            .product(g_on, 1)
            .rate(k_switch)
            .add()
            .expect("promoter on");
        b.reaction()
            .reactant(g_on, 1)
            .product(g_off, 1)
            .rate(k_switch)
            .add()
            .expect("promoter off");
        b.reaction()
            .reactant(g_on, 1)
            .product(g_on, 1)
            .product(s, 1)
            .rate(k_prod)
            .add()
            .expect("substrate burst");
        b.reaction()
            .reactant(e, 1)
            .reactant(s, 1)
            .product(es, 1)
            .rate(k_bind)
            .add()
            .expect("enzyme binding");
        b.reaction()
            .reactant(es, 1)
            .product(e, 1)
            .product(s, 1)
            .rate(k_unbind)
            .add()
            .expect("enzyme unbinding");
        b.reaction()
            .reactant(es, 1)
            .product(e, 1)
            .product(p, 1)
            .rate(k_cat)
            .add()
            .expect("catalysis");
        b.reaction()
            .reactant(p, 1)
            .rate(1.0)
            .add()
            .expect("product decay");
        b.reaction()
            .reactant(s, 1)
            .rate(k_dil)
            .add()
            .expect("substrate dilution");

        // Alternate starting promoter state so half the modules produce
        // from t = 0, and seed the enzyme cycle at its quasi-steady state
        // (half bound) so the fast partition is two-sided immediately
        // instead of after an es build-up transient.
        let gene = if m % 2 == 0 { g_on } else { g_off };
        initial_counts.push((gene, 1));
        initial_counts.push((s, pool));
        initial_counts.push((e, enzymes - enzymes / 2));
        initial_counts.push((es, enzymes / 2));
    }
    let crn = b.build().expect("multiscale network");
    let mut initial = crn.zero_state();
    for (species, count) in initial_counts {
        initial.set(species, count);
    }
    GeneratedSystem { crn, initial }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_has_expected_shape() {
        let sys = reversible_chain(10, 1.0, 0.5, 200);
        assert_eq!(sys.crn.species_len(), 11);
        assert_eq!(sys.crn.reactions().len(), 20);
        assert_eq!(sys.initial.total(), 200);
        assert_eq!(sys.initial.count(sys.crn.species_id("s0").unwrap()), 200);
    }

    #[test]
    fn cascade_has_source_and_sink() {
        let sys = linear_cascade(100, 50.0, 1.0, 400);
        assert_eq!(sys.crn.reactions().len(), 102);
        let orders: Vec<u32> = sys.crn.reactions().iter().map(|r| r.order()).collect();
        assert_eq!(orders[0], 0, "first reaction is the source");
        assert!(orders[1..].iter().all(|&o| o == 1));
        assert_eq!(sys.initial.total(), 400);
    }

    #[test]
    fn cascade_seeds_every_molecule_even_when_sparse() {
        // Fewer molecules than seeded stages: the total must still be
        // exactly what the caller asked for (remainder lands on s0).
        let sys = linear_cascade(2000, 50.0, 1.0, 100);
        assert_eq!(sys.initial.total(), 100);
        assert_eq!(sys.initial.count(sys.crn.species_id("s0").unwrap()), 100);
        let sys = linear_cascade(10, 1.0, 1.0, 7);
        assert_eq!(sys.initial.total(), 7);
    }

    #[test]
    fn gene_tree_counts_nodes_and_reactions() {
        // depth 2, binary: 1 + 2 + 4 = 7 nodes; root has 2 reactions,
        // others 4.
        let sys = gene_regulatory_tree(2, 2, 1.0, 0.5, 10.0, 1.0);
        assert_eq!(sys.crn.species_len(), 21);
        assert_eq!(sys.crn.reactions().len(), 2 + 6 * 4);
        // Root gene on, all other genes off.
        assert_eq!(sys.initial.count(sys.crn.species_id("gOn0").unwrap()), 1);
        assert_eq!(sys.initial.count(sys.crn.species_id("gOff3").unwrap()), 1);
        assert_eq!(sys.initial.count(sys.crn.species_id("p0").unwrap()), 0);
    }

    #[test]
    fn grid_reaction_count_matches_edges() {
        let (w, h) = (4usize, 3usize);
        let sys = dimerisation_grid(w, h, 0.01, 1.0, 20);
        let edges = 2 * w * h - w - h;
        assert_eq!(sys.crn.reactions().len(), 2 * edges);
        assert_eq!(sys.initial.total(), (w * h) as u64 * 20);
    }

    #[test]
    fn switch_ensemble_scales_linearly() {
        let sys = lambda_switch_ensemble(25, 1.0, 0.1, 0.001, 30);
        assert_eq!(sys.crn.species_len(), 50);
        assert_eq!(sys.crn.reactions().len(), 150);
        assert_eq!(sys.initial.total(), 50 * 30);
    }

    #[test]
    fn race_has_two_channels_and_seeded_tokens() {
        let sys = competitive_race(7, 3.0, 1.0);
        assert_eq!(sys.crn.species_len(), 3);
        assert_eq!(sys.crn.reactions().len(), 2);
        assert_eq!(sys.initial.total(), 7);
        assert_eq!(sys.initial.count(sys.crn.species_id("x").unwrap()), 7);
    }

    #[test]
    fn birth_death_starts_empty() {
        let sys = birth_death(2.0, 0.5);
        assert_eq!(sys.crn.reactions().len(), 2);
        assert_eq!(sys.initial.total(), 0);
    }

    #[test]
    fn multiscale_switch_has_expected_shape() {
        let sys = multiscale_switch(90, 0.5, 20_000.0, 2_000, 60);
        assert_eq!(sys.crn.species_len(), 540, "6 species per module");
        assert_eq!(sys.crn.reactions().len(), 720, "8 reactions per module");
        // Even modules start on, odd modules off; enzymes split half bound.
        let count = |name: &str| sys.initial.count(sys.crn.species_id(name).unwrap());
        assert_eq!(count("gOn_0"), 1);
        assert_eq!(count("gOff_0"), 0);
        assert_eq!(count("gOn_1"), 0);
        assert_eq!(count("gOff_1"), 1);
        assert_eq!(count("s_0"), 2_000);
        assert_eq!(count("e_0") + count("es_0"), 60);
        assert_eq!(count("es_0"), 30);
        assert_eq!(count("p_0"), 0);
    }

    #[test]
    #[should_panic(expected = "module count must be positive")]
    fn multiscale_switch_rejects_zero_modules() {
        multiscale_switch(0, 0.5, 20_000.0, 2_000, 60);
    }

    #[test]
    #[should_panic(expected = "pool and enzyme counts must be positive")]
    fn multiscale_switch_rejects_empty_pool() {
        multiscale_switch(4, 0.5, 20_000.0, 0, 60);
    }

    #[test]
    #[should_panic(expected = "rates must be positive")]
    fn race_rejects_zero_rate() {
        competitive_race(1, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "length must be positive")]
    fn zero_length_chain_is_rejected() {
        reversible_chain(0, 1.0, 1.0, 1);
    }

    #[test]
    #[should_panic(expected = "rates must be positive")]
    fn non_positive_rates_are_rejected() {
        linear_cascade(5, 0.0, 1.0, 1);
    }
}
