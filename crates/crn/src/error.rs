//! Error type for CRN construction and manipulation.

use std::error::Error;
use std::fmt;

/// Errors produced while building, parsing or manipulating a reaction
/// network.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CrnError {
    /// A reaction was given a rate constant that is not finite and positive.
    InvalidRate {
        /// The offending rate value.
        rate: f64,
    },
    /// A reaction with no reactants and no products was constructed.
    EmptyReaction,
    /// A species name was declared twice with conflicting metadata, or a
    /// reaction referenced a species unknown to the network.
    UnknownSpecies {
        /// The unknown species name.
        name: String,
    },
    /// A species index exceeded the number of species in the network/state.
    SpeciesOutOfRange {
        /// The offending index.
        index: usize,
        /// The number of species available.
        len: usize,
    },
    /// A reaction could not fire because reactants were missing.
    InsufficientReactants {
        /// Rendered form of the reaction that failed to fire.
        reaction: String,
    },
    /// The textual reaction notation could not be parsed.
    Parse {
        /// Line number (1-based) at which parsing failed.
        line: usize,
        /// Character column (1-based) at which parsing failed.
        column: usize,
        /// Description of the problem.
        message: String,
    },
    /// The network failed validation (e.g. a reaction references a species
    /// id that does not exist in the species table).
    Validation {
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for CrnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrnError::InvalidRate { rate } => {
                write!(f, "reaction rate must be finite and positive, got {rate}")
            }
            CrnError::EmptyReaction => {
                write!(f, "reaction has neither reactants nor products")
            }
            CrnError::UnknownSpecies { name } => write!(f, "unknown species `{name}`"),
            CrnError::SpeciesOutOfRange { index, len } => {
                write!(f, "species index {index} out of range for {len} species")
            }
            CrnError::InsufficientReactants { reaction } => {
                write!(f, "insufficient reactants to fire reaction `{reaction}`")
            }
            CrnError::Parse {
                line,
                column,
                message,
            } => {
                write!(f, "parse error at line {line}, column {column}: {message}")
            }
            CrnError::Validation { message } => write!(f, "invalid network: {message}"),
        }
    }
}

impl Error for CrnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<CrnError> = vec![
            CrnError::InvalidRate { rate: -1.0 },
            CrnError::EmptyReaction,
            CrnError::UnknownSpecies { name: "zz".into() },
            CrnError::SpeciesOutOfRange { index: 9, len: 3 },
            CrnError::InsufficientReactants {
                reaction: "a -> b".into(),
            },
            CrnError::Parse {
                line: 2,
                column: 5,
                message: "missing `->`".into(),
            },
            CrnError::Validation {
                message: "dangling species".into(),
            },
        ];
        for err in cases {
            let text = err.to_string();
            assert!(!text.is_empty());
            assert!(text.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CrnError>();
    }
}
