//! Builders for networks and reactions.

use std::collections::HashMap;

use crate::error::CrnError;
use crate::network::Crn;
use crate::reaction::{Reaction, ReactionTerm};
use crate::species::{Species, SpeciesId};

/// Incremental builder for a [`Crn`].
///
/// Species are registered on demand with [`CrnBuilder::species`]; declaring
/// the same name twice returns the same id, which makes it easy for several
/// code paths (or module generators) to collaborate on one network.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), crn::CrnError> {
/// use crn::CrnBuilder;
///
/// let mut b = CrnBuilder::new();
/// let e1 = b.species("e1");
/// let d1 = b.species("d1");
/// b.reaction().reactant(e1, 1).product(d1, 1).rate(1.0).label("initializing").add()?;
/// b.reaction().reactant(e1, 1).reactant(d1, 1).product(d1, 2).rate(1e3).label("reinforcing").add()?;
/// let crn = b.build()?;
/// assert_eq!(crn.reactions().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default, Clone)]
pub struct CrnBuilder {
    species: Vec<Species>,
    name_index: HashMap<String, SpeciesId>,
    reactions: Vec<Reaction>,
}

impl CrnBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        CrnBuilder::default()
    }

    /// Registers a species by name, returning its id. Registering an
    /// already-known name returns the existing id.
    pub fn species(&mut self, name: impl AsRef<str>) -> SpeciesId {
        let name = name.as_ref();
        if let Some(&id) = self.name_index.get(name) {
            return id;
        }
        let id = SpeciesId::from_index(self.species.len());
        self.species.push(Species::new(id, name));
        self.name_index.insert(name.to_string(), id);
        id
    }

    /// Returns the id of an already-registered species, if any.
    pub fn lookup(&self, name: &str) -> Option<SpeciesId> {
        self.name_index.get(name).copied()
    }

    /// Returns the number of species registered so far.
    pub fn species_len(&self) -> usize {
        self.species.len()
    }

    /// Returns the number of reactions added so far.
    pub fn reactions_len(&self) -> usize {
        self.reactions.len()
    }

    /// Starts building a reaction attached to this network.
    pub fn reaction(&mut self) -> ReactionBuilder<'_> {
        ReactionBuilder {
            builder: self,
            reactants: Vec::new(),
            products: Vec::new(),
            rate: None,
            label: None,
        }
    }

    /// Adds an already-constructed reaction.
    ///
    /// # Errors
    ///
    /// Returns [`CrnError::SpeciesOutOfRange`] if the reaction references a
    /// species id that has not been registered with this builder.
    pub fn push_reaction(&mut self, reaction: Reaction) -> Result<(), CrnError> {
        if let Some(max) = reaction
            .reactants()
            .iter()
            .chain(reaction.products())
            .map(|t| t.species.index())
            .max()
        {
            if max >= self.species.len() {
                return Err(CrnError::SpeciesOutOfRange {
                    index: max,
                    len: self.species.len(),
                });
            }
        }
        self.reactions.push(reaction);
        Ok(())
    }

    /// Finalises the builder into an immutable [`Crn`].
    ///
    /// # Errors
    ///
    /// Returns [`CrnError::Validation`] if the accumulated parts are
    /// inconsistent (this cannot happen when using only the builder API).
    pub fn build(self) -> Result<Crn, CrnError> {
        Crn::from_parts(self.species, self.reactions)
    }
}

/// Builder for a single reaction, obtained from [`CrnBuilder::reaction`].
///
/// Call [`ReactionBuilder::add`] to validate the reaction and append it to
/// the parent network builder.
#[derive(Debug)]
pub struct ReactionBuilder<'a> {
    builder: &'a mut CrnBuilder,
    reactants: Vec<ReactionTerm>,
    products: Vec<ReactionTerm>,
    rate: Option<f64>,
    label: Option<String>,
}

impl ReactionBuilder<'_> {
    /// Adds a reactant term (`coefficient` copies of `species`).
    pub fn reactant(mut self, species: SpeciesId, coefficient: u32) -> Self {
        self.reactants.push(ReactionTerm::new(species, coefficient));
        self
    }

    /// Adds a product term (`coefficient` copies of `species`).
    pub fn product(mut self, species: SpeciesId, coefficient: u32) -> Self {
        self.products.push(ReactionTerm::new(species, coefficient));
        self
    }

    /// Adds a reactant by name, registering the species if needed.
    pub fn reactant_named(mut self, name: &str, coefficient: u32) -> Self {
        let id = self.builder.species(name);
        self.reactants.push(ReactionTerm::new(id, coefficient));
        self
    }

    /// Adds a product by name, registering the species if needed.
    pub fn product_named(mut self, name: &str, coefficient: u32) -> Self {
        let id = self.builder.species(name);
        self.products.push(ReactionTerm::new(id, coefficient));
        self
    }

    /// Sets the stochastic rate constant of the reaction.
    pub fn rate(mut self, rate: f64) -> Self {
        self.rate = Some(rate);
        self
    }

    /// Attaches an informational label (e.g. the paper's reaction category).
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Validates the reaction and appends it to the parent builder.
    ///
    /// # Errors
    ///
    /// Returns [`CrnError::InvalidRate`] if no valid rate was supplied and
    /// [`CrnError::EmptyReaction`] if the reaction has no terms at all.
    pub fn add(self) -> Result<(), CrnError> {
        let rate = self.rate.ok_or(CrnError::InvalidRate { rate: f64::NAN })?;
        let reaction = match self.label {
            Some(label) => Reaction::with_label(self.reactants, self.products, rate, label)?,
            None => Reaction::new(self.reactants, self.products, rate)?,
        };
        self.builder.reactions.push(reaction);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn species_registration_is_idempotent() {
        let mut b = CrnBuilder::new();
        let a1 = b.species("a");
        let a2 = b.species("a");
        assert_eq!(a1, a2);
        assert_eq!(b.species_len(), 1);
        assert_eq!(b.lookup("a"), Some(a1));
        assert_eq!(b.lookup("b"), None);
    }

    #[test]
    fn reaction_builder_requires_rate() {
        let mut b = CrnBuilder::new();
        let a = b.species("a");
        let err = b.reaction().reactant(a, 1).add().unwrap_err();
        assert!(matches!(err, CrnError::InvalidRate { .. }));
    }

    #[test]
    fn named_terms_register_species() {
        let mut b = CrnBuilder::new();
        b.reaction()
            .reactant_named("x", 2)
            .product_named("y", 1)
            .rate(4.0)
            .add()
            .unwrap();
        assert_eq!(b.species_len(), 2);
        let crn = b.build().unwrap();
        assert_eq!(crn.reactions()[0].order(), 2);
    }

    #[test]
    fn push_reaction_checks_species_range() {
        let mut b = CrnBuilder::new();
        b.species("a");
        let foreign = Reaction::new(
            vec![ReactionTerm::new(SpeciesId::from_index(5), 1)],
            vec![],
            1.0,
        )
        .unwrap();
        assert!(b.push_reaction(foreign).is_err());
    }

    #[test]
    fn build_produces_consistent_network() {
        let mut b = CrnBuilder::new();
        let e = b.species("e1");
        let d = b.species("d1");
        b.reaction()
            .reactant(e, 1)
            .product(d, 1)
            .rate(1.0)
            .add()
            .unwrap();
        assert_eq!(b.reactions_len(), 1);
        let crn = b.build().unwrap();
        assert_eq!(crn.species_len(), 2);
        assert_eq!(crn.reactions().len(), 1);
    }
}
