//! Structural analysis of reaction networks.
//!
//! These tools are not needed to *simulate* a network, but they are useful
//! when synthesising one: the stoichiometry matrix and its conservation laws
//! reveal which totals a module preserves (for instance, the stochastic
//! module of the DAC'07 scheme conserves `e_i + d_i`-style totals only
//! approximately, which is why its purifying reactions must dominate), and
//! the dependency graph drives the Gibson–Bruck next-reaction simulator.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::network::Crn;
use crate::species::SpeciesId;

/// The stoichiometry matrix `S` of a network: `S[s][r]` is the net change in
/// species `s` caused by one firing of reaction `r`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoichiometryMatrix {
    species_len: usize,
    reactions_len: usize,
    /// Row-major storage: `entries[s * reactions_len + r]`.
    entries: Vec<i64>,
}

impl StoichiometryMatrix {
    /// Builds the stoichiometry matrix of `crn`.
    pub fn from_crn(crn: &Crn) -> Self {
        let species_len = crn.species_len();
        let reactions_len = crn.reactions().len();
        let mut entries = vec![0i64; species_len * reactions_len];
        for (r, reaction) in crn.reactions().iter().enumerate() {
            for term in reaction.reactants() {
                entries[term.species.index() * reactions_len + r] -= i64::from(term.coefficient);
            }
            for term in reaction.products() {
                entries[term.species.index() * reactions_len + r] += i64::from(term.coefficient);
            }
        }
        StoichiometryMatrix {
            species_len,
            reactions_len,
            entries,
        }
    }

    /// Returns the number of species (rows).
    pub fn species_len(&self) -> usize {
        self.species_len
    }

    /// Returns the number of reactions (columns).
    pub fn reactions_len(&self) -> usize {
        self.reactions_len
    }

    /// Returns the net change of `species` under `reaction`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn net_change(&self, species: SpeciesId, reaction: usize) -> i64 {
        assert!(reaction < self.reactions_len, "reaction index out of range");
        self.entries[species.index() * self.reactions_len + reaction]
    }

    /// Returns the row of net changes for a species across all reactions.
    ///
    /// # Panics
    ///
    /// Panics if the species index is out of range.
    pub fn row(&self, species: SpeciesId) -> &[i64] {
        let start = species.index() * self.reactions_len;
        &self.entries[start..start + self.reactions_len]
    }

    /// Computes a basis of integer-weighted conservation laws: vectors `w`
    /// with `wᵀ·S = 0`, meaning the weighted species total `Σ w_s · X_s` is
    /// invariant under every reaction.
    ///
    /// The basis is found by Gaussian elimination over the rationals on the
    /// transposed stoichiometry matrix and scaled back to small integers.
    /// Only laws with non-negative weights after sign normalisation are
    /// returned in general position; the basis is not unique.
    pub fn conservation_laws(&self) -> Vec<ConservationLaw> {
        // Solve wᵀ S = 0  ⇔  Sᵀ w = 0. Build Sᵀ as f64 and find the null
        // space via Gaussian elimination with partial pivoting.
        let rows = self.reactions_len; // equations
        let cols = self.species_len; // unknowns
        let mut m = vec![0f64; rows * cols];
        for s in 0..cols {
            for r in 0..rows {
                m[r * cols + s] = self.entries[s * self.reactions_len + r] as f64;
            }
        }
        let mut pivot_cols = Vec::new();
        let mut row = 0usize;
        for col in 0..cols {
            // find pivot
            let mut best = row;
            let mut best_val = 0.0f64;
            for r in row..rows {
                let v = m[r * cols + col].abs();
                if v > best_val {
                    best_val = v;
                    best = r;
                }
            }
            if best_val < 1e-9 {
                continue;
            }
            // swap rows
            if best != row {
                for c in 0..cols {
                    m.swap(row * cols + c, best * cols + c);
                }
            }
            // eliminate
            let pivot = m[row * cols + col];
            for r in 0..rows {
                if r != row {
                    let factor = m[r * cols + col] / pivot;
                    if factor != 0.0 {
                        for c in 0..cols {
                            m[r * cols + c] -= factor * m[row * cols + c];
                        }
                    }
                }
            }
            pivot_cols.push((row, col));
            row += 1;
            if row == rows {
                break;
            }
        }
        let pivot_col_set: Vec<usize> = pivot_cols.iter().map(|&(_, c)| c).collect();
        let mut laws = Vec::new();
        for free_col in 0..cols {
            if pivot_col_set.contains(&free_col) {
                continue;
            }
            // Back-substitute with the free variable set to 1.
            let mut w = vec![0f64; cols];
            w[free_col] = 1.0;
            for &(prow, pcol) in pivot_cols.iter().rev() {
                let pivot = m[prow * cols + pcol];
                let mut acc = 0.0;
                for c in 0..cols {
                    if c != pcol {
                        acc += m[prow * cols + c] * w[c];
                    }
                }
                w[pcol] = -acc / pivot;
            }
            if let Some(law) = ConservationLaw::from_weights(&w) {
                laws.push(law);
            }
        }
        laws
    }
}

/// A weighted conservation law: `Σ weight_s · X_s` is constant under every
/// reaction of the network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConservationLaw {
    weights: BTreeMap<usize, i64>,
}

impl ConservationLaw {
    /// Builds a law from a dense floating-point weight vector, scaling to
    /// small integers. Returns `None` if the weights cannot be represented
    /// with reasonable integers (denominator > 10⁶).
    fn from_weights(weights: &[f64]) -> Option<Self> {
        // Scale so the smallest non-zero |weight| becomes 1-ish, then round.
        let min_nonzero = weights
            .iter()
            .map(|w| w.abs())
            .filter(|w| *w > 1e-9)
            .fold(f64::INFINITY, f64::min);
        if !min_nonzero.is_finite() {
            return None;
        }
        let mut scaled: Vec<f64> = weights.iter().map(|w| w / min_nonzero).collect();
        // Try small multipliers to clear fractions.
        'mult: for mult in 1..=24i64 {
            let candidate: Vec<f64> = scaled.iter().map(|w| w * mult as f64).collect();
            if candidate.iter().all(|w| (w - w.round()).abs() < 1e-6) {
                scaled = candidate;
                let map: BTreeMap<usize, i64> = scaled
                    .iter()
                    .enumerate()
                    .filter(|(_, w)| w.round().abs() > 0.5)
                    .map(|(i, w)| (i, w.round() as i64))
                    .collect();
                if map.is_empty() {
                    return None;
                }
                return Some(ConservationLaw { weights: map });
            }
            if mult == 24 {
                break 'mult;
            }
        }
        None
    }

    /// Returns the (species index, weight) pairs of the law, sorted by
    /// species index.
    pub fn weights(&self) -> impl Iterator<Item = (SpeciesId, i64)> + '_ {
        self.weights
            .iter()
            .map(|(&i, &w)| (SpeciesId::from_index(i), w))
    }

    /// Evaluates the conserved quantity in the given state counts.
    pub fn evaluate(&self, counts: &[u64]) -> i64 {
        self.weights
            .iter()
            .map(|(&i, &w)| w * counts.get(i).copied().unwrap_or(0) as i64)
            .sum()
    }
}

impl fmt::Display for ConservationLaw {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (&sp, &w)) in self.weights.iter().enumerate() {
            if i > 0 {
                f.write_str(" + ")?;
            }
            if w != 1 {
                write!(f, "{w}·")?;
            }
            write!(f, "s{sp}")?;
        }
        f.write_str(" = const")
    }
}

/// The reaction dependency graph used by the Gibson–Bruck next-reaction
/// method: `dependents(r)` lists every reaction whose propensity may change
/// after reaction `r` fires (including `r` itself).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DependencyGraph {
    dependents: Vec<Vec<usize>>,
}

impl DependencyGraph {
    /// Builds the dependency graph of `crn`.
    pub fn from_crn(crn: &Crn) -> Self {
        let reactions = crn.reactions();
        // For each species, which reactions have it as a reactant?
        let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); crn.species_len()];
        for (idx, r) in reactions.iter().enumerate() {
            for term in r.reactants() {
                consumers[term.species.index()].push(idx);
            }
        }
        let mut dependents = Vec::with_capacity(reactions.len());
        for (idx, r) in reactions.iter().enumerate() {
            let mut deps: Vec<usize> = vec![idx];
            for sp in r.species() {
                if r.net_change(sp) != 0 {
                    deps.extend(consumers[sp.index()].iter().copied());
                }
            }
            deps.sort_unstable();
            deps.dedup();
            dependents.push(deps);
        }
        DependencyGraph { dependents }
    }

    /// Returns the reactions whose propensities must be refreshed after
    /// reaction `reaction` fires.
    ///
    /// # Panics
    ///
    /// Panics if `reaction` is out of range.
    pub fn dependents(&self, reaction: usize) -> &[usize] {
        &self.dependents[reaction]
    }

    /// Returns the number of reactions covered by the graph.
    pub fn len(&self) -> usize {
        self.dependents.len()
    }

    /// Returns `true` if the graph covers no reactions.
    pub fn is_empty(&self) -> bool {
        self.dependents.is_empty()
    }

    /// Returns the mean out-degree of the graph — a measure of how coupled
    /// the network is and therefore how much the next-reaction method can
    /// save over the direct method.
    pub fn mean_out_degree(&self) -> f64 {
        if self.dependents.is_empty() {
            return 0.0;
        }
        self.dependents.iter().map(|d| d.len()).sum::<usize>() as f64 / self.dependents.len() as f64
    }
}

/// A compact structural summary of a network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkSummary {
    /// Number of species.
    pub species: usize,
    /// Number of reactions.
    pub reactions: usize,
    /// Histogram of reaction orders (order → count).
    pub order_histogram: BTreeMap<u32, usize>,
    /// Smallest rate constant in the network.
    pub min_rate: f64,
    /// Largest rate constant in the network.
    pub max_rate: f64,
    /// Ratio `max_rate / min_rate` — the total rate separation, which for the
    /// DAC'07 stochastic module is `γ²`.
    pub rate_span: f64,
}

impl NetworkSummary {
    /// Builds the summary of `crn`.
    pub fn from_crn(crn: &Crn) -> Self {
        let mut order_histogram = BTreeMap::new();
        let mut min_rate = f64::INFINITY;
        let mut max_rate = 0.0f64;
        for r in crn.reactions() {
            *order_histogram.entry(r.order()).or_insert(0) += 1;
            min_rate = min_rate.min(r.rate());
            max_rate = max_rate.max(r.rate());
        }
        if crn.reactions().is_empty() {
            min_rate = 0.0;
        }
        let rate_span = if min_rate > 0.0 {
            max_rate / min_rate
        } else {
            0.0
        };
        NetworkSummary {
            species: crn.species_len(),
            reactions: crn.reactions().len(),
            order_histogram,
            min_rate,
            max_rate,
            rate_span,
        }
    }
}

impl fmt::Display for NetworkSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} species, {} reactions, rates in [{:.3e}, {:.3e}] (span {:.3e})",
            self.species, self.reactions, self.min_rate, self.max_rate, self.rate_span
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dimer_crn() -> Crn {
        // a + b -> c, c -> a + b : conserves a+c and b+c.
        "a + b -> c @ 1\nc -> a + b @ 2".parse().unwrap()
    }

    #[test]
    fn stoichiometry_matrix_entries() {
        let crn = dimer_crn();
        let s = crn.stoichiometry();
        let a = crn.species_id("a").unwrap();
        let c = crn.species_id("c").unwrap();
        assert_eq!(s.net_change(a, 0), -1);
        assert_eq!(s.net_change(a, 1), 1);
        assert_eq!(s.net_change(c, 0), 1);
        assert_eq!(s.row(c), &[1, -1]);
        assert_eq!(s.species_len(), 3);
        assert_eq!(s.reactions_len(), 2);
    }

    #[test]
    fn conservation_laws_of_dimerisation() {
        let crn = dimer_crn();
        let laws = crn.stoichiometry().conservation_laws();
        // Expect a 2-dimensional conservation space (3 species, rank-1 S).
        assert_eq!(laws.len(), 2);
        // Every law must indeed be conserved by both reactions.
        let s = crn.stoichiometry();
        for law in &laws {
            for r in 0..s.reactions_len() {
                let delta: i64 = law.weights().map(|(sp, w)| w * s.net_change(sp, r)).sum();
                assert_eq!(delta, 0, "law {law} violated by reaction {r}");
            }
        }
    }

    #[test]
    fn conservation_law_evaluation() {
        let crn = dimer_crn();
        let laws = crn.stoichiometry().conservation_laws();
        let state0 = crn
            .state_from_counts([("a", 5), ("b", 3), ("c", 0)])
            .unwrap();
        let mut state1 = state0.clone();
        state1.apply(&crn.reactions()[0]).unwrap();
        for law in &laws {
            assert_eq!(law.evaluate(state0.counts()), law.evaluate(state1.counts()));
        }
    }

    #[test]
    fn open_network_has_fewer_laws() {
        // a -> 0 destroys molecules: only species untouched by reactions are conserved.
        let crn: Crn = "a -> 0 @ 1".parse().unwrap();
        let laws = crn.stoichiometry().conservation_laws();
        assert!(laws.is_empty());
    }

    #[test]
    fn dependency_graph_links_consumers_of_changed_species() {
        // r0: a -> b, r1: b -> c, r2: c -> a
        let crn: Crn = "a -> b @ 1\nb -> c @ 1\nc -> a @ 1".parse().unwrap();
        let dg = crn.dependency_graph();
        assert_eq!(dg.len(), 3);
        // Firing r0 changes a and b, so r0 (a consumer of a) and r1 (consumer
        // of b) must be refreshed; r2 is unaffected.
        assert_eq!(dg.dependents(0), &[0, 1]);
        assert_eq!(dg.dependents(1), &[1, 2]);
        assert_eq!(dg.dependents(2), &[0, 2]);
        assert!(dg.mean_out_degree() > 1.9 && dg.mean_out_degree() < 2.1);
        assert!(!dg.is_empty());
    }

    #[test]
    fn catalytic_reactions_do_not_propagate_through_catalyst() {
        // r0: cat + x -> cat + y. The catalyst count never changes, so a
        // reaction consuming only `cat` (r1) does not depend on r0.
        let crn: Crn = "cat + x -> cat + y @ 1\ncat + z -> w @ 1".parse().unwrap();
        let dg = crn.dependency_graph();
        assert_eq!(dg.dependents(0), &[0]);
    }

    #[test]
    fn summary_reports_rate_span() {
        let crn: Crn = "e1 -> d1 @ 1\nd1 + d2 -> 0 @ 1e6".parse().unwrap();
        let summary = crn.summary();
        assert_eq!(summary.species, 3);
        assert_eq!(summary.reactions, 2);
        assert_eq!(summary.min_rate, 1.0);
        assert_eq!(summary.max_rate, 1e6);
        assert_eq!(summary.rate_span, 1e6);
        assert_eq!(summary.order_histogram[&1], 1);
        assert_eq!(summary.order_histogram[&2], 1);
        assert!(!summary.to_string().is_empty());
    }
}
