//! Error type for numerical routines.

use std::error::Error;
use std::fmt;

/// Errors produced by the numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NumericsError {
    /// Input slices had mismatched or insufficient lengths.
    InvalidInput {
        /// Description of the problem.
        message: String,
    },
    /// A linear system was singular (or numerically close to singular).
    SingularSystem,
}

impl fmt::Display for NumericsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericsError::InvalidInput { message } => write!(f, "invalid input: {message}"),
            NumericsError::SingularSystem => {
                write!(f, "linear system is singular or ill-conditioned")
            }
        }
    }
}

impl Error for NumericsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(NumericsError::SingularSystem
            .to_string()
            .contains("singular"));
        assert!(NumericsError::InvalidInput {
            message: "empty".into()
        }
        .to_string()
        .contains("empty"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NumericsError>();
    }
}
