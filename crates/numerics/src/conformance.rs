//! Distribution-conformance tests: chi-square and Kolmogorov–Smirnov.
//!
//! The paper validates its synthesized modules by their *distributions* —
//! outcome frequencies, terminal molecule counts — rather than by individual
//! trajectories. Approximate solvers (tau-leaping) are therefore acceptable
//! exactly when their sampled distributions are statistically
//! indistinguishable from the exact SSA's. This module is the shared harness
//! that turns that requirement into assertions:
//!
//! * [`chi_square_goodness_of_fit`] — one sample against an analytic pmf
//!   (e.g. the Poisson stationary law of a birth–death process);
//! * [`chi_square_two_sample`] — two empirical binned samples against each
//!   other (e.g. tau-leaping vs. the direct method);
//! * [`ks_two_sample`] — two-sample Kolmogorov–Smirnov over binned data
//!   (sensitive to CDF shifts the pooled chi-square can miss);
//! * [`histogram_chi_square`] / [`histogram_ks`] — the same tests over
//!   [`Histogram`]s, checking the binnings agree first.
//!
//! Every test returns a [`TestResult`] with the statistic and a p-value;
//! callers assert `result.passes(alpha)` with a *seeded tolerance band* — a
//! small `alpha` (say `1e-3`) under a fixed RNG seed, so the assertion is
//! deterministic yet would catch any systematic distributional drift.
//!
//! Chi-square bins are pooled left-to-right until each pooled bin carries an
//! expected (or combined) count of at least [`MIN_EXPECTED_PER_BIN`], the
//! standard validity condition for the chi-square approximation. The KS
//! p-value uses the asymptotic Kolmogorov distribution, which is
//! conservative on discrete/binned data — fine for conformance assertions,
//! where conservative means "fails only on real discrepancies".

use crate::error::NumericsError;
use crate::histogram::Histogram;

/// Minimum expected (goodness-of-fit) or combined (two-sample) count per
/// pooled chi-square bin.
pub const MIN_EXPECTED_PER_BIN: f64 = 5.0;

/// The outcome of one conformance test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestResult {
    /// The test statistic (chi-square value, or the KS distance `D`).
    pub statistic: f64,
    /// Degrees of freedom for chi-square tests; the effective sample size
    /// `n₁n₂/(n₁+n₂)` for the KS test.
    pub dof: f64,
    /// The probability of a statistic at least this extreme under the null
    /// hypothesis that the distributions agree.
    pub p_value: f64,
}

impl TestResult {
    /// Returns `true` if the null hypothesis ("the distributions agree")
    /// survives at significance level `alpha`, i.e. `p_value >= alpha`.
    pub fn passes(&self, alpha: f64) -> bool {
        self.p_value >= alpha
    }
}

/// One-sample chi-square goodness-of-fit test of binned observations against
/// an analytic probability mass function.
///
/// `expected` gives the probability of each bin (any non-negative weights —
/// they are normalised internally). Bins are pooled left-to-right until each
/// pooled bin has expected count ≥ [`MIN_EXPECTED_PER_BIN`].
///
/// # Errors
///
/// Returns [`NumericsError::InvalidInput`] when the slices are empty or of
/// mismatched length, when the observations or weights are all zero, when a
/// weight is negative or non-finite, or when pooling leaves fewer than two
/// bins (no degrees of freedom to test).
///
/// # Example
///
/// ```
/// // A fair die, observed 600 rolls.
/// let observed = [95u64, 103, 101, 99, 104, 98];
/// let expected = [1.0f64; 6];
/// let r = numerics::chi_square_goodness_of_fit(&observed, &expected).unwrap();
/// assert!(r.passes(0.01));
/// ```
pub fn chi_square_goodness_of_fit(
    observed: &[u64],
    expected: &[f64],
) -> Result<TestResult, NumericsError> {
    if observed.is_empty() || observed.len() != expected.len() {
        return Err(NumericsError::InvalidInput {
            message: format!(
                "observed ({}) and expected ({}) must be non-empty and equal-length",
                observed.len(),
                expected.len()
            ),
        });
    }
    if expected.iter().any(|&p| !p.is_finite() || p < 0.0) {
        return Err(NumericsError::InvalidInput {
            message: "expected weights must be finite and non-negative".to_string(),
        });
    }
    let total = observed.iter().sum::<u64>() as f64;
    let weight_sum: f64 = expected.iter().sum();
    if total == 0.0 || weight_sum <= 0.0 {
        return Err(NumericsError::InvalidInput {
            message: "need at least one observation and positive expected mass".to_string(),
        });
    }

    // Pool left-to-right so every pooled bin has enough expected mass.
    let mut pooled: Vec<(f64, f64)> = Vec::new(); // (observed, expected)
    let mut acc_obs = 0.0;
    let mut acc_exp = 0.0;
    for (&o, &p) in observed.iter().zip(expected) {
        acc_obs += o as f64;
        acc_exp += total * p / weight_sum;
        if acc_exp >= MIN_EXPECTED_PER_BIN {
            pooled.push((acc_obs, acc_exp));
            acc_obs = 0.0;
            acc_exp = 0.0;
        }
    }
    // Fold any under-weight tail into the last pooled bin.
    if acc_exp > 0.0 || acc_obs > 0.0 {
        match pooled.last_mut() {
            Some(last) => {
                last.0 += acc_obs;
                last.1 += acc_exp;
            }
            None => pooled.push((acc_obs, acc_exp)),
        }
    }
    if pooled.len() < 2 {
        return Err(NumericsError::InvalidInput {
            message: "fewer than two bins left after pooling; widen the histogram".to_string(),
        });
    }

    let statistic: f64 = pooled
        .iter()
        .map(|&(o, e)| {
            let d = o - e;
            d * d / e
        })
        .sum();
    let dof = (pooled.len() - 1) as f64;
    Ok(TestResult {
        statistic,
        dof,
        p_value: chi_square_sf(statistic, dof),
    })
}

/// Two-sample chi-square test: are two binned samples drawn from the same
/// distribution?
///
/// Uses the standard statistic
/// `X² = Σᵢ (√(n₂/n₁)·Rᵢ − √(n₁/n₂)·Sᵢ)² / (Rᵢ + Sᵢ)` with bins pooled
/// until each carries a combined count of at least
/// [`MIN_EXPECTED_PER_BIN`]; degrees of freedom are `bins − 1`.
///
/// # Errors
///
/// Returns [`NumericsError::InvalidInput`] for empty/mismatched inputs, an
/// empty sample, or fewer than two pooled bins.
pub fn chi_square_two_sample(a: &[u64], b: &[u64]) -> Result<TestResult, NumericsError> {
    if a.is_empty() || a.len() != b.len() {
        return Err(NumericsError::InvalidInput {
            message: format!(
                "samples must be non-empty and equal-length (got {} and {})",
                a.len(),
                b.len()
            ),
        });
    }
    let n1 = a.iter().sum::<u64>() as f64;
    let n2 = b.iter().sum::<u64>() as f64;
    if n1 == 0.0 || n2 == 0.0 {
        return Err(NumericsError::InvalidInput {
            message: "both samples need at least one observation".to_string(),
        });
    }
    let k1 = (n2 / n1).sqrt();
    let k2 = (n1 / n2).sqrt();

    let mut pooled: Vec<(f64, f64)> = Vec::new();
    let mut acc_a = 0.0;
    let mut acc_b = 0.0;
    for (&r, &s) in a.iter().zip(b) {
        acc_a += r as f64;
        acc_b += s as f64;
        if acc_a + acc_b >= MIN_EXPECTED_PER_BIN {
            pooled.push((acc_a, acc_b));
            acc_a = 0.0;
            acc_b = 0.0;
        }
    }
    if acc_a + acc_b > 0.0 {
        match pooled.last_mut() {
            Some(last) => {
                last.0 += acc_a;
                last.1 += acc_b;
            }
            None => pooled.push((acc_a, acc_b)),
        }
    }
    if pooled.len() < 2 {
        return Err(NumericsError::InvalidInput {
            message: "fewer than two bins left after pooling; widen the histogram".to_string(),
        });
    }

    let statistic: f64 = pooled
        .iter()
        .map(|&(r, s)| {
            let d = k1 * r - k2 * s;
            d * d / (r + s)
        })
        .sum();
    let dof = (pooled.len() - 1) as f64;
    Ok(TestResult {
        statistic,
        dof,
        p_value: chi_square_sf(statistic, dof),
    })
}

/// Two-sample Kolmogorov–Smirnov test over binned samples.
///
/// The statistic is the maximum absolute difference between the two
/// empirical CDFs, evaluated at bin boundaries; the p-value uses the
/// asymptotic Kolmogorov distribution with the Stephens small-sample
/// correction. On binned/discrete data the test is conservative (ties make
/// large `D` values rarer than the continuous theory assumes), so a failure
/// indicates a real discrepancy.
///
/// # Errors
///
/// Returns [`NumericsError::InvalidInput`] for empty/mismatched inputs or an
/// empty sample.
pub fn ks_two_sample(a: &[u64], b: &[u64]) -> Result<TestResult, NumericsError> {
    if a.is_empty() || a.len() != b.len() {
        return Err(NumericsError::InvalidInput {
            message: format!(
                "samples must be non-empty and equal-length (got {} and {})",
                a.len(),
                b.len()
            ),
        });
    }
    let n1 = a.iter().sum::<u64>() as f64;
    let n2 = b.iter().sum::<u64>() as f64;
    if n1 == 0.0 || n2 == 0.0 {
        return Err(NumericsError::InvalidInput {
            message: "both samples need at least one observation".to_string(),
        });
    }
    let mut cum_a = 0.0;
    let mut cum_b = 0.0;
    let mut d = 0.0f64;
    for (&r, &s) in a.iter().zip(b) {
        cum_a += r as f64 / n1;
        cum_b += s as f64 / n2;
        d = d.max((cum_a - cum_b).abs());
    }
    let ne = n1 * n2 / (n1 + n2);
    let lambda = (ne.sqrt() + 0.12 + 0.11 / ne.sqrt()) * d;
    Ok(TestResult {
        statistic: d,
        dof: ne,
        p_value: kolmogorov_sf(lambda),
    })
}

/// [`chi_square_two_sample`] over two [`Histogram`]s.
///
/// # Errors
///
/// Additionally returns [`NumericsError::InvalidInput`] when the histograms
/// use different ranges or bin counts.
pub fn histogram_chi_square(a: &Histogram, b: &Histogram) -> Result<TestResult, NumericsError> {
    require_same_binning(a, b)?;
    chi_square_two_sample(a.counts(), b.counts())
}

/// [`ks_two_sample`] over two [`Histogram`]s.
///
/// # Errors
///
/// Additionally returns [`NumericsError::InvalidInput`] when the histograms
/// use different ranges or bin counts.
pub fn histogram_ks(a: &Histogram, b: &Histogram) -> Result<TestResult, NumericsError> {
    require_same_binning(a, b)?;
    ks_two_sample(a.counts(), b.counts())
}

fn require_same_binning(a: &Histogram, b: &Histogram) -> Result<(), NumericsError> {
    if !a.same_binning(b) {
        return Err(NumericsError::InvalidInput {
            message: format!(
                "histogram binnings differ: [{}, {}]x{} vs [{}, {}]x{}",
                a.lo(),
                a.hi(),
                a.bins(),
                b.lo(),
                b.hi(),
                b.bins()
            ),
        });
    }
    Ok(())
}

/// The Poisson probability mass function `P(X = k)` for mean `lambda`,
/// computed in log space so large means and counts stay finite.
///
/// Handy for goodness-of-fit tests against Poisson stationary laws (the
/// immigration–death process of the statistical-validation suite).
pub fn poisson_pmf(lambda: f64, k: u64) -> f64 {
    if lambda <= 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    let kf = k as f64;
    (kf * lambda.ln() - lambda - ln_gamma(kf + 1.0)).exp()
}

/// The chi-square survival function `P(X² ≥ x)` with `dof` degrees of
/// freedom: the p-value of a chi-square statistic.
pub fn chi_square_sf(x: f64, dof: f64) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    gamma_q(dof / 2.0, x / 2.0)
}

/// The Kolmogorov distribution survival function
/// `Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²}`.
fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// The natural log of the gamma function, Lanczos approximation (g = 7,
/// n = 9); accurate to ~15 significant digits for positive arguments.
pub fn ln_gamma(x: f64) -> f64 {
    // The canonical Lanczos(g = 7) coefficients, quoted in full precision.
    #[allow(clippy::excessive_precision)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_59,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula; valid because the callers only reach this for
        // x in (0, 0.5).
        std::f64::consts::PI.ln() - (std::f64::consts::PI * x).sin().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let t = x + 7.5;
        let mut a = COEF[0];
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

/// The regularised upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`,
/// via the series expansion for `x < a + 1` and the Lentz continued fraction
/// otherwise (Numerical Recipes §6.2).
fn gamma_q(a: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    if a <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_continued_fraction(a, x)
    }
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    (sum.ln() + a * x.ln() - x - ln_gamma(a)).exp().min(1.0)
}

fn gamma_q_continued_fraction(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    ((a * x.ln() - x - ln_gamma(a)).exp() * h).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n−1)!
        let factorials = [1.0f64, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (i, &f) in factorials.iter().enumerate() {
            let n = (i + 1) as f64;
            assert!(
                (ln_gamma(n) - f.ln()).abs() < 1e-10,
                "ln Γ({n}) = {} vs ln {f}",
                ln_gamma(n)
            );
        }
        // Γ(1/2) = √π.
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn chi_square_sf_reference_values() {
        // Classic table entries: P(X² ≥ x) for given dof.
        let cases = [
            (3.841, 1.0, 0.05),
            (5.991, 2.0, 0.05),
            (18.307, 10.0, 0.05),
            (6.635, 1.0, 0.01),
            (23.209, 10.0, 0.01),
        ];
        for (x, dof, p) in cases {
            let sf = chi_square_sf(x, dof);
            assert!(
                (sf - p).abs() < 5e-4,
                "sf({x}, {dof}) = {sf}, expected ≈ {p}"
            );
        }
        assert_eq!(chi_square_sf(0.0, 5.0), 1.0);
        assert!(chi_square_sf(1000.0, 5.0) < 1e-12);
    }

    #[test]
    fn poisson_pmf_sums_to_one() {
        for lambda in [0.5f64, 4.0, 30.0, 250.0] {
            let sum: f64 = (0..2_000).map(|k| poisson_pmf(lambda, k)).sum();
            assert!((sum - 1.0).abs() < 1e-9, "λ={lambda}: Σ pmf = {sum}");
        }
        assert_eq!(poisson_pmf(0.0, 0), 1.0);
        assert_eq!(poisson_pmf(0.0, 3), 0.0);
    }

    #[test]
    fn goodness_of_fit_accepts_matching_distribution() {
        // 6000 "rolls" of a fair die, near-perfectly uniform.
        let observed = [1010u64, 990, 1005, 995, 1003, 997];
        let r = chi_square_goodness_of_fit(&observed, &[1.0; 6]).unwrap();
        assert!(r.passes(0.05), "p = {}", r.p_value);
        assert_eq!(r.dof, 5.0);
    }

    #[test]
    fn goodness_of_fit_rejects_wrong_distribution() {
        // Heavily loaded die.
        let observed = [3000u64, 600, 600, 600, 600, 600];
        let r = chi_square_goodness_of_fit(&observed, &[1.0; 6]).unwrap();
        assert!(!r.passes(1e-6), "p = {}", r.p_value);
    }

    #[test]
    fn goodness_of_fit_pools_sparse_bins() {
        // Expected mass concentrates in the first bins; trailing bins pool.
        let observed = [50u64, 30, 12, 5, 2, 1, 0, 0];
        let expected = [0.5, 0.3, 0.12, 0.05, 0.02, 0.007, 0.002, 0.001];
        let r = chi_square_goodness_of_fit(&observed, &expected).unwrap();
        assert!(r.dof < 7.0, "pooling must reduce dof, got {}", r.dof);
        assert!(r.passes(0.01));
    }

    #[test]
    fn two_sample_chi_square_accepts_same_source() {
        let a = [120u64, 240, 250, 230, 160];
        let b = [130u64, 235, 240, 245, 150];
        let r = chi_square_two_sample(&a, &b).unwrap();
        assert!(r.passes(0.05), "p = {}", r.p_value);
    }

    #[test]
    fn two_sample_chi_square_rejects_shifted_source() {
        let a = [500u64, 300, 150, 50, 0];
        let b = [0u64, 50, 150, 300, 500];
        let r = chi_square_two_sample(&a, &b).unwrap();
        assert!(!r.passes(1e-6), "p = {}", r.p_value);
    }

    #[test]
    fn two_sample_handles_different_sample_sizes() {
        let a = [100u64, 200, 100];
        let b = [1000u64, 2000, 1000];
        let r = chi_square_two_sample(&a, &b).unwrap();
        assert!(r.passes(0.05), "p = {}", r.p_value);
    }

    #[test]
    fn ks_two_sample_accepts_and_rejects() {
        let same_a = [100u64, 200, 300, 200, 100];
        let same_b = [95u64, 210, 290, 205, 100];
        let r = ks_two_sample(&same_a, &same_b).unwrap();
        assert!(r.passes(0.05), "p = {}", r.p_value);

        let shifted = [300u64, 300, 200, 100, 0];
        let r = ks_two_sample(&same_a, &shifted).unwrap();
        assert!(!r.passes(1e-4), "p = {}", r.p_value);
        assert!(r.statistic > 0.1);
    }

    #[test]
    fn histogram_wrappers_check_binning() {
        let mut a = Histogram::new(0.0, 10.0, 10);
        let mut b = Histogram::new(0.0, 10.0, 10);
        for i in 0..1000 {
            a.add((i % 10) as f64 + 0.5);
            b.add((i % 10) as f64 + 0.5);
        }
        assert!(histogram_chi_square(&a, &b).unwrap().passes(0.05));
        assert!(histogram_ks(&a, &b).unwrap().passes(0.05));

        let c = Histogram::new(0.0, 5.0, 10);
        assert!(histogram_chi_square(&a, &c).is_err());
        assert!(histogram_ks(&a, &c).is_err());
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        assert!(chi_square_goodness_of_fit(&[], &[]).is_err());
        assert!(chi_square_goodness_of_fit(&[1, 2], &[1.0]).is_err());
        assert!(chi_square_goodness_of_fit(&[0, 0], &[1.0, 1.0]).is_err());
        assert!(chi_square_goodness_of_fit(&[5, 5], &[1.0, f64::NAN]).is_err());
        assert!(chi_square_two_sample(&[1, 2], &[1, 2, 3]).is_err());
        assert!(chi_square_two_sample(&[0, 0], &[1, 2]).is_err());
        assert!(ks_two_sample(&[], &[]).is_err());
        assert!(ks_two_sample(&[1], &[0]).is_err());
        // Everything pooled into a single bin: nothing left to test.
        assert!(chi_square_goodness_of_fit(&[3, 1], &[1.0, 1.0]).is_err());
    }
}
