//! Small numerics toolkit for the stochastic-synthesis workspace.
//!
//! The paper's evaluation needs only a handful of numerical tools: summary
//! statistics of Monte-Carlo estimates, binomial confidence intervals for
//! outcome probabilities, histograms for error analysis, and linear least
//! squares to fit the lambda-phage response curve
//! `P = a + b·log2(MOI) + c·MOI` (Equation 14). This crate provides exactly
//! those, with no external dependencies beyond `serde` — plus the
//! distribution-conformance harness (chi-square and Kolmogorov–Smirnov
//! tests, [`chi_square_two_sample`], [`ks_two_sample`], …) that the
//! simulator test suites use to prove approximate solvers such as
//! tau-leaping stay distributionally faithful to the exact SSA.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), numerics::NumericsError> {
//! use numerics::LogLinearFit;
//!
//! // Noiseless data generated from 15 + 6·log2(x) + x/6.
//! let xs: Vec<f64> = (1..=10).map(|m| m as f64).collect();
//! let ys: Vec<f64> = xs.iter().map(|x| 15.0 + 6.0 * x.log2() + x / 6.0).collect();
//! let fit = LogLinearFit::fit(&xs, &ys)?;
//! assert!((fit.constant() - 15.0).abs() < 1e-9);
//! assert!((fit.log_coefficient() - 6.0).abs() < 1e-9);
//! assert!((fit.linear_coefficient() - 1.0 / 6.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ci;
mod conformance;
mod error;
mod exact_sum;
mod fit;
mod histogram;
mod linalg;
mod lsq;
pub mod ode;
mod stats;

pub use ci::{binomial_confidence_interval, wilson_interval, ConfidenceInterval};
pub use conformance::{
    chi_square_goodness_of_fit, chi_square_sf, chi_square_two_sample, histogram_chi_square,
    histogram_ks, ks_two_sample, ln_gamma, poisson_pmf, TestResult, MIN_EXPECTED_PER_BIN,
};
pub use error::NumericsError;
pub use exact_sum::ExactSum;
pub use fit::{BasisFit, LogLinearFit};
pub use histogram::Histogram;
pub use linalg::Matrix;
pub use lsq::least_squares;
pub use ode::{OdeError, OdeOutcome, Rk45};
pub use stats::{mean, std_dev, summary, variance, Summary};
