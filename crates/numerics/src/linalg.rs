//! Minimal dense-matrix linear algebra.

use std::fmt;
use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

use crate::error::NumericsError;

/// A small dense row-major matrix of `f64`.
///
/// This is intentionally minimal: the workspace only needs to assemble and
/// solve the (tiny) normal equations of a least-squares fit, so the matrix
/// offers construction, element access, multiplication, transposition and a
/// Gaussian-elimination solver with partial pivoting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length must equal rows * cols"
        );
        Matrix { rows, cols, data }
    }

    /// Returns the number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Returns the number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the transpose of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Multiplies `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not agree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let v = self[(r, k)];
                if v == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    out[(r, c)] += v * other[(k, c)];
                }
            }
        }
        out
    }

    /// Multiplies the matrix by a column vector.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(
            v.len(),
            self.cols,
            "vector length must equal matrix columns"
        );
        (0..self.rows)
            .map(|r| (0..self.cols).map(|c| self[(r, c)] * v[c]).sum())
            .collect()
    }

    /// Solves `self · x = b` by Gaussian elimination with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidInput`] if the matrix is not square or
    /// `b` has the wrong length, and [`NumericsError::SingularSystem`] if a
    /// pivot is (numerically) zero.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericsError> {
        if self.rows != self.cols {
            return Err(NumericsError::InvalidInput {
                message: format!("matrix is {}x{}, expected square", self.rows, self.cols),
            });
        }
        if b.len() != self.rows {
            return Err(NumericsError::InvalidInput {
                message: format!("rhs has length {}, expected {}", b.len(), self.rows),
            });
        }
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        for col in 0..n {
            // Partial pivoting.
            let mut pivot_row = col;
            let mut pivot_val = a[col * n + col].abs();
            for r in (col + 1)..n {
                let v = a[r * n + col].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-12 {
                return Err(NumericsError::SingularSystem);
            }
            if pivot_row != col {
                for c in 0..n {
                    a.swap(col * n + c, pivot_row * n + c);
                }
                x.swap(col, pivot_row);
            }
            // Eliminate below.
            for r in (col + 1)..n {
                let factor = a[r * n + col] / a[col * n + col];
                if factor == 0.0 {
                    continue;
                }
                for c in col..n {
                    a[r * n + c] -= factor * a[col * n + c];
                }
                x[r] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut acc = x[col];
            for c in (col + 1)..n {
                acc -= a[col * n + c] * x[c];
            }
            x[col] = acc / a[col * n + col];
        }
        Ok(x)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, "{:>12.5} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_indexing() {
        let m = Matrix::identity(3);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 1)], 0.0);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    fn matmul_and_transpose() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = a.transpose();
        let p = a.matmul(&b);
        assert_eq!(p.rows(), 2);
        assert_eq!(p.cols(), 2);
        assert_eq!(p[(0, 0)], 14.0);
        assert_eq!(p[(0, 1)], 32.0);
        assert_eq!(p[(1, 1)], 77.0);
    }

    #[test]
    fn matvec_matches_manual_computation() {
        let a = Matrix::from_rows(2, 2, vec![2.0, 1.0, 0.0, 3.0]);
        assert_eq!(a.matvec(&[1.0, 2.0]), vec![4.0, 6.0]);
    }

    #[test]
    fn solves_small_system() {
        // 2x + y = 5 ; x + 3y = 10 -> x = 1, y = 3.
        let a = Matrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
        let x = a.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solves_system_requiring_pivoting() {
        // First pivot would be zero without row swapping.
        let a = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_system_is_detected() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert_eq!(
            a.solve(&[1.0, 2.0]).unwrap_err(),
            NumericsError::SingularSystem
        );
    }

    #[test]
    fn shape_errors_are_reported() {
        let a = Matrix::from_rows(2, 3, vec![0.0; 6]);
        assert!(a.solve(&[1.0, 2.0]).is_err());
        let b = Matrix::identity(2);
        assert!(b.solve(&[1.0]).is_err());
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_rows_checks_length() {
        let _ = Matrix::from_rows(2, 2, vec![1.0]);
    }
}
