//! Descriptive statistics.

use serde::{Deserialize, Serialize};

/// Returns the arithmetic mean of `values` (0.0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Returns the unbiased sample variance of `values` (0.0 for fewer than two
/// samples).
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (values.len() - 1) as f64
}

/// Returns the sample standard deviation of `values`.
pub fn std_dev(values: &[f64]) -> f64 {
    variance(values).sqrt()
}

/// A five-number-style summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

/// Summarises a sample. Returns a zeroed summary for empty input.
pub fn summary(values: &[f64]) -> Summary {
    if values.is_empty() {
        return Summary {
            count: 0,
            mean: 0.0,
            std_dev: 0.0,
            min: 0.0,
            max: 0.0,
        };
    }
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in values {
        min = min.min(v);
        max = max.max(v);
    }
    Summary {
        count: values.len(),
        mean: mean(values),
        std_dev: std_dev(values),
        min,
        max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_of_known_sample() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Population variance of this classic sample is 4; the unbiased
        // sample variance is 32/7.
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
        let s = summary(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn summary_of_sample() {
        let s = summary(&[1.0, 2.0, 3.0]);
        assert_eq!(s.count, 3);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.std_dev - 1.0).abs() < 1e-12);
    }
}
