//! Curve fitting with user-supplied basis functions.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::NumericsError;
use crate::linalg::Matrix;
use crate::lsq::least_squares;

/// A least-squares fit of `y ≈ Σ_k coeff_k · basis_k(x)` for arbitrary basis
/// functions of a scalar input.
///
/// This generalises the paper's Equation 14 fit; [`LogLinearFit`] is the
/// concrete three-basis instance (constant, `log2(x)`, `x`) used for the
/// lambda-phage response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BasisFit {
    coefficients: Vec<f64>,
    residual_sum_of_squares: f64,
    r_squared: f64,
}

impl BasisFit {
    /// Fits coefficients for the given basis functions to `(xs, ys)` samples.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidInput`] if `xs` and `ys` have
    /// different lengths or fewer samples than basis functions, and
    /// [`NumericsError::SingularSystem`] if the basis columns are linearly
    /// dependent on the given samples.
    pub fn fit(
        xs: &[f64],
        ys: &[f64],
        basis: &[&dyn Fn(f64) -> f64],
    ) -> Result<Self, NumericsError> {
        if xs.len() != ys.len() {
            return Err(NumericsError::InvalidInput {
                message: format!("xs has {} samples but ys has {}", xs.len(), ys.len()),
            });
        }
        if basis.is_empty() {
            return Err(NumericsError::InvalidInput {
                message: "at least one basis function is required".into(),
            });
        }
        let mut design = Matrix::zeros(xs.len(), basis.len());
        for (i, &x) in xs.iter().enumerate() {
            for (k, f) in basis.iter().enumerate() {
                design[(i, k)] = f(x);
            }
        }
        let coefficients = least_squares(&design, ys)?;
        let predictions = design.matvec(&coefficients);
        let rss: f64 = predictions
            .iter()
            .zip(ys)
            .map(|(p, y)| (p - y).powi(2))
            .sum();
        let mean_y = crate::stats::mean(ys);
        let tss: f64 = ys.iter().map(|y| (y - mean_y).powi(2)).sum();
        let r_squared = if tss > 0.0 { 1.0 - rss / tss } else { 1.0 };
        Ok(BasisFit {
            coefficients,
            residual_sum_of_squares: rss,
            r_squared,
        })
    }

    /// Returns the fitted coefficients, one per basis function.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Returns the residual sum of squares of the fit.
    pub fn residual_sum_of_squares(&self) -> f64 {
        self.residual_sum_of_squares
    }

    /// Returns the coefficient of determination R².
    pub fn r_squared(&self) -> f64 {
        self.r_squared
    }
}

/// A fit of the paper's Equation 14 form:
/// `y = constant + log_coefficient · log2(x) + linear_coefficient · x`.
///
/// The paper fits `P(lysis) = 15 + 6·log2(MOI) + MOI/6` (in percent) to the
/// natural lambda-phage model's Monte-Carlo response.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), numerics::NumericsError> {
/// let xs = [1.0f64, 2.0, 4.0, 8.0];
/// let ys: Vec<f64> = xs.iter().map(|&x| 15.0 + 6.0 * x.log2() + x / 6.0).collect();
/// let fit = numerics::LogLinearFit::fit(&xs, &ys)?;
/// assert!((fit.evaluate(3.0) - (15.0 + 6.0 * 3.0f64.log2() + 0.5)).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogLinearFit {
    constant: f64,
    log_coefficient: f64,
    linear_coefficient: f64,
    r_squared: f64,
}

impl LogLinearFit {
    /// Fits the three coefficients to `(xs, ys)` samples. All `xs` must be
    /// strictly positive (they appear inside `log2`).
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidInput`] for non-positive inputs or
    /// fewer than three samples, and [`NumericsError::SingularSystem`] if the
    /// samples cannot distinguish the basis functions (e.g. all `xs` equal).
    pub fn fit(xs: &[f64], ys: &[f64]) -> Result<Self, NumericsError> {
        if xs.iter().any(|&x| x <= 0.0) {
            return Err(NumericsError::InvalidInput {
                message: "log-linear fit requires strictly positive x samples".into(),
            });
        }
        let fit = BasisFit::fit(xs, ys, &[&|_| 1.0, &|x: f64| x.log2(), &|x| x])?;
        Ok(LogLinearFit {
            constant: fit.coefficients()[0],
            log_coefficient: fit.coefficients()[1],
            linear_coefficient: fit.coefficients()[2],
            r_squared: fit.r_squared(),
        })
    }

    /// Creates a fit directly from known coefficients (used to express the
    /// paper's Equation 14 without refitting).
    pub fn from_coefficients(constant: f64, log_coefficient: f64, linear_coefficient: f64) -> Self {
        LogLinearFit {
            constant,
            log_coefficient,
            linear_coefficient,
            r_squared: 1.0,
        }
    }

    /// The constant term `a`.
    pub fn constant(&self) -> f64 {
        self.constant
    }

    /// The coefficient `b` of `log2(x)`.
    pub fn log_coefficient(&self) -> f64 {
        self.log_coefficient
    }

    /// The coefficient `c` of `x`.
    pub fn linear_coefficient(&self) -> f64 {
        self.linear_coefficient
    }

    /// The coefficient of determination R² of the fit (1.0 for fits created
    /// with [`LogLinearFit::from_coefficients`]).
    pub fn r_squared(&self) -> f64 {
        self.r_squared
    }

    /// Evaluates the fitted curve at `x`.
    pub fn evaluate(&self, x: f64) -> f64 {
        self.constant + self.log_coefficient * x.log2() + self.linear_coefficient * x
    }
}

impl fmt::Display for LogLinearFit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3} + {:.3}·log2(x) + {:.4}·x  (R² = {:.4})",
            self.constant, self.log_coefficient, self.linear_coefficient, self.r_squared
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_fit_recovers_quadratic() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.0 - 2.0 * x + 0.5 * x * x).collect();
        let fit = BasisFit::fit(&xs, &ys, &[&|_| 1.0, &|x| x, &|x| x * x]).unwrap();
        assert!((fit.coefficients()[0] - 1.0).abs() < 1e-8);
        assert!((fit.coefficients()[1] + 2.0).abs() < 1e-8);
        assert!((fit.coefficients()[2] - 0.5).abs() < 1e-8);
        assert!(fit.residual_sum_of_squares() < 1e-12);
        assert!((fit.r_squared() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log_linear_fit_recovers_equation_14() {
        let xs: Vec<f64> = (1..=10).map(|m| m as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 15.0 + 6.0 * x.log2() + x / 6.0).collect();
        let fit = LogLinearFit::fit(&xs, &ys).unwrap();
        assert!((fit.constant() - 15.0).abs() < 1e-8);
        assert!((fit.log_coefficient() - 6.0).abs() < 1e-8);
        assert!((fit.linear_coefficient() - 1.0 / 6.0).abs() < 1e-8);
        assert!(fit.r_squared() > 0.999_999);
        assert!(fit.to_string().contains("log2"));
    }

    #[test]
    fn noisy_fit_is_close() {
        let xs: Vec<f64> = (1..=10).map(|m| m as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 15.0 + 6.0 * x.log2() + x / 6.0 + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let fit = LogLinearFit::fit(&xs, &ys).unwrap();
        assert!((fit.constant() - 15.0).abs() < 2.0);
        assert!((fit.log_coefficient() - 6.0).abs() < 2.0);
        assert!(fit.r_squared() > 0.97);
    }

    #[test]
    fn from_coefficients_evaluates_equation_14() {
        let eq14 = LogLinearFit::from_coefficients(15.0, 6.0, 1.0 / 6.0);
        assert!((eq14.evaluate(1.0) - (15.0 + 1.0 / 6.0)).abs() < 1e-12);
        assert!((eq14.evaluate(8.0) - (15.0 + 18.0 + 8.0 / 6.0)).abs() < 1e-12);
        assert_eq!(eq14.r_squared(), 1.0);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(LogLinearFit::fit(&[0.0, 1.0, 2.0], &[1.0, 2.0, 3.0]).is_err());
        assert!(LogLinearFit::fit(&[1.0, 2.0], &[1.0]).is_err());
        assert!(BasisFit::fit(&[1.0], &[1.0], &[]).is_err());
        // All-equal xs cannot distinguish the three basis functions.
        assert!(LogLinearFit::fit(&[2.0, 2.0, 2.0, 2.0], &[1.0, 1.0, 1.0, 1.0]).is_err());
    }
}
