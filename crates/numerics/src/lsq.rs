//! Linear least squares.

use crate::error::NumericsError;
use crate::linalg::Matrix;

/// Solves the linear least-squares problem `min ‖A·x − y‖²` via the normal
/// equations `AᵀA·x = Aᵀy`.
///
/// `design` is the design matrix `A` with one row per observation and one
/// column per coefficient; `observations` is `y`.
///
/// The normal-equation approach is numerically adequate for the tiny,
/// well-conditioned systems that arise in this workspace (at most a handful
/// of basis functions).
///
/// # Errors
///
/// Returns [`NumericsError::InvalidInput`] if the dimensions are
/// inconsistent or there are fewer observations than coefficients, and
/// [`NumericsError::SingularSystem`] if the normal equations are singular
/// (e.g. two identical basis columns).
pub fn least_squares(design: &Matrix, observations: &[f64]) -> Result<Vec<f64>, NumericsError> {
    if design.rows() != observations.len() {
        return Err(NumericsError::InvalidInput {
            message: format!(
                "design matrix has {} rows but {} observations were given",
                design.rows(),
                observations.len()
            ),
        });
    }
    if design.rows() < design.cols() {
        return Err(NumericsError::InvalidInput {
            message: format!(
                "need at least {} observations to fit {} coefficients, got {}",
                design.cols(),
                design.cols(),
                design.rows()
            ),
        });
    }
    let at = design.transpose();
    let ata = at.matmul(design);
    let aty = at.matvec(observations);
    ata.solve(&aty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_fit_of_a_line() {
        // y = 2 + 3x sampled exactly.
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 + 3.0 * x).collect();
        let mut design = Matrix::zeros(xs.len(), 2);
        for (i, &x) in xs.iter().enumerate() {
            design[(i, 0)] = 1.0;
            design[(i, 1)] = x;
        }
        let coeffs = least_squares(&design, &ys).unwrap();
        assert!((coeffs[0] - 2.0).abs() < 1e-10);
        assert!((coeffs[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn noisy_overdetermined_fit_minimises_residual() {
        // y = 1 + 0.5x with symmetric noise: the fit should land close.
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let noise = [0.1, -0.1];
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| 1.0 + 0.5 * x + noise[i % 2])
            .collect();
        let mut design = Matrix::zeros(xs.len(), 2);
        for (i, &x) in xs.iter().enumerate() {
            design[(i, 0)] = 1.0;
            design[(i, 1)] = x;
        }
        let coeffs = least_squares(&design, &ys).unwrap();
        assert!((coeffs[0] - 1.0).abs() < 0.1);
        assert!((coeffs[1] - 0.5).abs() < 0.01);
    }

    #[test]
    fn dimension_mismatches_are_rejected() {
        let design = Matrix::zeros(3, 2);
        assert!(least_squares(&design, &[1.0, 2.0]).is_err());
        let underdetermined = Matrix::zeros(1, 2);
        assert!(least_squares(&underdetermined, &[1.0]).is_err());
    }

    #[test]
    fn collinear_columns_are_singular() {
        let mut design = Matrix::zeros(4, 2);
        for i in 0..4 {
            design[(i, 0)] = 1.0;
            design[(i, 1)] = 2.0; // identical up to scale -> singular AᵀA
        }
        assert_eq!(
            least_squares(&design, &[1.0, 2.0, 3.0, 4.0]).unwrap_err(),
            NumericsError::SingularSystem
        );
    }
}
