//! Fixed-width histograms.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A fixed-width histogram over a closed interval.
///
/// Values below the range land in the first bin; values above land in the
/// last bin (so no sample is ever dropped). This is convenient for Monte
/// Carlo output where a handful of outliers should not panic a report.
///
/// # Example
///
/// ```
/// let mut h = numerics::Histogram::new(0.0, 10.0, 5);
/// for v in [0.5, 1.5, 2.5, 2.6, 9.9] {
///     h.add(v);
/// }
/// assert_eq!(h.counts(), &[2, 2, 0, 0, 1]);
/// assert_eq!(h.total(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi]` with `bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, value: f64) {
        let bins = self.counts.len();
        let width = (self.hi - self.lo) / bins as f64;
        let idx = ((value - self.lo) / width).floor();
        let idx = if idx.is_nan() { 0 } else { idx as i64 };
        let idx = idx.clamp(0, bins as i64 - 1) as usize;
        self.counts[idx] += 1;
    }

    /// Adds many samples.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.add(v);
        }
    }

    /// Returns the per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Returns the total number of samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Returns the number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Returns the lower edge of the histogram range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Returns the upper edge of the histogram range.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Returns `true` if `other` uses the same range and bin count, i.e. the
    /// two histograms are bin-for-bin comparable (the precondition of the
    /// two-sample conformance tests).
    pub fn same_binning(&self, other: &Histogram) -> bool {
        self.lo == other.lo && self.hi == other.hi && self.counts.len() == other.counts.len()
    }

    /// Returns `(bin centre, count)` pairs.
    pub fn centres(&self) -> Vec<(f64, u64)> {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + width * (i as f64 + 0.5), c))
            .collect()
    }

    /// Returns the fraction of samples in each bin (empty histogram gives
    /// all zeros).
    pub fn densities(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        for (centre, count) in self.centres() {
            let bar_len = (count * 40 / max) as usize;
            writeln!(f, "{centre:>10.3} | {:<40} {count}", "#".repeat(bar_len))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_are_assigned_correctly() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.extend([0.1, 0.3, 0.6, 0.9, 0.99]);
        assert_eq!(h.counts(), &[1, 1, 1, 2]);
        assert_eq!(h.bins(), 4);
    }

    #[test]
    fn out_of_range_values_clamp_to_edge_bins() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(-5.0);
        h.add(7.0);
        assert_eq!(h.counts(), &[1, 1]);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn centres_and_densities() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        h.extend([0.5, 1.5, 1.6, 3.5]);
        let centres: Vec<f64> = h.centres().iter().map(|&(c, _)| c).collect();
        assert_eq!(centres, vec![0.5, 1.5, 2.5, 3.5]);
        let d = h.densities();
        assert_eq!(d, vec![0.25, 0.5, 0.0, 0.25]);
    }

    #[test]
    fn empty_histogram_density_is_zero() {
        let h = Histogram::new(0.0, 1.0, 3);
        assert_eq!(h.densities(), vec![0.0, 0.0, 0.0]);
        assert!(!h.to_string().is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
