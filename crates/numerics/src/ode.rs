//! Adaptive explicit Runge–Kutta integration (Dormand–Prince 5(4)).
//!
//! The hybrid multiscale stepper in the `gillespie` crate advances its fast
//! reaction partition as a deterministic mean field while accumulating the
//! integrated hazard of the slow partition; what it needs from an ODE layer
//! is (a) an embedded error estimate so stiffness shows up as small steps
//! instead of silent inaccuracy, (b) an *event function* so integration can
//! stop exactly where the slow hazard exhausts its exponential budget, and
//! (c) bit-reproducible arithmetic — the integrator is pure `f64` with no
//! time- or thread-dependent state, so a trajectory is a deterministic
//! function of its inputs on every machine.
//!
//! [`Rk45`] implements the classic Dormand–Prince RK5(4) pair (the
//! `dopri5`/`ode45` coefficients) with FSAL stage reuse, PI-free step-size
//! control and Illinois false-position event location on accepted steps.
//!
//! # Example
//!
//! ```
//! use numerics::ode::Rk45;
//!
//! // dy/dt = -y from y(0) = 1: y(2) = e^{-2}.
//! let mut solver = Rk45::new();
//! let mut y = vec![1.0];
//! let outcome = solver
//!     .integrate(|_t, y, dy| dy[0] = -y[0], 0.0, 2.0, &mut y)
//!     .unwrap();
//! assert!((y[0] - (-2.0f64).exp()).abs() < 1e-6);
//! assert_eq!(outcome.t, 2.0);
//! assert!(!outcome.event);
//! ```

use serde::Serialize;

/// Hard cap on accepted + rejected steps per [`Rk45::integrate_until`] call;
/// a safety net against pathological right-hand sides, far above anything a
/// well-posed segment needs.
const MAX_STEPS: u64 = 1_000_000;

/// Iteration cap for event location. Illinois false-position needs a
/// handful of iterations on smooth event functions; this bounds the
/// pathological ones (it still beats plain bisection to machine precision).
const EVENT_BISECTIONS: u32 = 80;

/// Event-location stop width, relative to the accepted step: the bracket is
/// good enough once it shrinks below this fraction of `h`. Every probe of
/// the bracket costs a full six-stage RK attempt, so chasing the crossing
/// to the last ulp multiplies the price of *every* event by ~10× for
/// accuracy far beyond the integrator's own error control.
const EVENT_LOCATION_REL_TOL: f64 = 1e-9;

/// Errors from adaptive integration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OdeError {
    /// The error-controlled step size collapsed below the resolvable spacing
    /// of the time axis — the problem is too stiff (or non-smooth) for an
    /// explicit method at the requested tolerance.
    StepSizeUnderflow,
    /// The step budget ([`MAX_STEPS`]) was exhausted before reaching the end
    /// of the integration interval.
    StepLimitExceeded,
    /// The right-hand side produced a non-finite derivative that persisted
    /// through step-size reduction.
    NonFiniteDerivative,
}

impl std::fmt::Display for OdeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OdeError::StepSizeUnderflow => write!(f, "step size underflow (problem too stiff)"),
            OdeError::StepLimitExceeded => write!(f, "step limit exceeded"),
            OdeError::NonFiniteDerivative => write!(f, "non-finite derivative"),
        }
    }
}

impl std::error::Error for OdeError {}

/// Where an integration stopped and how hard it worked.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct OdeOutcome {
    /// The time the state vector was left at: the requested end time, or the
    /// located event crossing when `event` is `true`.
    pub t: f64,
    /// `true` when the event function crossed from negative to
    /// non-negative and integration stopped at the located crossing.
    pub event: bool,
    /// Accepted steps.
    pub steps: u64,
    /// Error-rejected steps (each retried with a smaller `h`).
    pub rejected: u64,
}

/// Dormand–Prince 5(4) adaptive integrator with event location.
///
/// The struct owns its stage buffers so repeated segments (the hybrid
/// stepper integrates thousands per trajectory) allocate nothing after the
/// first call. It is therefore `&mut self` to integrate; create one per
/// worker thread.
#[derive(Debug, Clone)]
pub struct Rk45 {
    rel_tol: f64,
    abs_tol: f64,
    // Stage and scratch buffers, resized lazily to the problem dimension.
    k: [Vec<f64>; 7],
    y_stage: Vec<f64>,
    y_next: Vec<f64>,
    y_base: Vec<f64>,
}

impl Default for Rk45 {
    fn default() -> Self {
        Rk45::new()
    }
}

// Dormand–Prince Butcher tableau.
const C: [f64; 7] = [0.0, 0.2, 0.3, 0.8, 8.0 / 9.0, 1.0, 1.0];
const A: [[f64; 6]; 7] = [
    [0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
    [0.2, 0.0, 0.0, 0.0, 0.0, 0.0],
    [3.0 / 40.0, 9.0 / 40.0, 0.0, 0.0, 0.0, 0.0],
    [44.0 / 45.0, -56.0 / 15.0, 32.0 / 9.0, 0.0, 0.0, 0.0],
    [
        19372.0 / 6561.0,
        -25360.0 / 2187.0,
        64448.0 / 6561.0,
        -212.0 / 729.0,
        0.0,
        0.0,
    ],
    [
        9017.0 / 3168.0,
        -355.0 / 33.0,
        46732.0 / 5247.0,
        49.0 / 176.0,
        -5103.0 / 18656.0,
        0.0,
    ],
    [
        35.0 / 384.0,
        0.0,
        500.0 / 1113.0,
        125.0 / 192.0,
        -2187.0 / 6784.0,
        11.0 / 84.0,
    ],
];
/// 5th-order weights (identical to the last `A` row: FSAL).
const B5: [f64; 7] = [
    35.0 / 384.0,
    0.0,
    500.0 / 1113.0,
    125.0 / 192.0,
    -2187.0 / 6784.0,
    11.0 / 84.0,
    0.0,
];
/// 4th-order (embedded) weights.
const B4: [f64; 7] = [
    5179.0 / 57600.0,
    0.0,
    7571.0 / 16695.0,
    393.0 / 640.0,
    -92097.0 / 339200.0,
    187.0 / 2100.0,
    1.0 / 40.0,
];

impl Rk45 {
    /// Creates an integrator with the standard tolerances `rel = 1e-6`,
    /// `abs = 1e-9`.
    pub fn new() -> Self {
        Rk45::with_tolerances(1e-6, 1e-9)
    }

    /// Creates an integrator with explicit relative/absolute tolerances.
    ///
    /// # Panics
    ///
    /// Panics unless both tolerances are finite and strictly positive.
    pub fn with_tolerances(rel_tol: f64, abs_tol: f64) -> Self {
        assert!(
            rel_tol > 0.0 && rel_tol.is_finite() && abs_tol > 0.0 && abs_tol.is_finite(),
            "RK45 tolerances must be finite and positive, got rel={rel_tol}, abs={abs_tol}"
        );
        Rk45 {
            rel_tol,
            abs_tol,
            k: Default::default(),
            y_stage: Vec::new(),
            y_next: Vec::new(),
            y_base: Vec::new(),
        }
    }

    /// The relative tolerance.
    pub fn rel_tol(&self) -> f64 {
        self.rel_tol
    }

    /// The absolute tolerance.
    pub fn abs_tol(&self) -> f64 {
        self.abs_tol
    }

    /// Integrates `dy/dt = f(t, y)` from `t0` to `t1` in place.
    ///
    /// # Errors
    ///
    /// See [`OdeError`]; on error `y` is left at the last accepted state.
    pub fn integrate<F>(
        &mut self,
        f: F,
        t0: f64,
        t1: f64,
        y: &mut [f64],
    ) -> Result<OdeOutcome, OdeError>
    where
        F: FnMut(f64, &[f64], &mut [f64]),
    {
        self.integrate_until(f, |_, _| -1.0, t0, t1, y)
    }

    /// Integrates from `t0` towards `t1`, stopping early at the first point
    /// where the event function `g(t, y)` becomes non-negative.
    ///
    /// `g` must be negative at `(t0, y)` for the crossing to be meaningful
    /// (if it is already non-negative the call returns immediately with
    /// `event = true` at `t0`). Crossings are only tested at accepted step
    /// endpoints and then located by bisection *within* the crossing step,
    /// re-taking a single raw RK step of shrinking width from the step's
    /// start state — so a `g` that wiggles back below zero inside one
    /// error-controlled step can be missed; the hybrid stepper's hazard
    /// integral is non-decreasing, which rules that out.
    ///
    /// # Errors
    ///
    /// See [`OdeError`]; on error `y` is left at the last accepted state.
    pub fn integrate_until<F, G>(
        &mut self,
        mut f: F,
        mut g: G,
        t0: f64,
        t1: f64,
        y: &mut [f64],
    ) -> Result<OdeOutcome, OdeError>
    where
        F: FnMut(f64, &[f64], &mut [f64]),
        G: FnMut(f64, &[f64]) -> f64,
    {
        let n = y.len();
        debug_assert!(t1 >= t0, "integration must run forward: {t0} -> {t1}");
        for stage in &mut self.k {
            stage.clear();
            stage.resize(n, 0.0);
        }
        self.y_stage.clear();
        self.y_stage.resize(n, 0.0);
        self.y_next.clear();
        self.y_next.resize(n, 0.0);
        self.y_base.clear();
        self.y_base.resize(n, 0.0);

        let mut outcome = OdeOutcome {
            t: t0,
            event: false,
            steps: 0,
            rejected: 0,
        };
        if g(t0, y) >= 0.0 {
            outcome.event = true;
            return Ok(outcome);
        }
        if t1 <= t0 {
            outcome.t = t1.max(t0);
            return Ok(outcome);
        }

        let span = t1 - t0;
        let h_floor = f64::EPSILON * 16.0 * t1.abs().max(span);
        let mut t = t0;
        let mut h = span * 1e-2;
        // FSAL: k[0] at the current point survives across accepted steps.
        f(t, y, &mut self.k[0]);

        loop {
            if outcome.steps + outcome.rejected >= MAX_STEPS {
                return Err(OdeError::StepLimitExceeded);
            }
            let last = h >= t1 - t;
            if last {
                h = t1 - t;
            }

            let err = self.attempt(&mut f, t, y, h);
            if !err.is_finite() {
                // A non-finite stage: shrink hard and retry; if the step is
                // already at the floor the right-hand side is genuinely bad.
                outcome.rejected += 1;
                h *= 0.25;
                if h < h_floor {
                    return Err(OdeError::NonFiniteDerivative);
                }
                continue;
            }
            if err > 1.0 {
                outcome.rejected += 1;
                h *= (0.9 * err.powf(-0.2)).max(0.2);
                if h < h_floor {
                    return Err(OdeError::StepSizeUnderflow);
                }
                continue;
            }

            // Accepted. `y_next`/`k[6]` hold the new state and its
            // derivative (FSAL).
            outcome.steps += 1;
            let t_new = if last { t1 } else { t + h };
            if g(t_new, &self.y_next) >= 0.0 {
                let h_star = self.locate_event(&mut f, &mut g, t, y, h);
                y.copy_from_slice(&self.y_next);
                outcome.t = t + h_star;
                outcome.event = true;
                return Ok(outcome);
            }
            y.copy_from_slice(&self.y_next);
            self.k.swap(0, 6);
            t = t_new;
            if t >= t1 {
                outcome.t = t1;
                return Ok(outcome);
            }
            h *= (0.9 * err.powf(-0.2)).clamp(0.2, 5.0);
            h = h.max(h_floor);
        }
    }

    /// One embedded Dormand–Prince step of width `h` from `(t, y)`, with
    /// `k[0]` already holding `f(t, y)`. Writes the 5th-order solution into
    /// `self.y_next`, its derivative into `self.k[6]`, and returns the
    /// scaled error norm (accept iff ≤ 1).
    fn attempt<F>(&mut self, f: &mut F, t: f64, y: &[f64], h: f64) -> f64
    where
        F: FnMut(f64, &[f64], &mut [f64]),
    {
        let n = y.len();
        for stage in 1..7 {
            for i in 0..n {
                let mut acc = 0.0;
                for (j, k_j) in self.k.iter().enumerate().take(stage) {
                    let a = A[stage][j];
                    if a != 0.0 {
                        acc += a * k_j[i];
                    }
                }
                self.y_stage[i] = y[i] + h * acc;
            }
            if stage == 6 {
                // The 6th stage argument *is* the 5th-order solution (FSAL).
                self.y_next.copy_from_slice(&self.y_stage);
            }
            let (before, rest) = self.k.split_at_mut(stage);
            let _ = before;
            f(t + C[stage] * h, &self.y_stage, &mut rest[0]);
        }

        let mut err_sq = 0.0;
        for i in 0..n {
            let mut e = 0.0;
            for (j, k_j) in self.k.iter().enumerate() {
                let d = B5[j] - B4[j];
                if d != 0.0 {
                    e += d * k_j[i];
                }
            }
            e *= h;
            let scale = self.abs_tol + self.rel_tol * y[i].abs().max(self.y_next[i].abs());
            err_sq += (e / scale) * (e / scale);
        }
        (err_sq / n as f64).sqrt()
    }

    /// Narrows in on the smallest step width `h* ∈ (0, h]` whose single raw
    /// RK step from `(t, y)` makes the event function non-negative; leaves
    /// the state at `h*` in `self.y_next` and returns `h*`. On entry
    /// `self.k[0]` holds `f(t, y)`, `self.y_next` the full-width step's
    /// state, and the full step is known to cross.
    ///
    /// Uses Illinois false-position rather than plain bisection: each probe
    /// of the bracket costs a full six-stage RK attempt, and on the smooth,
    /// near-linear event functions of hazard-budget integration the secant
    /// guess lands within [`EVENT_LOCATION_REL_TOL`]`·h` in a handful of
    /// iterations where bisection burns its whole budget.
    fn locate_event<F, G>(&mut self, f: &mut F, g: &mut G, t: f64, y: &[f64], h: f64) -> f64
    where
        F: FnMut(f64, &[f64], &mut [f64]),
        G: FnMut(f64, &[f64]) -> f64,
    {
        self.y_base.copy_from_slice(y);
        let y_base = std::mem::take(&mut self.y_base);
        let mut lo = 0.0f64;
        let mut glo = g(t, &y_base); // < 0: checked before every step
        let mut hi = h;
        let mut ghi = g(t + h, &self.y_next); // >= 0: the step crossed
        let tol = h * EVENT_LOCATION_REL_TOL;
        let mut side = 0i8; // which endpoint the last probe replaced
        for _ in 0..EVENT_BISECTIONS {
            if hi - lo <= tol {
                break;
            }
            let denom = ghi - glo;
            let mut mid = if denom > 0.0 {
                (lo * ghi - hi * glo) / denom
            } else {
                0.5 * (lo + hi)
            };
            if !(mid > lo && mid < hi) {
                mid = 0.5 * (lo + hi);
            }
            if mid <= lo || mid >= hi {
                break; // interval no longer resolvable in f64
            }
            // `attempt` reads k[0] (unchanged) and overwrites stages 1..7;
            // the error estimate is irrelevant here — the full-width step
            // already passed error control, so any sub-width is at least as
            // accurate.
            let _ = self.attempt(f, t, &y_base, mid);
            let gm = g(t + mid, &self.y_next);
            if gm >= 0.0 {
                hi = mid;
                ghi = gm;
                if side == 1 {
                    glo *= 0.5; // Illinois: stop the stagnant end pinning
                }
                side = 1;
            } else {
                lo = mid;
                glo = gm;
                if side == -1 {
                    ghi *= 0.5;
                }
                side = -1;
            }
        }
        // Recompute the state at `hi`, the smallest width known to cross.
        let _ = self.attempt(f, t, &y_base, hi);
        self.y_base = y_base;
        hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_decay_matches_closed_form() {
        let mut solver = Rk45::new();
        let mut y = vec![1.0, 2.0];
        let out = solver
            .integrate(
                |_t, y, dy| {
                    dy[0] = -y[0];
                    dy[1] = -3.0 * y[1];
                },
                0.0,
                1.5,
                &mut y,
            )
            .unwrap();
        assert!((y[0] - (-1.5f64).exp()).abs() < 1e-7, "y0 = {}", y[0]);
        assert!((y[1] - 2.0 * (-4.5f64).exp()).abs() < 1e-7, "y1 = {}", y[1]);
        assert!(!out.event);
        assert!(out.steps > 0);
    }

    #[test]
    fn harmonic_oscillator_conserves_energy() {
        let mut solver = Rk45::with_tolerances(1e-9, 1e-12);
        let mut y = vec![1.0, 0.0];
        solver
            .integrate(
                |_t, y, dy| {
                    dy[0] = y[1];
                    dy[1] = -y[0];
                },
                0.0,
                2.0 * std::f64::consts::PI,
                &mut y,
            )
            .unwrap();
        assert!((y[0] - 1.0).abs() < 1e-7, "cos(2π) = {}", y[0]);
        assert!(y[1].abs() < 1e-7, "-sin(2π) = {}", y[1]);
    }

    #[test]
    fn event_location_finds_the_crossing() {
        // y' = 1, y(0) = 0, event at y = 0.3: crossing is exactly t = 0.3.
        let mut solver = Rk45::new();
        let mut y = vec![0.0];
        let out = solver
            .integrate_until(
                |_t, _y, dy| dy[0] = 1.0,
                |_t, y| y[0] - 0.3,
                0.0,
                1.0,
                &mut y,
            )
            .unwrap();
        assert!(out.event);
        assert!((out.t - 0.3).abs() < 1e-10, "t = {}", out.t);
        assert!((y[0] - 0.3).abs() < 1e-10, "y = {}", y[0]);
    }

    #[test]
    fn event_already_crossed_returns_immediately() {
        let mut solver = Rk45::new();
        let mut y = vec![1.0];
        let out = solver
            .integrate_until(|_t, _y, dy| dy[0] = 1.0, |_t, y| y[0], 0.0, 1.0, &mut y)
            .unwrap();
        assert!(out.event);
        assert_eq!(out.t, 0.0);
        assert_eq!(out.steps, 0);
    }

    #[test]
    fn nonlinear_event_matches_closed_form() {
        // y' = y from y(0)=1 crosses y = e^{0.5} at t = 0.5.
        let mut solver = Rk45::with_tolerances(1e-10, 1e-12);
        let mut y = vec![1.0];
        let out = solver
            .integrate_until(
                |_t, y, dy| dy[0] = y[0],
                |_t, y| y[0] - 0.5f64.exp(),
                0.0,
                2.0,
                &mut y,
            )
            .unwrap();
        assert!(out.event);
        assert!((out.t - 0.5).abs() < 1e-8, "t = {}", out.t);
    }

    #[test]
    fn integration_is_deterministic() {
        let run = || {
            let mut solver = Rk45::new();
            let mut y = vec![10.0, 0.1];
            solver
                .integrate(
                    |_t, y, dy| {
                        dy[0] = -0.3 * y[0] * y[1];
                        dy[1] = 0.3 * y[0] * y[1] - y[1];
                    },
                    0.0,
                    5.0,
                    &mut y,
                )
                .unwrap();
            y
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "bitwise reproducible");
    }

    #[test]
    fn zero_span_is_a_no_op() {
        let mut solver = Rk45::new();
        let mut y = vec![4.0];
        let out = solver
            .integrate(|_t, _y, dy| dy[0] = 100.0, 2.0, 2.0, &mut y)
            .unwrap();
        assert_eq!(y[0], 4.0);
        assert_eq!(out.t, 2.0);
    }

    #[test]
    fn non_finite_rhs_is_an_error() {
        let mut solver = Rk45::new();
        let mut y = vec![1.0];
        let err = solver
            .integrate(|_t, _y, dy| dy[0] = f64::NAN, 0.0, 1.0, &mut y)
            .unwrap_err();
        assert_eq!(err, OdeError::NonFiniteDerivative);
    }

    #[test]
    #[should_panic(expected = "tolerances must be finite and positive")]
    fn rejects_bad_tolerances() {
        let _ = Rk45::with_tolerances(0.0, 1e-9);
    }
}
