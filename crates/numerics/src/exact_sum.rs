//! Reproducible exact accumulation of `f64` sums.
//!
//! Floating-point addition is not associative, so an incrementally
//! maintained running sum (`sum += new − old`) drifts away from a
//! from-scratch recompute — by one ulp per update in the best case,
//! unboundedly under cancellation. That is fatal for the workspace's
//! determinism contracts: the composition–rejection SSA keeps one running
//! propensity sum *per log₂ group* across millions of incremental updates,
//! and pins them **bitwise** against a full rebuild.
//!
//! [`ExactSum`] removes the problem at the root: it is a fixed-point
//! superaccumulator (Kulisch-style long accumulator) wide enough to
//! represent *every* finite non-negative `f64` — and sums of up to `2³⁰` of
//! them — with no rounding at all. Adding or removing a value is `O(1)`
//! (three 32-bit limbs are touched); the accumulated value is therefore an
//! *exact* integer-arithmetic sum, independent of the order in which values
//! were added and removed. [`ExactSum::value`] rounds that exact sum to the
//! nearest `f64` (ties to even), so two accumulators holding the same
//! multiset of values — one built incrementally over an arbitrary
//! add/remove history, one rebuilt from scratch — read out bit-identical
//! floats, always. Readout cost tracks the *occupied* limb window — the
//! dynamic range of the accumulated values — not the accumulator's full
//! width, which matters to callers that read after nearly every update
//! (the composition–rejection group sums).

use serde::{Deserialize, Serialize};

/// Limb width in bits. Each limb stores a 32-bit digit inside an `i64`, so
/// up to `2³⁰` deferred carries fit before normalisation is forced.
const LIMB_BITS: u32 = 32;

/// Bit position of the least significant representable bit (the smallest
/// subnormal is `2⁻¹⁰⁷⁴`); all positions are stored relative to this.
const MIN_EXP: i32 = -1074;

/// Number of limbs: positions `0 ..= (1023 − 52) + 1074` cover every finite
/// `f64` (top limb index 63), plus headroom for `2³⁰`-fold sums (≈ 2³¹·2¹⁰²⁴
/// still peaks below limb 66) and carry propagation.
const LIMBS: usize = 69;

/// How many add/remove operations may be deferred before carries must be
/// propagated: each operation changes a limb by less than `2³²`, so `2³⁰`
/// operations keep every limb within `±2⁶²`.
const MAX_DEFERRED_OPS: u32 = 1 << 30;

/// An exact, order-independent accumulator for non-negative `f64` values.
///
/// The accumulator is a *ledger*: values are [added](Self::add) and later
/// [removed](Self::remove), and the running total is always the exact
/// (infinitely precise) sum of the values currently in the ledger. Removing
/// a value that was never added is allowed by the arithmetic but leaves the
/// ledger denoting a possibly negative total, which [`value`](Self::value)
/// rejects — callers are expected to remove only what they added.
///
/// # Example
///
/// ```
/// use numerics::ExactSum;
///
/// // Classic cancellation: a plain f64 running sum gets this wrong.
/// let mut plain = 0.0f64;
/// plain += 1e16;
/// plain += 1.0;
/// plain -= 1e16;
/// assert_ne!(plain, 1.0);
///
/// let mut exact = ExactSum::new();
/// exact.add(1e16);
/// exact.add(1.0);
/// exact.remove(1e16);
/// assert_eq!(exact.value(), 1.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExactSum {
    limbs: [i64; LIMBS],
    deferred_ops: u32,
    /// Lowest limb touched since the last normalisation (`LIMBS` = none):
    /// limbs outside `dirty_lo..=dirty_hi` are already canonical, so
    /// normalisation only walks the touched range plus any carry run-out.
    dirty_lo: u32,
    /// Highest limb touched since the last normalisation.
    dirty_hi: u32,
    /// Lowest limb that may be non-zero (`LIMBS` = ledger provably empty).
    /// Conservative: limbs outside `occ_lo..=occ_hi` are guaranteed zero,
    /// so readouts scan only the occupied window — for values clustered
    /// within a few binades (propensity-group sums) that is a handful of
    /// limbs instead of the accumulator's full width.
    occ_lo: u32,
    /// Highest limb that may be non-zero.
    occ_hi: u32,
}

impl Default for ExactSum {
    fn default() -> Self {
        ExactSum {
            limbs: [0; LIMBS],
            deferred_ops: 0,
            dirty_lo: LIMBS as u32,
            dirty_hi: 0,
            occ_lo: LIMBS as u32,
            occ_hi: 0,
        }
    }
}

impl PartialEq for ExactSum {
    /// Two accumulators are equal iff they hold the same exact value,
    /// regardless of how the adds were ordered or batched: equality
    /// compares the canonical (normalised) limb form, not the raw ledger.
    fn eq(&self, other: &ExactSum) -> bool {
        let mut a = self.clone();
        let mut b = other.clone();
        a.normalize();
        b.normalize();
        a.limbs == b.limbs
    }
}

impl Eq for ExactSum {}

impl ExactSum {
    /// Creates an empty accumulator (exact value `0`).
    pub fn new() -> Self {
        ExactSum::default()
    }

    /// Adds `x` to the ledger, exactly.
    ///
    /// # Panics
    ///
    /// Panics if `x` is negative, NaN or infinite.
    #[inline]
    pub fn add(&mut self, x: f64) {
        self.accumulate(x, 1);
    }

    /// Removes a previously added `x` from the ledger, exactly.
    ///
    /// # Panics
    ///
    /// Panics if `x` is negative, NaN or infinite.
    #[inline]
    pub fn remove(&mut self, x: f64) {
        self.accumulate(x, -1);
    }

    /// Returns `true` if the exact total is zero.
    pub fn is_zero(&mut self) -> bool {
        self.normalize();
        let lo = self.occ_lo as usize;
        if lo >= LIMBS {
            return true;
        }
        let hi = (self.occ_hi as usize).min(LIMBS - 1);
        self.limbs[lo..=hi].iter().all(|&l| l == 0)
    }

    /// Reads the exact total out as the nearest `f64` (round half to even).
    ///
    /// Because the internal representation is exact, this is a pure function
    /// of the *multiset* of values currently in the ledger: any sequence of
    /// adds and removes reaching the same multiset yields the same bits.
    ///
    /// # Panics
    ///
    /// Panics if the exact total is negative (more was removed than added).
    pub fn value(&mut self) -> f64 {
        self.normalize();
        let lo = self.occ_lo as usize;
        if lo >= LIMBS {
            return 0.0;
        }
        let hi = (self.occ_hi as usize).min(LIMBS - 1);
        let top = match self.limbs[lo..=hi].iter().rposition(|&l| l != 0) {
            Some(pos) => lo + pos,
            None => {
                // Everything cancelled away: record the provably-empty
                // window so the next readout is O(1).
                self.occ_lo = LIMBS as u32;
                self.occ_hi = 0;
                return 0.0;
            }
        };
        // Tighten the window's top to the actual highest non-zero limb.
        self.occ_hi = top as u32;
        // Assemble the three highest limbs (up to 96 bits — always enough,
        // because the top limb is non-zero, so with `top >= 2` the window
        // holds at least 65 significant bits) and track whether anything
        // non-zero falls below the window.
        let limb = |i: isize| -> u128 {
            if i >= 0 {
                self.limbs[i as usize] as u128
            } else {
                0
            }
        };
        let window =
            (limb(top as isize) << 64) | (limb(top as isize - 1) << 32) | limb(top as isize - 2);
        let mut sticky = (lo..top.saturating_sub(2)).any(|i| self.limbs[i] != 0);
        // The window's least significant bit has weight 2^window_exp.
        let window_exp = LIMB_BITS as i32 * (top as i32 - 2) + MIN_EXP;

        // The top limb is non-zero and sits shifted 64 bits up, so the
        // window always holds at least 65 significant bits — more than the
        // 53 a significand keeps, so every readout rounds through here
        // (exactly representable totals just see all-zero dropped bits).
        let nbits = 128 - window.leading_zeros() as i32;
        debug_assert!(nbits >= 65);
        let shift = (nbits - 53) as u32;
        let mut significand = (window >> shift) as u64;
        let round_bit = (window >> (shift - 1)) & 1 == 1;
        sticky |= window & ((1u128 << (shift - 1)) - 1) != 0;
        let mut exp = window_exp + shift as i32;
        if round_bit && (sticky || significand & 1 == 1) {
            significand += 1;
            if significand == 1 << 53 {
                significand >>= 1;
                exp += 1;
            }
        }
        scale_by_pow2(significand as f64, exp)
    }

    /// Splits `x` into (53-bit significand, exponent of its LSB) and adds
    /// `sign` times it into the limbs.
    #[inline]
    fn accumulate(&mut self, x: f64, sign: i64) {
        assert!(
            x.is_finite() && x >= 0.0,
            "ExactSum accepts finite non-negative values, got {x}"
        );
        if x == 0.0 {
            return;
        }
        let bits = x.to_bits();
        let exp_field = ((bits >> 52) & 0x7ff) as i32;
        let (significand, lsb_exp) = if exp_field == 0 {
            (bits & ((1 << 52) - 1), MIN_EXP)
        } else {
            (bits & ((1 << 52) - 1) | (1 << 52), exp_field - 1075)
        };
        let position = (lsb_exp - MIN_EXP) as u32;
        let (limb, offset) = (position / LIMB_BITS, position % LIMB_BITS);
        // 53 significand bits shifted by up to 31 span at most 3 limbs.
        let wide = (significand as u128) << offset;
        let limb = limb as usize;
        self.limbs[limb] += sign * (wide as u32 as i64);
        self.limbs[limb + 1] += sign * ((wide >> 32) as u32 as i64);
        self.limbs[limb + 2] += sign * ((wide >> 64) as u32 as i64);
        self.dirty_lo = self.dirty_lo.min(limb as u32);
        self.dirty_hi = self.dirty_hi.max(limb as u32 + 2);
        self.occ_lo = self.occ_lo.min(limb as u32);
        self.occ_hi = self.occ_hi.max(limb as u32 + 2);
        self.deferred_ops += 1;
        if self.deferred_ops >= MAX_DEFERRED_OPS {
            self.normalize();
        }
    }

    /// Adds another accumulator's ledger into this one, exactly.
    ///
    /// The result is the accumulator that would have been produced by
    /// replaying both ledgers' histories into one accumulator, in any
    /// order — which is what lets per-shard sums computed on different
    /// machines merge into the bit-identical global sum.
    pub fn merge(&mut self, other: &ExactSum) {
        let mut other = other.clone();
        other.normalize();
        let lo = other.occ_lo as usize;
        if lo >= LIMBS {
            return; // other is provably empty
        }
        let hi = (other.occ_hi as usize).min(LIMBS - 1);
        for i in lo..=hi {
            self.limbs[i] += other.limbs[i];
        }
        // A normalised ledger contributes less than 2³² per limb — the same
        // per-limb bound as one `add`/`remove`, so it counts as one deferred
        // operation.
        self.dirty_lo = self.dirty_lo.min(lo as u32);
        self.dirty_hi = self.dirty_hi.max(hi as u32);
        self.occ_lo = self.occ_lo.min(lo as u32);
        self.occ_hi = self.occ_hi.max(hi as u32);
        self.deferred_ops += 1;
        if self.deferred_ops >= MAX_DEFERRED_OPS {
            self.normalize();
        }
    }

    /// Encodes the exact total as a canonical lowercase-hex integer (in
    /// units of `2⁻¹⁰⁷⁴`, the smallest subnormal). Two accumulators holding
    /// the same multiset of values encode identically, regardless of their
    /// add/remove histories — the wire format distributed shards use to
    /// ship exact partial sums without losing a single bit.
    ///
    /// # Panics
    ///
    /// Panics if the exact total is negative (more removed than added).
    pub fn encode(&self) -> String {
        let mut canonical = self.clone();
        canonical.normalize();
        let lo = canonical.occ_lo as usize;
        if lo >= LIMBS {
            return "0".to_string();
        }
        let hi = (canonical.occ_hi as usize).min(LIMBS - 1);
        let top = match canonical.limbs[..=hi].iter().rposition(|&l| l != 0) {
            Some(top) => top,
            None => return "0".to_string(),
        };
        assert!(
            canonical.limbs[..=top].iter().all(|&l| l >= 0),
            "cannot encode a negative exact total"
        );
        let mut out = format!("{:x}", canonical.limbs[top]);
        for i in (0..top).rev() {
            out.push_str(&format!("{:08x}", canonical.limbs[i]));
        }
        out
    }

    /// Decodes an [`encode`](Self::encode)d exact total.
    ///
    /// # Errors
    ///
    /// Returns a message for non-hex input or totals wider than the
    /// accumulator.
    pub fn decode(text: &str) -> Result<ExactSum, String> {
        let text = text.trim();
        if text.is_empty() || text.len() > LIMBS * 8 {
            return Err(format!("invalid exact-sum encoding `{text}`"));
        }
        let mut acc = ExactSum::new();
        let bytes = text.as_bytes();
        let mut limb = 0usize;
        let mut end = bytes.len();
        while end > 0 {
            let start = end.saturating_sub(8);
            let digits = std::str::from_utf8(&bytes[start..end])
                .map_err(|_| format!("invalid exact-sum encoding `{text}`: not ASCII hex"))?;
            let value = u32::from_str_radix(digits, 16)
                .map_err(|_| format!("invalid exact-sum encoding `{text}`: bad digits"))?;
            if limb >= LIMBS {
                return Err(format!("exact-sum encoding `{text}` is too wide"));
            }
            acc.limbs[limb] = i64::from(value);
            limb += 1;
            end = start;
        }
        if acc.limbs.iter().any(|&l| l != 0) {
            acc.occ_lo = 0;
            acc.occ_hi = (limb - 1) as u32;
        }
        Ok(acc)
    }

    /// Propagates deferred carries so every limb lies in `[0, 2³²)`. The
    /// canonical form is unique for a given exact value, which is what makes
    /// readouts order-independent. Only the dirty limb range is walked
    /// (plus wherever its carries run out into the canonical region), so
    /// values clustered within a few binades — propensity-group sums —
    /// normalise in a handful of limb operations.
    fn normalize(&mut self) {
        if self.deferred_ops == 0 {
            return;
        }
        let mut carry: i128 = 0;
        let mut i = self.dirty_lo as usize;
        let hi = self.dirty_hi as usize;
        while i <= hi || carry != 0 {
            assert!(
                i < LIMBS,
                "ExactSum total left the representable range (negative or overflowed)"
            );
            let total = self.limbs[i] as i128 + carry;
            let low = total & 0xFFFF_FFFF;
            carry = (total - low) >> 32;
            self.limbs[i] = low as i64;
            i += 1;
        }
        // Carries may have run out above the previously occupied window.
        self.occ_hi = self.occ_hi.max(i as u32 - 1);
        self.deferred_ops = 0;
        self.dirty_lo = LIMBS as u32;
        self.dirty_hi = 0;
    }
}

/// Computes `x · 2^exp` without intermediate rounding for normal results
/// (powers of two are exact multipliers). Results in the subnormal range may
/// incur one extra rounding; group propensity sums never get there.
fn scale_by_pow2(x: f64, exp: i32) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    if (-1022..=1023).contains(&exp) {
        return x * f64::from_bits(((exp + 1023) as u64) << 52);
    }
    if exp > 1023 {
        // Two exact power-of-two factors; overflows to +inf only if the
        // true value does.
        return x
            * f64::from_bits(((1023 + 1023) as u64) << 52)
            * f64::from_bits(((exp - 1023 + 1023) as u64) << 52);
    }
    // Deep subnormal scale: split so the second factor stays representable.
    x * f64::from_bits(1) * scale_by_pow2(1.0, exp + 1074)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_of(values: &[f64]) -> ExactSum {
        let mut acc = ExactSum::new();
        for &v in values {
            acc.add(v);
        }
        acc
    }

    #[test]
    fn empty_ledger_reads_zero() {
        assert_eq!(ExactSum::new().value(), 0.0);
        assert!(ExactSum::new().is_zero());
    }

    #[test]
    fn single_values_round_trip_exactly() {
        for &v in &[
            1.0,
            0.1,
            3.5e-9,
            1.2345e17,
            f64::MIN_POSITIVE,
            2.2e-308,
            1.7e308,
            5e-324, // smallest subnormal
        ] {
            let mut acc = ExactSum::new();
            acc.add(v);
            assert_eq!(acc.value().to_bits(), v.to_bits(), "value {v:e}");
        }
    }

    #[test]
    fn small_integer_sums_are_exact() {
        let mut acc = exact_of(&[1.0, 2.0, 3.0, 4.5]);
        assert_eq!(acc.value(), 10.5);
        acc.remove(2.0);
        assert_eq!(acc.value(), 8.5);
    }

    #[test]
    fn order_independence_is_bitwise() {
        let values = [1e300, 3.7e-12, 0.1, 9.9e15, 1.0 / 3.0, 2.5e-280];
        let mut forward = exact_of(&values);
        let mut reversed = {
            let mut rev = values;
            rev.reverse();
            exact_of(&rev)
        };
        assert_eq!(forward.value().to_bits(), reversed.value().to_bits());
    }

    #[test]
    fn add_remove_history_is_invisible() {
        // Build {0.3, 7e9} two ways: directly, and through a long detour of
        // adds and removes that would wreck a plain running sum.
        let mut direct = exact_of(&[0.3, 7e9]);
        let mut detour = ExactSum::new();
        detour.add(1e16);
        detour.add(0.3);
        detour.add(123.456);
        detour.add(7e9);
        detour.remove(123.456);
        detour.remove(1e16);
        assert_eq!(direct.value().to_bits(), detour.value().to_bits());
    }

    #[test]
    fn cancellation_to_zero_is_exact() {
        let values = [1e16, 1.0, 3.25, 2e-30];
        let mut acc = exact_of(&values);
        for &v in &values {
            acc.remove(v);
        }
        assert!(acc.is_zero());
        assert_eq!(acc.value(), 0.0);
    }

    #[test]
    fn readout_is_correctly_rounded_against_u128_ground_truth() {
        // Integer-valued cases where the exact sum fits u128: the readout
        // must equal `sum as f64` (Rust's u128→f64 cast rounds to nearest).
        let cases: &[&[u64]] = &[
            &[u64::MAX, u64::MAX, 1],
            &[1 << 60, 3, 5, 1 << 60],
            &[(1 << 53) + 1, 1],    // rounds to even
            &[(1 << 54) + 2, 1, 1], // sticky forces round up
            &[
                u64::MAX,
                u64::MAX,
                u64::MAX,
                u64::MAX,
                u64::MAX,
                u64::MAX,
                u64::MAX,
            ],
        ];
        for values in cases {
            let mut acc = ExactSum::new();
            let mut truth: u128 = 0;
            for &v in *values {
                // u64 values up to 2^53 are exact as f64; larger ones are
                // split into two exactly representable halves.
                let hi = (v >> 32) as f64 * 4294967296.0;
                let lo = (v & 0xFFFF_FFFF) as f64;
                acc.add(hi);
                acc.add(lo);
                truth += v as u128;
            }
            assert_eq!(
                acc.value().to_bits(),
                (truth as f64).to_bits(),
                "sum of {values:?}"
            );
        }
    }

    #[test]
    fn huge_magnitude_spread_sums_exactly() {
        // 2^1000 + 2^-1000: the f64 rounding drops the small term entirely,
        // and that *is* the correctly rounded answer.
        let big = scale_by_pow2(1.0, 1000);
        let tiny = scale_by_pow2(1.0, -1000);
        let mut acc = exact_of(&[big, tiny]);
        assert_eq!(acc.value(), big);
        // But removing the big term must recover the tiny one exactly.
        acc.remove(big);
        assert_eq!(acc.value().to_bits(), tiny.to_bits());
    }

    #[test]
    fn many_operations_trigger_normalisation_safely() {
        let mut acc = ExactSum::new();
        for i in 0..100_000u64 {
            acc.add(i as f64 * 0.5);
        }
        for i in 0..100_000u64 {
            if i % 2 == 0 {
                acc.remove(i as f64 * 0.5);
            }
        }
        // Remaining: odd i. Σ i·0.5 over odd i < 100000 = 0.5 · 50000².
        assert_eq!(acc.value(), 0.5 * 50_000.0f64 * 50_000.0);
    }

    #[test]
    fn merge_matches_single_accumulator_bitwise() {
        let values = [1e300, 3.7e-12, 0.1, 9.9e15, 1.0 / 3.0, 2.5e-280, 42.0];
        let mut whole = exact_of(&values);
        // Split into uneven shards, merge in a scrambled order.
        let mut merged = ExactSum::new();
        for shard in [&values[4..], &values[..2], &values[2..4]] {
            merged.merge(&exact_of(shard));
        }
        assert_eq!(whole.value().to_bits(), merged.value().to_bits());
        // Merging an empty accumulator is a no-op.
        merged.merge(&ExactSum::new());
        assert_eq!(whole.value().to_bits(), merged.value().to_bits());
    }

    #[test]
    fn encode_decode_round_trips_bitwise() {
        for values in [
            &[][..],
            &[1.0][..],
            &[1e300, 3.7e-12, 0.1, 5e-324][..],
            &[0.25, 0.125, 1e16][..],
        ] {
            let acc = exact_of(values);
            let encoded = acc.encode();
            let mut decoded = ExactSum::decode(&encoded).unwrap();
            let mut original = acc.clone();
            assert_eq!(
                original.value().to_bits(),
                decoded.value().to_bits(),
                "round trip of {values:?} via `{encoded}`"
            );
            // The canonical form is stable: re-encoding is the identity.
            assert_eq!(decoded.encode(), encoded);
        }
        assert_eq!(ExactSum::new().encode(), "0");
        assert_eq!(ExactSum::decode("0").unwrap().value(), 0.0);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(ExactSum::decode("").is_err());
        assert!(ExactSum::decode("xyz").is_err());
        assert!(ExactSum::decode("-1").is_err());
        assert!(ExactSum::decode(&"f".repeat(69 * 8 + 1)).is_err());
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn rejects_negative_values() {
        ExactSum::new().add(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn rejects_nan() {
        ExactSum::new().add(f64::NAN);
    }

    #[test]
    fn scale_by_pow2_matches_standard_range() {
        assert_eq!(scale_by_pow2(1.5, 10), 1536.0);
        assert_eq!(scale_by_pow2(1.0, 0), 1.0);
        assert_eq!(scale_by_pow2(1.0, -1074), 5e-324);
        assert_eq!(scale_by_pow2(1.0, 1023), f64::MAX / (2.0 - f64::EPSILON));
        assert!(scale_by_pow2(1.0, 2000).is_infinite());
    }
}
