//! Binomial confidence intervals for Monte-Carlo probability estimates.

use serde::{Deserialize, Serialize};

use crate::error::NumericsError;

/// A two-sided confidence interval for a probability.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Point estimate `successes / trials`.
    pub estimate: f64,
    /// Lower bound of the interval.
    pub lower: f64,
    /// Upper bound of the interval.
    pub upper: f64,
    /// Confidence level of the interval (e.g. 0.95).
    pub confidence: f64,
}

impl ConfidenceInterval {
    /// Returns the half-width of the interval.
    pub fn half_width(&self) -> f64 {
        (self.upper - self.lower) / 2.0
    }

    /// Returns `true` if `p` lies within the interval (inclusive).
    pub fn contains(&self, p: f64) -> bool {
        p >= self.lower && p <= self.upper
    }
}

/// Computes the Wilson score interval for a binomial proportion.
///
/// The Wilson interval behaves well even for proportions near 0 or 1 with
/// few trials, which matters for the paper's Figure 3 where error rates drop
/// to 10⁻⁵.
///
/// # Errors
///
/// Returns [`NumericsError::InvalidInput`] if `trials` is zero,
/// `successes > trials`, or `confidence` is outside `(0, 1)`.
pub fn wilson_interval(
    successes: u64,
    trials: u64,
    confidence: f64,
) -> Result<ConfidenceInterval, NumericsError> {
    if trials == 0 {
        return Err(NumericsError::InvalidInput {
            message: "trials must be positive".into(),
        });
    }
    if successes > trials {
        return Err(NumericsError::InvalidInput {
            message: format!("successes ({successes}) exceed trials ({trials})"),
        });
    }
    if !(confidence > 0.0 && confidence < 1.0) {
        return Err(NumericsError::InvalidInput {
            message: format!("confidence must be in (0, 1), got {confidence}"),
        });
    }
    let z = normal_quantile(0.5 + confidence / 2.0);
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * ((p * (1.0 - p) / n) + z2 / (4.0 * n * n)).sqrt();
    Ok(ConfidenceInterval {
        estimate: p,
        lower: (centre - half).max(0.0),
        upper: (centre + half).min(1.0),
        confidence,
    })
}

/// Convenience wrapper: the 95% Wilson interval.
///
/// # Errors
///
/// See [`wilson_interval`].
pub fn binomial_confidence_interval(
    successes: u64,
    trials: u64,
) -> Result<ConfidenceInterval, NumericsError> {
    wilson_interval(successes, trials, 0.95)
}

/// Approximates the standard normal quantile function (inverse CDF) using
/// the Acklam/Beasley–Springer–Moro rational approximation, accurate to
/// about 1e-9 over (0, 1).
fn normal_quantile(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    // Coefficients of the rational approximations.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_quantile_matches_known_values() {
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-4);
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.025) + 1.959964).abs() < 1e-4);
        assert!((normal_quantile(0.995) - 2.575829).abs() < 1e-4);
    }

    #[test]
    fn wilson_interval_brackets_the_estimate() {
        let ci = wilson_interval(300, 1000, 0.95).unwrap();
        assert!((ci.estimate - 0.3).abs() < 1e-12);
        assert!(ci.lower < 0.3 && ci.upper > 0.3);
        assert!(ci.contains(0.3));
        assert!(!ci.contains(0.5));
        // Known reference value: Wilson 95% CI for 300/1000 ≈ (0.2722, 0.3292).
        assert!((ci.lower - 0.2722).abs() < 0.002);
        assert!((ci.upper - 0.3292).abs() < 0.002);
    }

    #[test]
    fn extreme_proportions_stay_in_bounds() {
        let ci0 = wilson_interval(0, 50, 0.95).unwrap();
        assert_eq!(ci0.estimate, 0.0);
        assert_eq!(ci0.lower, 0.0);
        assert!(ci0.upper > 0.0 && ci0.upper < 0.15);
        let ci1 = wilson_interval(50, 50, 0.95).unwrap();
        assert!(ci1.upper > 1.0 - 1e-9);
        assert!(ci1.lower > 0.85);
    }

    #[test]
    fn interval_narrows_with_more_trials() {
        let small = wilson_interval(30, 100, 0.95).unwrap();
        let large = wilson_interval(30_000, 100_000, 0.95).unwrap();
        assert!(large.half_width() < small.half_width() / 10.0);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(wilson_interval(1, 0, 0.95).is_err());
        assert!(wilson_interval(5, 2, 0.95).is_err());
        assert!(wilson_interval(1, 2, 1.5).is_err());
        assert!(binomial_confidence_interval(1, 2).is_ok());
    }
}
