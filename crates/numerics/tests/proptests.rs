//! Property-based tests of the numerics toolkit.

use numerics::{
    least_squares, mean, std_dev, summary, variance, wilson_interval, ExactSum, Histogram,
    LogLinearFit, Matrix,
};
use proptest::prelude::*;

/// Strategy: positive f64 values spanning ~90 binades — wide enough that a
/// plain running sum visibly loses bits, narrow enough to stay clear of the
/// subnormal readout range.
fn spread_values(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec((1e-30f64..1e30, -30i32..30), len)
        .prop_map(|pairs| pairs.into_iter().map(|(m, e)| m * 2f64.powi(e)).collect())
}

proptest! {
    /// The mean always lies between the minimum and maximum of the sample,
    /// and the variance is never negative.
    #[test]
    fn mean_and_variance_are_well_behaved(values in prop::collection::vec(-1e6f64..1e6, 1..50)) {
        let m = mean(&values);
        let s = summary(&values);
        prop_assert!(m >= s.min - 1e-6 && m <= s.max + 1e-6);
        prop_assert!(variance(&values) >= 0.0);
        prop_assert!(std_dev(&values) >= 0.0);
        prop_assert_eq!(s.count, values.len());
    }

    /// The Wilson interval always contains the point estimate and stays
    /// within [0, 1]; more trials at the same proportion never widen it.
    #[test]
    fn wilson_interval_is_sound(successes in 0u64..1_000, extra in 0u64..1_000) {
        let trials = successes + extra;
        prop_assume!(trials > 0);
        let ci = wilson_interval(successes, trials, 0.95).expect("interval");
        prop_assert!(ci.lower >= 0.0 && ci.upper <= 1.0);
        prop_assert!(ci.lower <= ci.estimate + 1e-12 && ci.estimate <= ci.upper + 1e-12);
        prop_assert!(ci.contains(ci.estimate));

        let bigger = wilson_interval(successes * 10, trials * 10, 0.95).expect("interval");
        prop_assert!(bigger.half_width() <= ci.half_width() + 1e-12);
    }

    /// A histogram never loses samples, no matter how far outside its range
    /// they fall.
    #[test]
    fn histograms_conserve_samples(
        values in prop::collection::vec(-1e3f64..1e3, 0..200),
        bins in 1usize..20,
    ) {
        let mut h = Histogram::new(0.0, 10.0, bins);
        h.extend(values.iter().copied());
        prop_assert_eq!(h.total(), values.len() as u64);
        prop_assert_eq!(h.bins(), bins);
        let density_sum: f64 = h.densities().iter().sum();
        if values.is_empty() {
            prop_assert_eq!(density_sum, 0.0);
        } else {
            prop_assert!((density_sum - 1.0).abs() < 1e-9);
        }
    }

    /// Least squares exactly recovers coefficients from noiseless linear
    /// data (up to numerical precision).
    #[test]
    fn least_squares_recovers_exact_lines(
        intercept in -100.0f64..100.0,
        slope in -100.0f64..100.0,
        n in 3usize..30,
    ) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| intercept + slope * x).collect();
        let mut design = Matrix::zeros(n, 2);
        for (i, &x) in xs.iter().enumerate() {
            design[(i, 0)] = 1.0;
            design[(i, 1)] = x;
        }
        let coeffs = least_squares(&design, &ys).expect("fit");
        prop_assert!((coeffs[0] - intercept).abs() < 1e-6 * (1.0 + intercept.abs()));
        prop_assert!((coeffs[1] - slope).abs() < 1e-6 * (1.0 + slope.abs()));
    }

    /// Solving `A·x = b` for a well-conditioned diagonal-dominant matrix and
    /// multiplying back recovers `b`.
    #[test]
    fn solve_round_trips_through_matvec(
        entries in prop::collection::vec(-10.0f64..10.0, 9),
        rhs in prop::collection::vec(-10.0f64..10.0, 3),
    ) {
        let mut a = Matrix::from_rows(3, 3, entries);
        // Make the matrix strictly diagonally dominant so it is invertible.
        for i in 0..3 {
            let row_sum: f64 = (0..3).map(|j| a[(i, j)].abs()).sum();
            a[(i, i)] = row_sum + 1.0;
        }
        let x = a.solve(&rhs).expect("solvable system");
        let back = a.matvec(&x);
        for (computed, expected) in back.iter().zip(&rhs) {
            prop_assert!((computed - expected).abs() < 1e-6);
        }
    }

    /// The log-linear fit recovers its own coefficients from noiseless data
    /// generated anywhere in the paper's coefficient range.
    #[test]
    fn log_linear_fit_recovers_known_coefficients(
        constant in 0.0f64..50.0,
        log_coefficient in -10.0f64..10.0,
        linear_coefficient in -2.0f64..2.0,
    ) {
        let xs: Vec<f64> = (1..=12).map(|x| x as f64).collect();
        let reference = LogLinearFit::from_coefficients(constant, log_coefficient, linear_coefficient);
        let ys: Vec<f64> = xs.iter().map(|&x| reference.evaluate(x)).collect();
        let fit = LogLinearFit::fit(&xs, &ys).expect("fit");
        prop_assert!((fit.constant() - constant).abs() < 1e-5);
        prop_assert!((fit.log_coefficient() - log_coefficient).abs() < 1e-5);
        prop_assert!((fit.linear_coefficient() - linear_coefficient).abs() < 1e-5);
        prop_assert!(fit.r_squared() > 0.999);
    }

    /// An `ExactSum` readout is a pure function of the multiset of ledger
    /// entries: any permutation of adds reads out bit-identically.
    #[test]
    fn exact_sum_is_order_independent(
        values in spread_values(1..40),
        rotation in 0usize..40,
    ) {
        let mut forward = ExactSum::new();
        for &v in &values {
            forward.add(v);
        }
        let mut rotated = ExactSum::new();
        let pivot = rotation % values.len();
        for &v in values[pivot..].iter().chain(&values[..pivot]) {
            rotated.add(v);
        }
        prop_assert_eq!(forward.value().to_bits(), rotated.value().to_bits());
    }

    /// Interleaving adds of extra values with their later removal leaves no
    /// trace: the ledger reads out exactly as if only the kept values had
    /// ever been added.
    #[test]
    fn exact_sum_removal_leaves_no_residue(
        kept in spread_values(1..20),
        churn in spread_values(1..20),
    ) {
        let mut clean = ExactSum::new();
        for &v in &kept {
            clean.add(v);
        }
        let mut churned = ExactSum::new();
        for &v in &churn {
            churned.add(v);
        }
        for &v in &kept {
            churned.add(v);
        }
        for &v in &churn {
            churned.remove(v);
        }
        prop_assert_eq!(clean.value().to_bits(), churned.value().to_bits());
        for &v in &kept {
            churned.remove(v);
        }
        prop_assert!(churned.is_zero());
    }

    /// The readout is the correctly rounded exact sum: it never differs from
    /// the naive f64 sum by more than the naive sum's accumulated error
    /// bound, and on exactly representable cases it is exact.
    #[test]
    fn exact_sum_tracks_the_true_sum(values in spread_values(1..40)) {
        let mut acc = ExactSum::new();
        let mut naive = 0.0f64;
        for &v in &values {
            acc.add(v);
            naive += v;
        }
        let exact = acc.value();
        // The naive sum has relative error ≤ n·ε; the exact readout ≤ ε/2.
        let bound = naive * values.len() as f64 * f64::EPSILON * 2.0;
        prop_assert!((exact - naive).abs() <= bound.abs() + f64::MIN_POSITIVE,
            "exact {exact:e} vs naive {naive:e}");
    }
}
