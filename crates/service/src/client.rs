//! A small blocking HTTP client for the service's own protocol.
//!
//! Used by `stochsynth-cli`, the load generator and the integration tests.
//! One connection per request (`Connection: close`), JSON bodies only.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::json::{self, Json};

/// One received HTTP response.
#[derive(Debug, Clone)]
pub struct HttpReply {
    /// The status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: String,
}

impl HttpReply {
    /// Looks a header up by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Parses the body as JSON.
    ///
    /// # Errors
    ///
    /// Returns the JSON parser's message.
    pub fn json(&self) -> Result<Json, String> {
        json::parse(&self.body)
    }

    /// `true` for 2xx statuses.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// A blocking JSON-over-HTTP client bound to one server address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
}

impl Client {
    /// Creates a client for `addr` (anything resolvable, e.g.
    /// `"127.0.0.1:8080"`) with a 600-second I/O timeout — long enough for
    /// `wait: true` submissions of heavyweight jobs.
    ///
    /// # Errors
    ///
    /// Returns a message when the address does not resolve.
    pub fn new(addr: impl ToSocketAddrs) -> Result<Client, String> {
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| format!("cannot resolve server address: {e}"))?
            .next()
            .ok_or("server address resolved to nothing")?;
        Ok(Client {
            addr,
            timeout: Duration::from_secs(600),
        })
    }

    /// Overrides the per-request I/O timeout.
    pub fn timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sends `GET path`.
    ///
    /// # Errors
    ///
    /// Returns a transport-level message; HTTP error statuses are returned
    /// as replies, not errors.
    pub fn get(&self, path: &str) -> Result<HttpReply, String> {
        self.request("GET", path, None)
    }

    /// Sends `POST path` with a JSON body.
    ///
    /// # Errors
    ///
    /// See [`Client::get`].
    pub fn post(&self, path: &str, body: &str) -> Result<HttpReply, String> {
        self.request("POST", path, Some(body))
    }

    /// Sends `DELETE path`.
    ///
    /// # Errors
    ///
    /// See [`Client::get`].
    pub fn delete(&self, path: &str) -> Result<HttpReply, String> {
        self.request("DELETE", path, None)
    }

    fn request(&self, method: &str, path: &str, body: Option<&str>) -> Result<HttpReply, String> {
        let stream = TcpStream::connect_timeout(&self.addr, Duration::from_secs(10))
            .map_err(|e| format!("cannot connect to {}: {e}", self.addr))?;
        stream
            .set_read_timeout(Some(self.timeout))
            .map_err(|e| e.to_string())?;
        stream
            .set_write_timeout(Some(self.timeout))
            .map_err(|e| e.to_string())?;
        let mut write_half = stream.try_clone().map_err(|e| e.to_string())?;
        let body = body.unwrap_or("");
        let request = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-type: application/json\r\n\
             content-length: {}\r\nconnection: close\r\n\r\n{body}",
            self.addr,
            body.len()
        );
        write_half
            .write_all(request.as_bytes())
            .map_err(|e| format!("send failed: {e}"))?;

        let mut reader = BufReader::new(stream);
        let status_line = read_line(&mut reader)?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("malformed status line `{status_line}`"))?;
        let mut headers = Vec::new();
        let mut content_length: Option<usize> = None;
        loop {
            let line = read_line(&mut reader)?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim().to_string();
                if name == "content-length" {
                    content_length = value.parse().ok();
                }
                headers.push((name, value));
            }
        }
        let body = match content_length {
            Some(length) => {
                let mut buffer = vec![0u8; length];
                reader
                    .read_exact(&mut buffer)
                    .map_err(|e| format!("body read failed: {e}"))?;
                String::from_utf8(buffer).map_err(|_| "body is not UTF-8".to_string())?
            }
            None => {
                let mut text = String::new();
                reader
                    .read_to_string(&mut text)
                    .map_err(|e| format!("body read failed: {e}"))?;
                text
            }
        };
        Ok(HttpReply {
            status,
            headers,
            body,
        })
    }
}

fn read_line(reader: &mut BufReader<TcpStream>) -> Result<String, String> {
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read failed: {e}"))?;
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}
