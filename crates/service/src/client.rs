//! A small blocking HTTP client for the service's own protocol.
//!
//! Used by `stochsynth-cli`, the load generator and the integration tests.
//! One connection per request (`Connection: close`), JSON bodies only.

use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::http::{self, ReadError};
use crate::json::{self, Json};

/// One received HTTP response.
#[derive(Debug, Clone)]
pub struct HttpReply {
    /// The status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: String,
}

impl HttpReply {
    /// Looks a header up by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Parses the body as JSON.
    ///
    /// # Errors
    ///
    /// Returns the JSON parser's message.
    pub fn json(&self) -> Result<Json, String> {
        json::parse(&self.body)
    }

    /// `true` for 2xx statuses.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// A blocking JSON-over-HTTP client bound to one server address.
#[derive(Debug, Clone)]
pub struct Client {
    addrs: Vec<SocketAddr>,
    timeout: Duration,
    connect_timeout: Duration,
}

impl Client {
    /// Creates a client for `addr` (anything resolvable, e.g.
    /// `"127.0.0.1:8080"`) with a 600-second I/O timeout — long enough for
    /// `wait: true` submissions of heavyweight jobs — and a 10-second
    /// connect timeout.
    ///
    /// Every resolved address is kept, and each connect tries them in
    /// resolution order until one answers: a name resolving to `[::1,
    /// 127.0.0.1]` still reaches a server listening only on IPv4, instead
    /// of failing on the first (IPv6) candidate as the old single-address
    /// client did.
    ///
    /// # Errors
    ///
    /// Returns a message when the address does not resolve.
    pub fn new(addr: impl ToSocketAddrs) -> Result<Client, String> {
        let addrs: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| format!("cannot resolve server address: {e}"))?
            .collect();
        if addrs.is_empty() {
            return Err("server address resolved to nothing".to_string());
        }
        Ok(Client {
            addrs,
            timeout: Duration::from_secs(600),
            connect_timeout: Duration::from_secs(10),
        })
    }

    /// Overrides the per-request I/O timeout. Also tightens the connect
    /// timeout to at most this value, so a client configured for fast
    /// failure never spends longer connecting than it would reading.
    pub fn timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self.connect_timeout = self.connect_timeout.min(timeout);
        self
    }

    /// Overrides the per-address connect timeout.
    pub fn connect_timeout(mut self, timeout: Duration) -> Client {
        self.connect_timeout = timeout;
        self
    }

    /// The first server address this client talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addrs[0]
    }

    /// Opens a connection, trying each resolved address in order.
    fn connect(&self) -> Result<TcpStream, String> {
        let mut last_error = String::new();
        for addr in &self.addrs {
            match TcpStream::connect_timeout(addr, self.connect_timeout) {
                Ok(stream) => return Ok(stream),
                Err(e) => last_error = format!("cannot connect to {addr}: {e}"),
            }
        }
        Err(last_error)
    }

    /// Sends `GET path`.
    ///
    /// # Errors
    ///
    /// Returns a transport-level message; HTTP error statuses are returned
    /// as replies, not errors.
    pub fn get(&self, path: &str) -> Result<HttpReply, String> {
        self.request("GET", path, None, &[])
    }

    /// Sends `POST path` with a JSON body.
    ///
    /// # Errors
    ///
    /// See [`Client::get`].
    pub fn post(&self, path: &str, body: &str) -> Result<HttpReply, String> {
        self.request("POST", path, Some(body), &[])
    }

    /// Sends `POST path` with a JSON body plus extra request headers (the
    /// fabric coordinator stamps `X-Stochsynth-Trace` on shard dispatches
    /// this way). Header names and values must not contain CR/LF.
    ///
    /// # Errors
    ///
    /// See [`Client::get`].
    pub fn post_with_headers(
        &self,
        path: &str,
        body: &str,
        headers: &[(&str, &str)],
    ) -> Result<HttpReply, String> {
        self.request("POST", path, Some(body), headers)
    }

    /// Sends `DELETE path`.
    ///
    /// # Errors
    ///
    /// See [`Client::get`].
    pub fn delete(&self, path: &str) -> Result<HttpReply, String> {
        self.request("DELETE", path, None, &[])
    }

    fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
        extra_headers: &[(&str, &str)],
    ) -> Result<HttpReply, String> {
        let stream = self.connect()?;
        stream
            .set_read_timeout(Some(self.timeout))
            .map_err(|e| e.to_string())?;
        stream
            .set_write_timeout(Some(self.timeout))
            .map_err(|e| e.to_string())?;
        let mut write_half = stream.try_clone().map_err(|e| e.to_string())?;
        let body = body.unwrap_or("");
        let mut request = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-type: application/json\r\n\
             content-length: {}\r\nconnection: close\r\n",
            self.addrs[0],
            body.len()
        );
        for (name, value) in extra_headers {
            if name.contains(['\r', '\n']) || value.contains(['\r', '\n']) {
                return Err(format!("header `{name}` contains CR/LF"));
            }
            request.push_str(name);
            request.push_str(": ");
            request.push_str(value);
            request.push_str("\r\n");
        }
        request.push_str("\r\n");
        request.push_str(body);
        write_half
            .write_all(request.as_bytes())
            .map_err(|e| format!("send failed: {e}"))?;

        let mut reader = BufReader::new(stream);
        let status_line = read_line(&mut reader)?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("malformed status line `{status_line}`"))?;
        let mut headers = Vec::new();
        let mut content_length: Option<usize> = None;
        loop {
            let line = read_line(&mut reader)?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim().to_string();
                if name == "content-length" {
                    // Same smuggling hygiene as the server side: conflicting
                    // duplicates are an attack or a broken proxy, never
                    // something to silently resolve by last-write-wins.
                    let parsed: usize = value
                        .parse()
                        .map_err(|_| format!("bad content-length `{value}`"))?;
                    match content_length {
                        Some(previous) if previous != parsed => {
                            return Err(format!(
                                "conflicting content-length headers ({previous} vs {parsed})"
                            ));
                        }
                        _ => content_length = Some(parsed),
                    }
                }
                headers.push((name, value));
            }
        }
        // The protocol frames every body with `Content-Length`. An unframed
        // response used to fall back to read-to-EOF, which on a keep-alive
        // connection blocks for the full I/O timeout (10 minutes by
        // default); fail fast instead.
        let length =
            content_length.ok_or("response has no content-length; refusing to read to EOF")?;
        let mut buffer = vec![0u8; length];
        reader
            .read_exact(&mut buffer)
            .map_err(|e| format!("body read failed: {e}"))?;
        let body = String::from_utf8(buffer).map_err(|_| "body is not UTF-8".to_string())?;
        Ok(HttpReply {
            status,
            headers,
            body,
        })
    }
}

/// Reads one response line through the server-side capped reader, so a
/// hostile or broken server streaming an endless header line is cut off at
/// the same 8 KiB bound `http::read_request` enforces on requests.
fn read_line(reader: &mut BufReader<TcpStream>) -> Result<String, String> {
    http::read_line(reader).map_err(|e| match e {
        ReadError::Malformed(m) => format!("malformed response: {m}"),
        ReadError::Io(e) => format!("read failed: {e}"),
        ReadError::Closed => "connection closed".to_string(),
        ReadError::TooLarge { limit } => format!("response line exceeds {limit} bytes"),
    })
}
