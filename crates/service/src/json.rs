//! Self-contained JSON reader and writer.
//!
//! The workspace's serde shim is deliberately a no-op (the build environment
//! has no crates.io access), so the service speaks JSON through this module
//! instead: a small value tree ([`Json`]), a full-grammar parser
//! ([`parse`]) and a **deterministic** writer ([`Json::render`]).
//!
//! Determinism matters more here than in most JSON emitters: the result
//! cache stores rendered bodies and promises byte-identical replays, so the
//! writer must be a pure function of the value tree. Object members keep
//! their insertion order, numbers are rendered with Rust's shortest-round-trip
//! `f64` formatting, and no whitespace is emitted.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed or constructed JSON value.
///
/// Objects preserve member insertion order (unlike a `BTreeMap`-backed
/// value), which is what makes rendered responses reproducible
/// field-for-field — the foundation of the byte-identical cache contract.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`, which every payload here fits).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in member insertion order. Duplicate keys are rejected at
    /// parse time and must not be constructed.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::String(s.into())
    }

    /// Builds a number value from anything convertible to `f64`.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Number(n.into())
    }

    /// Builds a number value from a `u64` count.
    ///
    /// Counts above 2⁵³ cannot be represented exactly in a JSON number; the
    /// payloads here (trial counts, state-space sizes, cache statistics)
    /// stay far below that.
    pub fn count(n: u64) -> Json {
        Json::Number(n as f64)
    }

    /// Builds an object from `(key, value)` pairs, keeping their order.
    pub fn object(members: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks a key up in an object (first match; parse rejects duplicates).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Returns the object members, or an error naming `what`.
    pub fn as_object(&self, what: &str) -> Result<&[(String, Json)], String> {
        match self {
            Json::Object(members) => Ok(members),
            other => Err(format!("{what}: expected object, got {}", other.kind())),
        }
    }

    /// Returns the array items, or an error naming `what`.
    pub fn as_array(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Array(items) => Ok(items),
            other => Err(format!("{what}: expected array, got {}", other.kind())),
        }
    }

    /// Returns the string content, or an error naming `what`.
    pub fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            Json::String(s) => Ok(s),
            other => Err(format!("{what}: expected string, got {}", other.kind())),
        }
    }

    /// Returns the number, or an error naming `what`.
    pub fn as_f64(&self, what: &str) -> Result<f64, String> {
        match self {
            Json::Number(n) => Ok(*n),
            other => Err(format!("{what}: expected number, got {}", other.kind())),
        }
    }

    /// Returns the number as a non-negative integer, or an error naming
    /// `what`.
    pub fn as_u64(&self, what: &str) -> Result<u64, String> {
        let n = self.as_f64(what)?;
        if n.fract() != 0.0 || !(0.0..=u64::MAX as f64).contains(&n) {
            return Err(format!("{what}: expected a non-negative integer, got {n}"));
        }
        Ok(n as u64)
    }

    /// Returns the boolean, or an error naming `what`.
    pub fn as_bool(&self, what: &str) -> Result<bool, String> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(format!("{what}: expected bool, got {}", other.kind())),
        }
    }

    /// A short name of the value's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Number(_) => "number",
            Json::String(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }

    /// Renders the value as compact JSON.
    ///
    /// The output is a pure function of the value: insertion-ordered
    /// members, shortest-round-trip number formatting, no whitespace.
    /// Non-finite numbers (which JSON cannot represent) render as `null`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) if n.is_finite() => {
                let _ = write!(out, "{n}");
            }
            Json::Number(_) => out.push_str("null"),
            Json::String(s) => render_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Object(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a human-readable message naming the byte offset of the problem.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing data at byte {}", parser.pos));
    }
    Ok(value)
}

/// Maximum nesting depth the parser accepts; requests deeper than this are
/// hostile or broken, and a recursion limit keeps them from overflowing the
/// connection thread's stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_whitespace();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek()? == byte {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", byte as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        if self.depth >= MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} levels"));
        }
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::String(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut members: Vec<(String, Json)> = Vec::new();
        let mut seen: BTreeMap<String, ()> = BTreeMap::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Object(members));
        }
        loop {
            let key = self.string()?;
            if seen.insert(key.clone(), ()).is_some() {
                return Err(format!("duplicate object key `{key}`"));
            }
            self.expect(b':')?;
            let value = self.value()?;
            members.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Object(members));
                }
                other => return Err(format!("expected `,` or `}}`, got `{}`", other as char)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Array(items));
                }
                other => return Err(format!("expected `,` or `]`, got `{}`", other as char)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let byte = *self.bytes.get(self.pos).ok_or("unterminated string")?;
            self.pos += 1;
            match byte {
                b'"' => return Ok(out),
                b'\\' => {
                    let escape = *self.bytes.get(self.pos).ok_or("unterminated escape")?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let unit = self.utf16_unit()?;
                            let code = if (0xD800..0xDC00).contains(&unit) {
                                // A high surrogate must pair with a low one
                                // (RFC 8259 strings carry UTF-16 escapes).
                                if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                    return Err("unpaired \\u surrogate".to_string());
                                }
                                self.pos += 2;
                                let low = self.utf16_unit()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err("invalid low \\u surrogate".to_string());
                                }
                                0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                unit
                            };
                            out.push(char::from_u32(code).ok_or("invalid \\u escape codepoint")?);
                        }
                        other => return Err(format!("invalid escape `\\{}`", other as char)),
                    }
                }
                _ => {
                    // Multi-byte UTF-8 sequences pass through unchanged.
                    let start = self.pos - 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    /// Reads the 4 hex digits of a `\u` escape as one UTF-16 code unit.
    fn utf16_unit(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or("truncated \\u escape")?;
        let unit = u32::from_str_radix(std::str::from_utf8(hex).map_err(|e| e.to_string())?, 16)
            .map_err(|e| e.to_string())?;
        self.pos += 4;
        Ok(unit)
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_whitespace();
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_renders_round_trip() {
        let text = r#"{"b":1,"a":[true,null,"x\ny",2.5],"c":{"nested":-3e2}}"#;
        let value = parse(text).unwrap();
        // Insertion order survives: `b` stays before `a`.
        assert_eq!(
            value.render(),
            r#"{"b":1,"a":[true,null,"x\ny",2.5],"c":{"nested":-300}}"#
        );
        let again = parse(&value.render()).unwrap();
        assert_eq!(value, again);
    }

    #[test]
    fn rendering_is_deterministic() {
        let value = Json::object([
            ("z", Json::count(3)),
            ("a", Json::str("hello")),
            ("list", Json::Array(vec![Json::num(0.1), Json::Bool(false)])),
        ]);
        assert_eq!(value.render(), r#"{"z":3,"a":"hello","list":[0.1,false]}"#);
        assert_eq!(value.render(), value.clone().render());
    }

    #[test]
    fn shortest_float_formatting_round_trips() {
        for n in [0.1f64, 1.0, 1e-9, 123456.789, 2f64.powi(60)] {
            let rendered = Json::num(n).render();
            assert_eq!(rendered.parse::<f64>().unwrap(), n, "{rendered}");
        }
        // Integral floats render without a decimal point.
        assert_eq!(Json::num(4.0).render(), "4");
        // Non-finite numbers degrade to null instead of emitting invalid JSON.
        assert_eq!(Json::num(f64::NAN).render(), "null");
    }

    #[test]
    fn typed_accessors_name_the_field() {
        let value = parse(r#"{"n":3.5,"s":"x","flag":true,"list":[1]}"#).unwrap();
        assert_eq!(value.get("s").unwrap().as_str("s").unwrap(), "x");
        assert_eq!(value.get("n").unwrap().as_f64("n").unwrap(), 3.5);
        assert!(value
            .get("n")
            .unwrap()
            .as_u64("n")
            .unwrap_err()
            .contains("n"));
        assert!(value
            .get("s")
            .unwrap()
            .as_f64("s")
            .unwrap_err()
            .contains("string"));
        assert!(value.get("flag").unwrap().as_bool("flag").unwrap());
        assert_eq!(
            value.get("list").unwrap().as_array("list").unwrap().len(),
            1
        );
        assert!(value.get("missing").is_none());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\":1,\"a\":2}",
            "tru",
            "\"unterminated",
            "01x",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn surrogate_pairs_decode_to_one_code_point() {
        // 😀 escaped the way ASCII-only serialisers emit it.
        let value = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(value, Json::str("\u{1F600}"));
        // The raw UTF-8 form decodes to the same value.
        assert_eq!(parse("\"\u{1F600}\"").unwrap(), value);
        // Lone or malformed surrogates are rejected, not mangled.
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\ud83dx""#).is_err());
        assert!(parse(r#""\ud83dA""#).is_err());
        assert!(parse(r#""\udc00""#).is_err());
    }

    #[test]
    fn depth_limit_rejects_hostile_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).unwrap_err().contains("nesting"));
        let ok = "[".repeat(40) + &"]".repeat(40);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn escapes_control_characters() {
        let value = Json::str("a\"b\\c\nd\u{1}");
        assert_eq!(value.render(), r#""a\"b\\c\nd\u0001""#);
        assert_eq!(parse(&value.render()).unwrap(), value);
    }
}
