//! The bounded work-stealing job scheduler.
//!
//! Jobs enter a bounded, priority-ordered injector queue. Each worker
//! thread owns a deque of *tasks* (the chunks of one job); a worker
//! prefers its own deque (newest first, for locality), then **steals the
//! oldest task from a sibling's deque**, and only then pops a fresh job
//! from the injector and expands it into chunk tasks. Stealing is what
//! keeps a many-chunk ensemble job from serialising behind one worker
//! while its siblings idle.
//!
//! Scheduling policy:
//!
//! * **priorities** — the injector pops the highest-priority job first
//!   (FIFO within a priority);
//! * **anti-starvation** — every [`AGING_PERIOD`]-th pop takes the oldest
//!   queued job regardless of priority, so a stream of urgent work can
//!   delay background jobs but never park them forever;
//! * **bounded** — submissions beyond the queue capacity are rejected
//!   ([`SubmitError::QueueFull`]) instead of buffering without limit;
//! * **cancellation** — every job carries a
//!   [`CancelToken`](gillespie::engine::CancelToken) shared with the
//!   running chunk (the ensemble engine polls it between trials), so a
//!   `DELETE /jobs/:id` frees the worker slot within one trial, not at the
//!   end of the job;
//! * **determinism** — chunk outputs are buffered per job and merged in
//!   chunk order by the job's `finish` closure, so a report computed by
//!   any interleaving of workers is bit-identical to a single-threaded
//!   run.
//!
//! The deques are guarded by one scheduler mutex rather than per-deque
//! locks: tasks here are coarse (milliseconds of simulation), so the
//! critical sections — a few pointer moves — are never contended long
//! enough to matter, and a single lock makes the state machine easy to
//! reason about.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use gillespie::engine::CancelToken;
use gillespie::EnsemblePartial;
use obs::log::{event, Level, Value};
use obs::{Gauge, Histogram};

/// Identifies one submitted job.
pub type JobId = u64;

/// Every this-many injector pops, the oldest queued job wins regardless of
/// priority (the anti-starvation escape hatch).
const AGING_PERIOD: u64 = 4;

/// How many terminal jobs (and their result bodies) are retained for
/// polling before the oldest are forgotten.
const TERMINAL_RETENTION: usize = 1024;

/// The lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the injector queue.
    Queued,
    /// At least one chunk has started.
    Running,
    /// All chunks finished and the result body is available.
    Completed,
    /// A chunk (or the finish step) failed.
    Failed,
    /// The job was cancelled before completing.
    Cancelled,
}

impl JobState {
    /// `true` for states a job can never leave.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Failed | JobState::Cancelled
        )
    }

    /// The state's wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }
}

/// The output of one task (chunk) of a job.
///
/// The partial is boxed: its exact accumulators are ~1.2 KiB inline, and
/// outputs sit in a `Vec` sized to the chunk count while the job drains.
#[derive(Debug)]
pub enum ChunkOutput {
    /// A block of ensemble trials, merged in chunk order at finish time.
    Partial(Box<EnsemblePartial>),
    /// A complete rendered body (single-chunk analysis jobs).
    Body(String),
}

/// The work a job performs, split into independent chunks.
///
/// `run_chunk` is called once per chunk index (possibly concurrently, on
/// any worker); `finish` receives the outputs **in chunk order** and
/// produces the final response body. Both must be deterministic functions
/// of their inputs — the result cache depends on it.
pub struct JobWork {
    /// Number of independent chunks (≥ 1).
    pub chunks: usize,
    /// Runs one chunk. The token is raised on cancellation; long chunks
    /// should poll it (the ensemble engine does so between trials).
    #[allow(clippy::type_complexity)]
    pub run_chunk: Box<dyn Fn(usize, &CancelToken) -> Result<ChunkOutput, String> + Send + Sync>,
    /// Merges the chunk outputs into the final body.
    #[allow(clippy::type_complexity)]
    pub finish: Box<dyn Fn(Vec<ChunkOutput>) -> Result<String, String> + Send + Sync>,
}

/// Observability handles the scheduler updates as jobs move through the
/// queue. All of it is strictly read-only with respect to scheduling
/// decisions: the histogram, gauges and hook observe transitions, they
/// never reorder or delay them — which is what keeps result bytes
/// independent of whether telemetry is wired up.
pub struct SchedulerTelemetry {
    /// Queue wait (submission → first chunk dispatched), microseconds.
    pub queue_wait_us: Arc<Histogram>,
    /// Jobs currently waiting in the injector queue.
    pub queue_depth: Arc<Gauge>,
    /// Jobs with at least one chunk started and not yet settled.
    pub running_jobs: Arc<Gauge>,
    /// Called (under the scheduler lock) when a job leaves the queue and
    /// starts running: `(id, label, wait)`. The app records the
    /// `schedule-wait` trace span here. Must not call back into the
    /// scheduler.
    #[allow(clippy::type_complexity)]
    pub on_dequeue: Box<dyn Fn(JobId, &str, Duration) + Send + Sync>,
}

impl std::fmt::Debug for SchedulerTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SchedulerTelemetry")
    }
}

/// Why a submission was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded injector queue is at capacity.
    QueueFull {
        /// The configured capacity.
        capacity: usize,
    },
    /// The scheduler is draining for shutdown.
    Draining,
}

/// A point-in-time view of one job, for `GET /jobs/:id`.
#[derive(Debug, Clone)]
pub struct JobSnapshot {
    /// The job id.
    pub id: JobId,
    /// Current lifecycle state.
    pub state: JobState,
    /// The submission priority (0 = background … 9 = urgent).
    pub priority: u8,
    /// A short label describing the job kind (`simulate`, `exact`, …).
    pub label: String,
    /// Chunks finished so far.
    pub completed_chunks: usize,
    /// Total chunks.
    pub total_chunks: usize,
    /// The result body, present once `state == Completed`.
    pub result: Option<String>,
    /// The failure message, present once `state == Failed`.
    pub error: Option<String>,
    /// Global completion sequence number (1-based), stamped when the job
    /// reaches a terminal state. Exposes completion *order* to tests and
    /// clients without racing on wall-clock time.
    pub completion_index: Option<u64>,
}

impl JobSnapshot {
    /// Fraction of chunks finished, in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        if self.total_chunks == 0 {
            return 1.0;
        }
        self.completed_chunks as f64 / self.total_chunks as f64
    }
}

/// Counters for `GET /metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedulerStats {
    /// Worker thread count.
    pub workers: usize,
    /// Jobs waiting in the injector.
    pub queued: usize,
    /// Jobs with at least one chunk in flight.
    pub running: usize,
    /// Jobs completed successfully since start.
    pub completed: u64,
    /// Jobs failed since start.
    pub failed: u64,
    /// Jobs cancelled since start.
    pub cancelled: u64,
    /// Submissions rejected by the queue bound.
    pub rejected: u64,
    /// Tasks a worker stole from a sibling's deque.
    pub steals: u64,
}

/// The outcome of [`Scheduler::drain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Jobs that reached `Completed`/`Failed` during (or before) the drain.
    pub finished: u64,
    /// Jobs forcibly cancelled when the deadline expired.
    pub cancelled: u64,
}

struct QueuedJob {
    id: JobId,
    priority: u8,
    seq: u64,
}

struct JobEntry {
    priority: u8,
    label: String,
    state: JobState,
    /// When the job entered the queue; the queue-wait histogram measures
    /// from here to the first chunk expansion.
    queued_at: Instant,
    cancel: Arc<CancelToken>,
    work: Option<Arc<JobWork>>,
    outputs: Vec<Option<ChunkOutput>>,
    completed_chunks: usize,
    total_chunks: usize,
    /// Tasks handed to a worker but not yet retired (running right now).
    inflight_chunks: usize,
    /// Tasks still sitting in some deque.
    pending_chunks: usize,
    first_error: Option<String>,
    result: Option<String>,
    completion_index: Option<u64>,
}

impl JobEntry {
    fn snapshot(&self, id: JobId) -> JobSnapshot {
        JobSnapshot {
            id,
            state: self.state,
            priority: self.priority,
            label: self.label.clone(),
            completed_chunks: self.completed_chunks,
            total_chunks: self.total_chunks,
            result: self.result.clone(),
            error: self.first_error.clone(),
            completion_index: self.completion_index,
        }
    }
}

#[derive(Clone, Copy)]
struct Task {
    job: JobId,
    chunk: usize,
}

struct SchedState {
    queue: Vec<QueuedJob>,
    deques: Vec<VecDeque<Task>>,
    jobs: HashMap<JobId, JobEntry>,
    /// Terminal jobs in completion order, for bounded retention: once more
    /// than [`TERMINAL_RETENTION`] jobs have settled, the oldest are
    /// forgotten (their ids answer `status` with `None`, like unknown
    /// jobs). Without this the map — and every retained result body —
    /// would grow for the life of the process.
    terminal_order: VecDeque<JobId>,
    next_id: JobId,
    next_seq: u64,
    pops: u64,
    completion_counter: u64,
    completed: u64,
    failed: u64,
    cancelled: u64,
    rejected: u64,
    steals: u64,
    /// Jobs in `Running` state, maintained incrementally so telemetry
    /// gauges never need an O(jobs) scan.
    running_count: usize,
    draining: bool,
    shutdown: bool,
    telemetry: Option<SchedulerTelemetry>,
}

impl SchedState {
    /// Pushes the current queue depth / running count into the gauges.
    fn publish_gauges(&self) {
        if let Some(telemetry) = &self.telemetry {
            telemetry.queue_depth.set(self.queue.len() as u64);
            telemetry.running_jobs.set(self.running_count as u64);
        }
    }
}

struct SchedulerInner {
    state: Mutex<SchedState>,
    /// Signalled on new work, job completion and shutdown.
    cv: Condvar,
    queue_capacity: usize,
    workers: usize,
}

/// The bounded work-stealing job scheduler. See the [module
/// docs](self) for the scheduling policy.
pub struct Scheduler {
    inner: Arc<SchedulerInner>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Scheduler({} workers)", self.inner.workers)
    }
}

impl Scheduler {
    /// Starts `workers` threads (0 = one per available CPU) with a bounded
    /// injector queue of `queue_capacity` jobs.
    pub fn new(workers: usize, queue_capacity: usize) -> Scheduler {
        Scheduler::with_telemetry(workers, queue_capacity, None)
    }

    /// Like [`Scheduler::new`], with observability handles the scheduler
    /// updates as jobs move through the queue.
    pub fn with_telemetry(
        workers: usize,
        queue_capacity: usize,
        telemetry: Option<SchedulerTelemetry>,
    ) -> Scheduler {
        let workers = if workers > 0 {
            workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        let inner = Arc::new(SchedulerInner {
            state: Mutex::new(SchedState {
                queue: Vec::new(),
                deques: (0..workers).map(|_| VecDeque::new()).collect(),
                jobs: HashMap::new(),
                terminal_order: VecDeque::new(),
                next_id: 1,
                next_seq: 0,
                pops: 0,
                completion_counter: 0,
                completed: 0,
                failed: 0,
                cancelled: 0,
                rejected: 0,
                steals: 0,
                running_count: 0,
                draining: false,
                shutdown: false,
                telemetry,
            }),
            cv: Condvar::new(),
            queue_capacity: queue_capacity.max(1),
            workers,
        });
        let threads = (0..workers)
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("stochsynth-worker-{w}"))
                    .spawn(move || worker_loop(&inner, w))
                    .expect("spawn scheduler worker")
            })
            .collect();
        Scheduler { inner, threads }
    }

    /// Submits a job at `priority` (0 = background … 9 = urgent; values
    /// above 9 are clamped).
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when the bounded queue is at capacity and
    /// [`SubmitError::Draining`] once shutdown has begun.
    pub fn submit(
        &self,
        priority: u8,
        label: impl Into<String>,
        work: JobWork,
    ) -> Result<JobId, SubmitError> {
        self.submit_with(priority, label, move |_| work)
    }

    /// Submits a job whose work is built *after* the job id is allocated:
    /// `build` receives the id and returns the [`JobWork`]. This is how the
    /// app bakes the trace id (the job id, as text) into chunk closures —
    /// the id does not exist before admission, and recording spans under a
    /// provisional id would orphan them.
    ///
    /// `build` runs under the scheduler lock and must not call back into
    /// the scheduler; it should only construct closures.
    ///
    /// # Errors
    ///
    /// See [`Scheduler::submit`]. When the submission is rejected, `build`
    /// is never called.
    pub fn submit_with(
        &self,
        priority: u8,
        label: impl Into<String>,
        build: impl FnOnce(JobId) -> JobWork,
    ) -> Result<JobId, SubmitError> {
        let label = label.into();
        let mut state = self.inner.state.lock().expect("scheduler lock");
        if state.draining || state.shutdown {
            return Err(SubmitError::Draining);
        }
        if state.queue.len() >= self.inner.queue_capacity {
            state.rejected += 1;
            event(
                Level::Warn,
                "service::scheduler",
                "job_rejected",
                &[
                    ("label", Value::str(label)),
                    ("capacity", Value::U64(self.inner.queue_capacity as u64)),
                ],
            );
            return Err(SubmitError::QueueFull {
                capacity: self.inner.queue_capacity,
            });
        }
        let id = state.next_id;
        state.next_id += 1;
        let seq = state.next_seq;
        state.next_seq += 1;
        let work = build(id);
        assert!(work.chunks >= 1, "jobs have at least one chunk");
        let total_chunks = work.chunks;
        state.jobs.insert(
            id,
            JobEntry {
                priority: priority.min(9),
                label: label.clone(),
                state: JobState::Queued,
                queued_at: Instant::now(),
                cancel: Arc::new(CancelToken::new()),
                work: Some(Arc::new(work)),
                outputs: Vec::new(),
                completed_chunks: 0,
                total_chunks,
                inflight_chunks: 0,
                pending_chunks: 0,
                first_error: None,
                result: None,
                completion_index: None,
            },
        );
        state.queue.push(QueuedJob {
            id,
            priority: priority.min(9),
            seq,
        });
        state.publish_gauges();
        event(
            Level::Debug,
            "service::scheduler",
            "job_queued",
            &[
                ("corr", Value::U64(id)),
                ("label", Value::str(label)),
                ("priority", Value::U64(u64::from(priority.min(9)))),
                ("chunks", Value::U64(total_chunks as u64)),
                ("queue_depth", Value::U64(state.queue.len() as u64)),
            ],
        );
        drop(state);
        self.inner.cv.notify_all();
        Ok(id)
    }

    /// Cancels a job: a queued job is removed immediately, a running job's
    /// token is raised so its chunks stop at the next poll.
    ///
    /// Returns `false` when the job is unknown or already terminal.
    pub fn cancel(&self, id: JobId) -> bool {
        let mut state = self.inner.state.lock().expect("scheduler lock");
        let Some(entry) = state.jobs.get(&id) else {
            return false;
        };
        if entry.state.is_terminal() {
            return false;
        }
        let was_queued = entry.state == JobState::Queued;
        entry.cancel.cancel();
        if was_queued {
            state.queue.retain(|q| q.id != id);
            finish_job(&mut state, id, JobState::Cancelled);
        } else {
            // Running: drop still-queued chunk tasks now; in-flight chunks
            // observe the token and retire through `retire_task`.
            for deque in &mut state.deques {
                deque.retain(|t| t.job != id);
            }
            let entry = state.jobs.get_mut(&id).expect("job exists");
            entry.pending_chunks = 0;
            if entry.inflight_chunks == 0 {
                finish_job(&mut state, id, JobState::Cancelled);
            }
        }
        drop(state);
        self.inner.cv.notify_all();
        true
    }

    /// Returns a snapshot of the job, or `None` if the id is unknown.
    pub fn status(&self, id: JobId) -> Option<JobSnapshot> {
        let state = self.inner.state.lock().expect("scheduler lock");
        state.jobs.get(&id).map(|entry| entry.snapshot(id))
    }

    /// Blocks until the job reaches a terminal state, up to `timeout`.
    /// Returns the final snapshot, or `None` on timeout / unknown id.
    pub fn wait_terminal(&self, id: JobId, timeout: Duration) -> Option<JobSnapshot> {
        let deadline = Instant::now() + timeout;
        let mut state = self.inner.state.lock().expect("scheduler lock");
        loop {
            match state.jobs.get(&id) {
                None => return None,
                Some(entry) if entry.state.is_terminal() => {
                    return Some(entry.snapshot(id));
                }
                Some(_) => {}
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, _) = self
                .inner
                .cv
                .wait_timeout(state, deadline - now)
                .expect("scheduler lock");
            state = next;
        }
    }

    /// Current scheduler counters.
    pub fn stats(&self) -> SchedulerStats {
        let state = self.inner.state.lock().expect("scheduler lock");
        SchedulerStats {
            workers: self.inner.workers,
            queued: state.queue.len(),
            running: state.running_count,
            completed: state.completed,
            failed: state.failed,
            cancelled: state.cancelled,
            rejected: state.rejected,
            steals: state.steals,
        }
    }

    /// Stops accepting new jobs and waits up to `deadline` for queued and
    /// running jobs to finish; whatever is still alive afterwards is
    /// cancelled. The scheduler keeps serving `status` queries afterwards
    /// but rejects submissions.
    pub fn drain(&self, deadline: Duration) -> DrainReport {
        let until = Instant::now() + deadline;
        let mut state = self.inner.state.lock().expect("scheduler lock");
        state.draining = true;
        drop(state);
        self.inner.cv.notify_all();

        let mut state = self.inner.state.lock().expect("scheduler lock");
        loop {
            let alive: Vec<JobId> = state
                .jobs
                .iter()
                .filter(|(_, e)| !e.state.is_terminal())
                .map(|(&id, _)| id)
                .collect();
            if alive.is_empty() {
                break;
            }
            let now = Instant::now();
            if now >= until {
                // Deadline expired: cancel the stragglers and wait for
                // their in-flight chunks to retire (bounded by the chunk
                // granularity, i.e. at most one trial).
                for id in alive {
                    if let Some(entry) = state.jobs.get(&id) {
                        entry.cancel.cancel();
                        let was_queued = entry.state == JobState::Queued;
                        if was_queued {
                            state.queue.retain(|q| q.id != id);
                            finish_job(&mut state, id, JobState::Cancelled);
                        } else {
                            for deque in &mut state.deques {
                                deque.retain(|t| t.job != id);
                            }
                            let entry = state.jobs.get_mut(&id).expect("job exists");
                            entry.pending_chunks = 0;
                            if entry.inflight_chunks == 0 {
                                finish_job(&mut state, id, JobState::Cancelled);
                            }
                        }
                    }
                }
                self.inner.cv.notify_all();
                while state.jobs.values().any(|e| !e.state.is_terminal()) {
                    let (next, _) = self
                        .inner
                        .cv
                        .wait_timeout(state, Duration::from_millis(50))
                        .expect("scheduler lock");
                    state = next;
                }
                break;
            }
            let (next, _) = self
                .inner
                .cv
                .wait_timeout(state, until - now)
                .expect("scheduler lock");
            state = next;
        }
        DrainReport {
            finished: state.completed + state.failed,
            cancelled: state.cancelled,
        }
    }

    /// Drains with a zero deadline and joins the worker threads.
    pub fn shutdown(mut self) {
        self.stop_workers();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }

    fn stop_workers(&self) {
        let mut state = self.inner.state.lock().expect("scheduler lock");
        state.draining = true;
        state.shutdown = true;
        drop(state);
        self.inner.cv.notify_all();
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.stop_workers();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Marks a job terminal, updating counters and the completion index.
fn finish_job(state: &mut SchedState, id: JobId, terminal: JobState) {
    let counter = {
        state.completion_counter += 1;
        state.completion_counter
    };
    let entry = state.jobs.get_mut(&id).expect("job exists");
    debug_assert!(!entry.state.is_terminal());
    let was_running = entry.state == JobState::Running;
    let label = entry.label.clone();
    let error = entry.first_error.clone();
    entry.state = terminal;
    entry.completion_index = Some(counter);
    entry.work = None;
    entry.outputs.clear();
    if was_running {
        state.running_count = state.running_count.saturating_sub(1);
    }
    match terminal {
        JobState::Completed => state.completed += 1,
        JobState::Failed => state.failed += 1,
        JobState::Cancelled => state.cancelled += 1,
        _ => unreachable!("finish_job only sets terminal states"),
    }
    state.publish_gauges();
    let mut fields = vec![
        ("corr", Value::U64(id)),
        ("label", Value::str(label)),
        ("state", Value::str(terminal.as_str())),
        ("completion_index", Value::U64(counter)),
    ];
    if let Some(message) = error {
        fields.push(("error", Value::Str(message)));
    }
    let level = if terminal == JobState::Failed {
        Level::Warn
    } else {
        Level::Debug
    };
    event(level, "service::scheduler", "job_finished", &fields);
    // Bounded retention: forget the oldest settled jobs (and their result
    // bodies) once more than TERMINAL_RETENTION have accumulated.
    state.terminal_order.push_back(id);
    while state.terminal_order.len() > TERMINAL_RETENTION {
        let oldest = state
            .terminal_order
            .pop_front()
            .expect("retention queue is non-empty");
        state.jobs.remove(&oldest);
    }
}

/// Pops the next job from the injector: highest priority first, FIFO within
/// a priority — except every [`AGING_PERIOD`]-th pop, which takes the
/// globally oldest job so low priorities cannot starve.
fn pop_job(state: &mut SchedState) -> Option<QueuedJob> {
    if state.queue.is_empty() {
        return None;
    }
    state.pops += 1;
    let aging = state.pops.is_multiple_of(AGING_PERIOD);
    let best = state
        .queue
        .iter()
        .enumerate()
        .min_by_key(|(_, q)| {
            if aging {
                (0u8, q.seq)
            } else {
                // Highest priority first → smallest (9 - priority).
                (9 - q.priority, q.seq)
            }
        })
        .map(|(i, _)| i)?;
    Some(state.queue.swap_remove(best))
}

fn worker_loop(inner: &SchedulerInner, worker: usize) {
    let mut state = inner.state.lock().expect("scheduler lock");
    loop {
        // 1. Own deque, newest first (locality within a job).
        let task = state.deques[worker].pop_back().or_else(|| {
            // 2. Steal the oldest task from the busiest sibling.
            let victim = (0..state.deques.len())
                .filter(|&v| v != worker)
                .max_by_key(|&v| state.deques[v].len())
                .filter(|&v| !state.deques[v].is_empty());
            if let Some(v) = victim {
                state.steals += 1;
                state.deques[v].pop_front()
            } else {
                None
            }
        });
        let task = match task {
            Some(task) => Some(task),
            None => match pop_job(&mut state) {
                // 3. Expand a fresh job into chunk tasks on our own deque.
                Some(queued) => {
                    let entry = state.jobs.get_mut(&queued.id).expect("queued job exists");
                    if entry.state != JobState::Queued {
                        // Cancelled while queued (defensive; cancel removes
                        // queue entries eagerly).
                        None
                    } else {
                        entry.state = JobState::Running;
                        let wait = entry.queued_at.elapsed();
                        let label = entry.label.clone();
                        let chunks = entry.total_chunks;
                        entry.outputs = (0..chunks).map(|_| None).collect();
                        entry.pending_chunks = chunks;
                        for chunk in (0..chunks).rev() {
                            state.deques[worker].push_back(Task {
                                job: queued.id,
                                chunk,
                            });
                        }
                        state.running_count += 1;
                        let wait_us = u64::try_from(wait.as_micros()).unwrap_or(u64::MAX);
                        if let Some(telemetry) = &state.telemetry {
                            telemetry.queue_wait_us.record(wait_us);
                            (telemetry.on_dequeue)(queued.id, &label, wait);
                        }
                        state.publish_gauges();
                        event(
                            Level::Debug,
                            "service::scheduler",
                            "job_started",
                            &[
                                ("corr", Value::U64(queued.id)),
                                ("label", Value::str(label)),
                                ("queue_wait_us", Value::U64(wait_us)),
                                ("chunks", Value::U64(chunks as u64)),
                            ],
                        );
                        // Wake siblings so they can steal our fresh chunks.
                        inner.cv.notify_all();
                        state.deques[worker].pop_back()
                    }
                }
                None => None,
            },
        };

        let Some(task) = task else {
            if state.shutdown {
                return;
            }
            let (next, _) = inner
                .cv
                .wait_timeout(state, Duration::from_millis(100))
                .expect("scheduler lock");
            state = next;
            continue;
        };

        // Claim the chunk and run it unlocked.
        let Some((work, cancel)) = state.jobs.get_mut(&task.job).and_then(|entry| {
            if entry.state != JobState::Running {
                return None;
            }
            entry.pending_chunks = entry.pending_chunks.saturating_sub(1);
            entry.inflight_chunks += 1;
            Some((
                Arc::clone(entry.work.as_ref().expect("running job has work")),
                Arc::clone(&entry.cancel),
            ))
        }) else {
            continue;
        };

        drop(state);
        let outcome = if cancel.is_cancelled() {
            Err("cancelled".to_string())
        } else {
            (work.run_chunk)(task.chunk, &cancel)
        };
        state = inner.state.lock().expect("scheduler lock");
        retire_task(inner, &mut state, task, outcome, &work);
    }
}

/// Books the outcome of one finished chunk and completes/fails/cancels the
/// job when its last outstanding chunk retires.
fn retire_task(
    inner: &SchedulerInner,
    state: &mut SchedState,
    task: Task,
    outcome: Result<ChunkOutput, String>,
    work: &Arc<JobWork>,
) {
    let Some(entry) = state.jobs.get_mut(&task.job) else {
        return;
    };
    entry.inflight_chunks = entry.inflight_chunks.saturating_sub(1);
    if entry.state.is_terminal() {
        inner.cv.notify_all();
        return;
    }
    let cancelled = entry.cancel.is_cancelled();
    match outcome {
        Ok(output) if !cancelled => {
            entry.outputs[task.chunk] = Some(output);
            entry.completed_chunks += 1;
        }
        Ok(_) => {}
        Err(message) => {
            if entry.first_error.is_none() && !cancelled {
                entry.first_error = Some(message);
            }
            // Stop sibling chunks of a failed job early.
            entry.cancel.cancel();
            for deque in &mut state.deques {
                deque.retain(|t| t.job != task.job);
            }
            let entry = state.jobs.get_mut(&task.job).expect("job exists");
            entry.pending_chunks = 0;
        }
    }

    let entry = state.jobs.get_mut(&task.job).expect("job exists");
    let outstanding = entry.pending_chunks + entry.inflight_chunks;
    if outstanding > 0 {
        inner.cv.notify_all();
        return;
    }
    // Last chunk retired: settle the job.
    if entry.cancel.is_cancelled() && entry.first_error.is_none() {
        finish_job(state, task.job, JobState::Cancelled);
    } else if entry.first_error.is_some() {
        finish_job(state, task.job, JobState::Failed);
    } else if entry.completed_chunks == entry.total_chunks {
        let outputs: Vec<ChunkOutput> = entry
            .outputs
            .iter_mut()
            .map(|slot| slot.take().expect("all chunks completed"))
            .collect();
        match (work.finish)(outputs) {
            Ok(body) => {
                let entry = state.jobs.get_mut(&task.job).expect("job exists");
                entry.result = Some(body);
                finish_job(state, task.job, JobState::Completed);
            }
            Err(message) => {
                let entry = state.jobs.get_mut(&task.job).expect("job exists");
                entry.first_error = Some(message);
                finish_job(state, task.job, JobState::Failed);
            }
        }
    } else {
        // Chunks were dropped without error or cancellation — impossible by
        // construction, but never leave a job limbo'd.
        let entry = state.jobs.get_mut(&task.job).expect("job exists");
        entry.first_error = Some("internal: chunks lost without cancellation".to_string());
        finish_job(state, task.job, JobState::Failed);
    }
    inner.cv.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A job whose chunks each return a `Body` with their index; finish
    /// concatenates.
    fn counting_job(chunks: usize, delay: Duration) -> JobWork {
        JobWork {
            chunks,
            run_chunk: Box::new(move |i, cancel| {
                let started = Instant::now();
                while started.elapsed() < delay {
                    if cancel.is_cancelled() {
                        return Ok(ChunkOutput::Body(String::new()));
                    }
                    std::thread::yield_now();
                }
                Ok(ChunkOutput::Body(format!("{i};")))
            }),
            finish: Box::new(|outputs| {
                let mut body = String::new();
                for output in outputs {
                    match output {
                        ChunkOutput::Body(s) => body.push_str(&s),
                        ChunkOutput::Partial(_) => unreachable!(),
                    }
                }
                Ok(body)
            }),
        }
    }

    #[test]
    fn chunks_merge_in_chunk_order_regardless_of_workers() {
        let scheduler = Scheduler::new(4, 64);
        let id = scheduler
            .submit(5, "test", counting_job(16, Duration::ZERO))
            .unwrap();
        let snapshot = scheduler
            .wait_terminal(id, Duration::from_secs(10))
            .expect("job finishes");
        assert_eq!(snapshot.state, JobState::Completed);
        let expected: String = (0..16).map(|i| format!("{i};")).collect();
        assert_eq!(snapshot.result.as_deref(), Some(expected.as_str()));
        assert!((snapshot.progress() - 1.0).abs() < 1e-12);
        scheduler.shutdown();
    }

    #[test]
    fn sustains_many_concurrent_jobs_without_deadlock() {
        let scheduler = Scheduler::new(4, 128);
        let ids: Vec<JobId> = (0..80)
            .map(|i| {
                scheduler
                    .submit((i % 10) as u8, "test", counting_job(3, Duration::ZERO))
                    .unwrap()
            })
            .collect();
        for id in ids {
            let snapshot = scheduler
                .wait_terminal(id, Duration::from_secs(30))
                .expect("every job finishes");
            assert_eq!(snapshot.state, JobState::Completed);
        }
        let stats = scheduler.stats();
        assert_eq!(stats.completed, 80);
        assert_eq!(stats.queued, 0);
        scheduler.shutdown();
    }

    #[test]
    fn queue_bound_rejects_past_capacity() {
        // One worker stuck on a slow job; the queue holds 2 more.
        let scheduler = Scheduler::new(1, 2);
        let blocker = scheduler
            .submit(5, "slow", counting_job(1, Duration::from_millis(300)))
            .unwrap();
        // Give the worker a moment to pull the blocker off the queue.
        std::thread::sleep(Duration::from_millis(50));
        let _a = scheduler
            .submit(5, "q1", counting_job(1, Duration::ZERO))
            .unwrap();
        let _b = scheduler
            .submit(5, "q2", counting_job(1, Duration::ZERO))
            .unwrap();
        let err = scheduler
            .submit(5, "q3", counting_job(1, Duration::ZERO))
            .unwrap_err();
        assert_eq!(err, SubmitError::QueueFull { capacity: 2 });
        assert_eq!(scheduler.stats().rejected, 1);
        scheduler
            .wait_terminal(blocker, Duration::from_secs(10))
            .unwrap();
        scheduler.shutdown();
    }

    #[test]
    fn priorities_order_queued_jobs() {
        // One worker; first job blocks while the rest queue up.
        let scheduler = Scheduler::new(1, 64);
        let blocker = scheduler
            .submit(9, "blocker", counting_job(1, Duration::from_millis(200)))
            .unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let low = scheduler
            .submit(1, "low", counting_job(1, Duration::ZERO))
            .unwrap();
        let high = scheduler
            .submit(8, "high", counting_job(1, Duration::ZERO))
            .unwrap();
        for id in [blocker, low, high] {
            scheduler
                .wait_terminal(id, Duration::from_secs(10))
                .unwrap();
        }
        let low_index = scheduler.status(low).unwrap().completion_index.unwrap();
        let high_index = scheduler.status(high).unwrap().completion_index.unwrap();
        assert!(
            high_index < low_index,
            "high priority ({high_index}) must complete before low ({low_index})"
        );
        scheduler.shutdown();
    }

    #[test]
    fn aging_prevents_starvation_of_low_priorities() {
        // A single worker with a steady stream of urgent jobs: the one
        // background job still completes before the stream runs dry.
        let scheduler = Scheduler::new(1, 64);
        let blocker = scheduler
            .submit(9, "blocker", counting_job(1, Duration::from_millis(100)))
            .unwrap();
        std::thread::sleep(Duration::from_millis(30));
        let background = scheduler
            .submit(0, "background", counting_job(1, Duration::ZERO))
            .unwrap();
        let urgent: Vec<JobId> = (0..12)
            .map(|_| {
                scheduler
                    .submit(9, "urgent", counting_job(1, Duration::ZERO))
                    .unwrap()
            })
            .collect();
        for id in urgent.iter().chain([&blocker, &background]) {
            scheduler
                .wait_terminal(*id, Duration::from_secs(10))
                .unwrap();
        }
        let background_index = scheduler
            .status(background)
            .unwrap()
            .completion_index
            .unwrap();
        let last_urgent_index = urgent
            .iter()
            .map(|&id| scheduler.status(id).unwrap().completion_index.unwrap())
            .max()
            .unwrap();
        assert!(
            background_index < last_urgent_index,
            "aging must let the background job ({background_index}) through \
             before the urgent stream ends ({last_urgent_index})"
        );
        scheduler.shutdown();
    }

    #[test]
    fn cancelling_a_running_job_frees_the_worker() {
        let scheduler = Scheduler::new(1, 16);
        // A job that runs until cancelled.
        let sticky = scheduler
            .submit(
                5,
                "sticky",
                JobWork {
                    chunks: 1,
                    run_chunk: Box::new(|_, cancel| {
                        while !cancel.is_cancelled() {
                            std::thread::yield_now();
                        }
                        Ok(ChunkOutput::Body(String::new()))
                    }),
                    finish: Box::new(|_| Ok("done".to_string())),
                },
            )
            .unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let queued = scheduler
            .submit(5, "next", counting_job(1, Duration::ZERO))
            .unwrap();
        assert!(scheduler.cancel(sticky));
        let snapshot = scheduler
            .wait_terminal(sticky, Duration::from_secs(10))
            .expect("cancellation settles");
        assert_eq!(snapshot.state, JobState::Cancelled);
        // The freed worker picks the queued job up.
        let snapshot = scheduler
            .wait_terminal(queued, Duration::from_secs(10))
            .expect("queued job runs after the cancel");
        assert_eq!(snapshot.state, JobState::Completed);
        // Cancelling a terminal job is a no-op.
        assert!(!scheduler.cancel(sticky));
        assert_eq!(scheduler.stats().cancelled, 1);
        scheduler.shutdown();
    }

    #[test]
    fn failed_chunks_fail_the_job_and_stop_siblings() {
        let attempts = Arc::new(AtomicUsize::new(0));
        let scheduler = Scheduler::new(2, 16);
        let counter = Arc::clone(&attempts);
        let id = scheduler
            .submit(
                5,
                "failing",
                JobWork {
                    chunks: 8,
                    run_chunk: Box::new(move |i, _| {
                        counter.fetch_add(1, Ordering::Relaxed);
                        if i == 0 {
                            Err("chunk 0 exploded".to_string())
                        } else {
                            std::thread::sleep(Duration::from_millis(10));
                            Ok(ChunkOutput::Body(String::new()))
                        }
                    }),
                    finish: Box::new(|_| Ok(String::new())),
                },
            )
            .unwrap();
        let snapshot = scheduler
            .wait_terminal(id, Duration::from_secs(10))
            .expect("failure settles");
        assert_eq!(snapshot.state, JobState::Failed);
        assert!(snapshot.error.as_deref().unwrap().contains("chunk 0"));
        scheduler.shutdown();
    }

    #[test]
    fn drain_finishes_quick_jobs_and_cancels_stragglers() {
        let scheduler = Scheduler::new(2, 16);
        let quick = scheduler
            .submit(5, "quick", counting_job(2, Duration::ZERO))
            .unwrap();
        let sticky = scheduler
            .submit(
                5,
                "sticky",
                JobWork {
                    chunks: 1,
                    run_chunk: Box::new(|_, cancel| {
                        while !cancel.is_cancelled() {
                            std::thread::yield_now();
                        }
                        Ok(ChunkOutput::Body(String::new()))
                    }),
                    finish: Box::new(|_| Ok(String::new())),
                },
            )
            .unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let report = scheduler.drain(Duration::from_millis(200));
        assert!(report.finished >= 1);
        assert_eq!(report.cancelled, 1);
        assert_eq!(scheduler.status(quick).unwrap().state, JobState::Completed);
        assert_eq!(scheduler.status(sticky).unwrap().state, JobState::Cancelled);
        // Draining rejects new submissions.
        assert_eq!(
            scheduler
                .submit(5, "late", counting_job(1, Duration::ZERO))
                .unwrap_err(),
            SubmitError::Draining
        );
        scheduler.shutdown();
    }

    #[test]
    fn terminal_jobs_are_retained_boundedly() {
        let scheduler = Scheduler::new(2, 2048);
        let total = TERMINAL_RETENTION + 50;
        let ids: Vec<JobId> = (0..total)
            .map(|_| {
                scheduler
                    .submit(5, "tiny", counting_job(1, Duration::ZERO))
                    .unwrap()
            })
            .collect();
        // Early jobs may already be evicted by the time they would be
        // polled, so wait on the aggregate counter instead.
        let deadline = Instant::now() + Duration::from_secs(60);
        while scheduler.stats().completed < total as u64 {
            assert!(Instant::now() < deadline, "jobs did not all finish");
            std::thread::sleep(Duration::from_millis(10));
        }
        // The oldest settled jobs were forgotten; recent ones still answer.
        assert!(
            scheduler.status(ids[0]).is_none(),
            "oldest job should be evicted"
        );
        assert!(scheduler.status(*ids.last().unwrap()).is_some());
        // Counters survive eviction.
        assert_eq!(scheduler.stats().completed, total as u64);
        scheduler.shutdown();
    }

    #[test]
    fn submit_with_sees_the_job_id_and_telemetry_observes_the_wait() {
        let seen = Arc::new(Mutex::new(Vec::<(JobId, String)>::new()));
        let telemetry = SchedulerTelemetry {
            queue_wait_us: Arc::new(Histogram::new()),
            queue_depth: Arc::new(Gauge::default()),
            running_jobs: Arc::new(Gauge::default()),
            on_dequeue: {
                let seen = Arc::clone(&seen);
                Box::new(move |id, label, _wait| {
                    seen.lock().unwrap().push((id, label.to_string()));
                })
            },
        };
        let wait_hist = Arc::clone(&telemetry.queue_wait_us);
        let scheduler = Scheduler::with_telemetry(2, 16, Some(telemetry));
        let id = scheduler
            .submit_with(5, "traced", |id| JobWork {
                chunks: 1,
                run_chunk: Box::new(move |_, _| Ok(ChunkOutput::Body(format!("job={id}")))),
                finish: Box::new(|mut outputs| match outputs.remove(0) {
                    ChunkOutput::Body(s) => Ok(s),
                    ChunkOutput::Partial(_) => unreachable!(),
                }),
            })
            .unwrap();
        let snapshot = scheduler
            .wait_terminal(id, Duration::from_secs(10))
            .expect("job finishes");
        // The build closure captured the real job id before any chunk ran.
        assert_eq!(
            snapshot.result.as_deref(),
            Some(format!("job={id}").as_str())
        );
        assert_eq!(wait_hist.snapshot().count, 1);
        assert_eq!(
            seen.lock().unwrap().as_slice(),
            &[(id, "traced".to_string())]
        );
        scheduler.shutdown();
    }

    #[test]
    fn work_is_stolen_across_workers() {
        let scheduler = Scheduler::new(4, 16);
        // One job with many slow-ish chunks: the expanding worker cannot
        // keep them all; siblings must steal.
        let id = scheduler
            .submit(5, "wide", counting_job(32, Duration::from_millis(5)))
            .unwrap();
        scheduler
            .wait_terminal(id, Duration::from_secs(30))
            .expect("job finishes");
        assert!(
            scheduler.stats().steals > 0,
            "siblings should have stolen chunks: {:?}",
            scheduler.stats()
        );
        scheduler.shutdown();
    }
}
