//! Method + path routing with `:param` captures.
//!
//! [`Router`] is the embeddable dispatch table behind the service's
//! [`Server`](crate::Server): each route pairs a [`Method`] with a pattern
//! like `/jobs/:id` and a handler closure. Embedders can mount their own
//! routes next to (or instead of) the stock service endpoints.

use std::net::SocketAddr;
use std::sync::Arc;

use crate::http::{Method, Request, Response};

/// The per-request context handed to route handlers.
#[derive(Debug)]
pub struct RouteContext<'a> {
    /// The parsed request.
    pub request: &'a Request,
    /// Pattern captures, in pattern order (`/jobs/:id` yields one capture).
    pub params: Vec<(&'a str, String)>,
    /// The peer's socket address (used for loopback-only endpoints).
    pub peer: SocketAddr,
}

impl RouteContext<'_> {
    /// Looks a capture up by its `:name`.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Returns a query-string parameter (`?wait=1` style) by name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        let query = self.request.query.as_deref()?;
        query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == name).then_some(v)
        })
    }
}

/// A route handler.
pub type Handler = Arc<dyn Fn(&RouteContext<'_>) -> Response + Send + Sync>;

struct Route {
    method: Method,
    segments: Vec<Segment>,
    handler: Handler,
}

enum Segment {
    Literal(String),
    Param(&'static str),
}

/// A method + pattern dispatch table.
///
/// # Example
///
/// ```
/// use service::{Method, Response, Router};
///
/// let mut router = Router::new();
/// router.route(Method::Get, "/ping/:name", |ctx| {
///     Response::json(200, format!("{{\"pong\":\"{}\"}}", ctx.param("name").unwrap()))
/// });
/// assert!(router.len() == 1);
/// ```
#[derive(Default)]
pub struct Router {
    routes: Vec<Route>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Router({} routes)", self.routes.len())
    }
}

impl Router {
    /// Creates an empty router.
    pub fn new() -> Router {
        Router::default()
    }

    /// Returns the number of mounted routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Returns `true` when no routes are mounted.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Mounts a handler for `method` + `pattern`.
    ///
    /// Pattern segments starting with `:` capture the corresponding path
    /// segment under that name (e.g. `/jobs/:id`).
    ///
    /// # Panics
    ///
    /// Panics if the pattern does not start with `/` — route tables are
    /// static program text, so this is a programming error, not input.
    pub fn route(
        &mut self,
        method: Method,
        pattern: &'static str,
        handler: impl Fn(&RouteContext<'_>) -> Response + Send + Sync + 'static,
    ) -> &mut Router {
        assert!(pattern.starts_with('/'), "route patterns start with `/`");
        let segments = pattern
            .split('/')
            .skip(1)
            .map(|segment| match segment.strip_prefix(':') {
                Some(name) => Segment::Param(name),
                None => Segment::Literal(segment.to_string()),
            })
            .collect();
        self.routes.push(Route {
            method,
            segments,
            handler: Arc::new(handler),
        });
        self
    }

    /// Dispatches a request: `404` for an unknown path, `405` when the path
    /// exists under a different method.
    pub fn dispatch(&self, request: &Request, peer: SocketAddr) -> Response {
        let path_segments: Vec<&str> = request.path.split('/').skip(1).collect();
        let mut path_matched = false;
        for route in &self.routes {
            let Some(params) = match_segments(&route.segments, &path_segments) else {
                continue;
            };
            path_matched = true;
            if route.method != request.method {
                continue;
            }
            let ctx = RouteContext {
                request,
                params,
                peer,
            };
            return (route.handler)(&ctx);
        }
        if path_matched {
            Response::json(
                405,
                format!(
                    "{{\"error\":\"method {} not allowed for {}\"}}",
                    request.method.as_str(),
                    request.path
                ),
            )
        } else {
            Response::json(
                404,
                format!("{{\"error\":\"no route for {}\"}}", request.path),
            )
        }
    }
}

fn match_segments<'p>(pattern: &'p [Segment], path: &[&str]) -> Option<Vec<(&'p str, String)>> {
    if pattern.len() != path.len() {
        return None;
    }
    let mut params = Vec::new();
    for (segment, &actual) in pattern.iter().zip(path) {
        match segment {
            Segment::Literal(expected) if expected == actual => {}
            Segment::Literal(_) => return None,
            Segment::Param(name) => params.push((*name, actual.to_string())),
        }
    }
    Some(params)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(method: Method, path: &str) -> Request {
        Request {
            method,
            path: path.to_string(),
            query: None,
            headers: Vec::new(),
            body: String::new(),
        }
    }

    fn peer() -> SocketAddr {
        "127.0.0.1:9".parse().unwrap()
    }

    fn test_router() -> Router {
        let mut router = Router::new();
        router.route(Method::Get, "/healthz", |_| Response::json(200, "{}"));
        router.route(Method::Get, "/jobs/:id", |ctx| {
            Response::json(200, format!("{{\"id\":\"{}\"}}", ctx.param("id").unwrap()))
        });
        router.route(Method::Delete, "/jobs/:id", |_| Response::json(200, "{}"));
        router
    }

    #[test]
    fn dispatches_literals_and_params() {
        let router = test_router();
        assert_eq!(
            router
                .dispatch(&request(Method::Get, "/healthz"), peer())
                .status,
            200
        );
        let got = router.dispatch(&request(Method::Get, "/jobs/42"), peer());
        assert_eq!(got.body, "{\"id\":\"42\"}");
    }

    #[test]
    fn unknown_path_is_404_wrong_method_is_405() {
        let router = test_router();
        assert_eq!(
            router
                .dispatch(&request(Method::Get, "/nope"), peer())
                .status,
            404
        );
        assert_eq!(
            router
                .dispatch(&request(Method::Post, "/healthz"), peer())
                .status,
            405
        );
        // Params don't match a shorter path.
        assert_eq!(
            router
                .dispatch(&request(Method::Get, "/jobs"), peer())
                .status,
            404
        );
    }

    #[test]
    fn query_params_parse() {
        let mut req = request(Method::Get, "/healthz");
        req.query = Some("wait=1&x=&flag".to_string());
        let ctx = RouteContext {
            request: &req,
            params: Vec::new(),
            peer: peer(),
        };
        assert_eq!(ctx.query_param("wait"), Some("1"));
        assert_eq!(ctx.query_param("x"), Some(""));
        assert_eq!(ctx.query_param("flag"), Some(""));
        assert_eq!(ctx.query_param("missing"), None);
    }
}
