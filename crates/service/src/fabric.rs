//! The distributed ensemble fabric: shard dispatch, retry and merge.
//!
//! A coordinator daemon configured with worker addresses splits each
//! `/simulate` ensemble into trial-range shards, posts every shard to a
//! worker as a `"range": [start, end)` request, and merges the returned
//! [`EnsemblePartial`](gillespie::EnsemblePartial) wire documents into the
//! final report. Three properties hold by construction:
//!
//! * **Byte determinism** — trial `i` runs with seed `master_seed + i` on
//!   whichever worker gets its shard, and partials merge through exact
//!   accumulators whose readout is a pure function of the per-trial value
//!   multiset. The merged `EnsembleReport` is therefore bit-identical to a
//!   single-process run for *any* cluster shape, shard size, worker
//!   failure or retry pattern.
//! * **Bounded memory** — a shard travels as outcome counts plus `O(1)`
//!   exact accumulators, never per-trial samples, so a million-trial job
//!   costs the coordinator one small document per shard regardless of
//!   trial count. Running statistics stream through a
//!   [`Moments`](gillespie::Moments) accumulator as shards land.
//! * **Fault tolerance** — a failed dispatch (dead worker, timeout, error
//!   status) retries on the next healthy worker with bounded doubling
//!   backoff; the worker registry's consecutive-failure counter steers
//!   round-robin away from dead workers until they answer again.
//!
//! Cache federation has two tiers: the coordinator's own
//! [`ResultCache`](crate::ResultCache) answers whole-job replays, and each
//! worker caches its shards under range-suffixed keys, so a re-sharded or
//! partially retried job reuses every shard the pool has seen before. The
//! per-tier hit/miss counters are exposed through `GET /fabric` and the
//! `fabric` section of `GET /metrics`.
//!
//! `/check` parameter sweeps ride the same machinery: each grid point is a
//! work unit dispatched to `/check` on a worker ([`Fabric::run_check`]),
//! retried and counted exactly like a simulate shard, with the per-point
//! verdict cached worker-side under the point's canonical key.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use gillespie::engine::CancelToken;
use gillespie::{EnsemblePartial, Moments};
use obs::log::{event, Level, Value};
use obs::trace::{span_id, Span, TraceContext, TraceSink};
use obs::MetricsRegistry;

use crate::api::{CheckPoint, SimulateRequest};
use crate::client::Client;
use crate::json::Json;
use crate::registry::{WorkerRegistry, WorkerSnapshot};

/// The request header a coordinator stamps on every shard dispatch so the
/// worker's spans attach to the coordinator's trace tree.
pub const TRACE_HEADER: &str = "x-stochsynth-trace";

/// Trace coordinates for one shard's dispatches: the sink spans are
/// recorded into, the owning trace, and the shard span every dispatch
/// attempt nests under. Purely observational — dispatch order, retries and
/// merges are identical with or without it.
#[derive(Clone)]
pub struct ShardTrace {
    /// Where dispatch spans are recorded.
    pub sink: Arc<TraceSink>,
    /// The coordinator's trace id (its job id, as text).
    pub trace_id: String,
    /// The shard span's id — the parent of every dispatch attempt span.
    pub parent: u64,
    /// The shard's chunk index, folded into dispatch span ids so attempts
    /// of different shards never collide.
    pub index: u64,
}

/// Configuration of a fabric coordinator.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Worker addresses to register at startup.
    pub workers: Vec<String>,
    /// Trials per shard. `0` sizes shards automatically (about four per
    /// worker). A fixed explicit value makes shard boundaries independent
    /// of the pool size, which maximises worker-cache reuse when the
    /// cluster shape changes between runs.
    pub shard_trials: u64,
    /// Dispatch attempts per shard before the job fails.
    pub max_attempts: u32,
    /// Initial retry backoff; doubles per attempt.
    pub backoff: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Per-shard HTTP I/O timeout.
    pub request_timeout: Duration,
    /// Per-address connect timeout (kept short so a dead worker costs
    /// little before the shard rebalances).
    pub connect_timeout: Duration,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            workers: Vec::new(),
            shard_trials: 0,
            max_attempts: 6,
            backoff: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            request_timeout: Duration::from_secs(600),
            connect_timeout: Duration::from_secs(2),
        }
    }
}

/// A point-in-time copy of the fabric counters. "Shard" counts every
/// dispatched work unit: simulate trial-range shards and `/check` grid
/// points alike.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricStats {
    /// Shards handed to workers (including retried dispatches).
    pub shards_dispatched: u64,
    /// Shards merged successfully.
    pub shards_completed: u64,
    /// Dispatches that had to be retried on another (or the same) worker.
    pub shard_retries: u64,
    /// Individual dispatch failures (connect, timeout, error status).
    pub worker_failures: u64,
    /// Shards a worker answered from its own result cache.
    pub remote_cache_hits: u64,
    /// Shards a worker had to compute.
    pub remote_cache_misses: u64,
}

/// The coordinator side of the distributed ensemble fabric.
#[derive(Debug)]
pub struct Fabric {
    registry: WorkerRegistry,
    config: FabricConfig,
    shards_dispatched: AtomicU64,
    shards_completed: AtomicU64,
    shard_retries: AtomicU64,
    worker_failures: AtomicU64,
    remote_cache_hits: AtomicU64,
    remote_cache_misses: AtomicU64,
    /// Running final-time statistics over every trial merged so far, fed
    /// by shard moments as they land — the streaming monitoring surface of
    /// long jobs (`GET /fabric` exposes it mid-flight).
    streamed: Mutex<Moments>,
    /// When set, per-worker round-trip histograms
    /// (`fabric_shard_rtt_us{worker="…"}`) are recorded here.
    metrics: Option<Arc<MetricsRegistry>>,
}

impl Fabric {
    /// Creates a fabric and registers the configured workers.
    pub fn new(config: FabricConfig) -> Fabric {
        let registry = WorkerRegistry::new();
        for addr in &config.workers {
            registry.register(addr);
        }
        Fabric {
            registry,
            config,
            shards_dispatched: AtomicU64::new(0),
            shards_completed: AtomicU64::new(0),
            shard_retries: AtomicU64::new(0),
            worker_failures: AtomicU64::new(0),
            remote_cache_hits: AtomicU64::new(0),
            remote_cache_misses: AtomicU64::new(0),
            streamed: Mutex::new(Moments::new()),
            metrics: None,
        }
    }

    /// Attaches a metrics registry; dispatches then record per-worker
    /// round-trip histograms into it.
    #[must_use]
    pub fn with_metrics(mut self, registry: Arc<MetricsRegistry>) -> Fabric {
        self.metrics = Some(registry);
        self
    }

    /// The worker registry (for `/fabric/workers` registration and tests).
    pub fn registry(&self) -> &WorkerRegistry {
        &self.registry
    }

    /// The configuration the fabric was built with.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Splits `trials` into shard ranges `[start, end)`.
    pub fn plan(&self, trials: u64) -> Vec<(u64, u64)> {
        let shard = if self.config.shard_trials > 0 {
            self.config.shard_trials
        } else {
            let workers = self.registry.len().max(1) as u64;
            trials.div_ceil(workers * 4)
        }
        .max(1);
        let mut ranges = Vec::with_capacity(trials.div_ceil(shard) as usize);
        let mut start = 0;
        while start < trials {
            let end = (start + shard).min(trials);
            ranges.push((start, end));
            start = end;
        }
        ranges
    }

    /// Runs one shard on the worker pool: dispatch, retry with bounded
    /// doubling backoff, rebalance onto surviving workers, and parse the
    /// returned partial.
    ///
    /// # Errors
    ///
    /// A message naming the shard and the last failure, once
    /// `max_attempts` dispatches failed or the job was cancelled.
    pub fn run_shard(
        &self,
        request: &SimulateRequest,
        range: (u64, u64),
        cancel: &CancelToken,
        trace: Option<&ShardTrace>,
    ) -> Result<EnsemblePartial, String> {
        let body = request.to_wire(range);
        let what = format!("shard [{}, {})", range.0, range.1);
        let partial = self.post_with_retry("/simulate", &body, &what, cancel, trace, |body| {
            let json = crate::json::parse(body)?;
            SimulateRequest::parse_partial(&json).map_err(|e| e.to_string())
        })?;
        self.streamed
            .lock()
            .expect("streamed moments lock")
            .merge(partial.time_moments());
        Ok(partial)
    }

    /// Runs one `/check` grid point on the worker pool, returning the
    /// worker's rendered verdict body verbatim (bodies travel opaquely so
    /// the sweep document stays byte-identical to a local solve). Shares
    /// the shard dispatch/retry machinery and counters — a point a worker
    /// answers from its cache counts as a remote cache hit, exactly like a
    /// replayed shard.
    ///
    /// # Errors
    ///
    /// A message naming the grid point and the last failure, once
    /// `max_attempts` dispatches failed or the job was cancelled.
    pub fn run_check(
        &self,
        point: &CheckPoint,
        index: usize,
        cancel: &CancelToken,
    ) -> Result<String, String> {
        let body = point.to_wire();
        let what = format!("check point {index}");
        self.post_with_retry("/check", &body, &what, cancel, None, |body| {
            // A worker that hit its wait timeout answers 200 with a job
            // *status* document; treat anything but a verdict as a failed
            // dispatch so the point retries rather than polluting the sweep.
            let json = crate::json::parse(body)?;
            match json.get("kind").and_then(|k| k.as_str("kind").ok()) {
                Some("check") => Ok(body.to_string()),
                _ => Err("worker answered without a check verdict".to_string()),
            }
        })
    }

    /// The shared dispatch driver: post `body` to `path` on the pool,
    /// retrying with bounded doubling backoff and rebalancing onto
    /// surviving workers; `parse` validates each answer (a parse failure
    /// counts as a worker failure and retries like any other).
    fn post_with_retry<T>(
        &self,
        path: &str,
        body: &str,
        what: &str,
        cancel: &CancelToken,
        trace: Option<&ShardTrace>,
        parse: impl Fn(&str) -> Result<T, String>,
    ) -> Result<T, String> {
        let mut backoff = self.config.backoff;
        let mut last_error = "no workers registered".to_string();
        for attempt in 0..self.config.max_attempts {
            if cancel.is_cancelled() {
                return Err("job cancelled".to_string());
            }
            if attempt > 0 {
                self.shard_retries.fetch_add(1, Ordering::Relaxed);
                event(
                    Level::Debug,
                    "service::fabric",
                    "retry",
                    &[
                        ("what", Value::str(what)),
                        ("attempt", Value::U64(u64::from(attempt))),
                        ("backoff_ms", Value::U64(backoff.as_millis() as u64)),
                        ("last_error", Value::str(&last_error)),
                    ],
                );
                sleep_cancellable(backoff, cancel);
                backoff = (backoff * 2).min(self.config.backoff_cap);
            }
            let Some(addr) = self.registry.next_worker() else {
                return Err("no workers registered".to_string());
            };
            self.shards_dispatched.fetch_add(1, Ordering::Relaxed);
            // The dispatch span id is computed *before* the call so the
            // worker can be told its parent through the trace header.
            let dispatch_span = trace.map(|t| {
                (
                    span_id(&t.trace_id, "dispatch", t.index * 1000 + u64::from(attempt)),
                    t.sink.now_us(),
                )
            });
            let started = Instant::now();
            let outcome = self
                .dispatch(&addr, path, body, trace.zip(dispatch_span))
                .and_then(|(body, hit)| parse(&body).map(|parsed| (parsed, hit)));
            let rtt = started.elapsed();
            let rtt_us = u64::try_from(rtt.as_micros()).unwrap_or(u64::MAX);
            if let Some(registry) = &self.metrics {
                registry
                    .histogram(&format!("fabric_shard_rtt_us{{worker=\"{addr}\"}}"))
                    .record(rtt_us);
            }
            if let (Some(t), Some((id, start_us))) = (trace, dispatch_span) {
                t.sink.record(Span {
                    trace_id: t.trace_id.clone(),
                    id,
                    parent: Some(t.parent),
                    name: "dispatch".to_string(),
                    start_us,
                    end_us: t.sink.now_us(),
                    attrs: vec![
                        ("worker".to_string(), addr.clone()),
                        ("attempt".to_string(), attempt.to_string()),
                        (
                            "outcome".to_string(),
                            if outcome.is_ok() { "ok" } else { "error" }.to_string(),
                        ),
                    ],
                });
            }
            event(
                Level::Trace,
                "service::fabric",
                "dispatch",
                &[
                    ("what", Value::str(what)),
                    ("worker", Value::str(&addr)),
                    ("attempt", Value::U64(u64::from(attempt))),
                    ("rtt_us", Value::U64(rtt_us)),
                    ("ok", Value::Bool(outcome.is_ok())),
                ],
            );
            match outcome {
                Ok((parsed, cache_hit)) => {
                    self.registry.record_success(&addr, cache_hit);
                    if cache_hit {
                        self.remote_cache_hits.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.remote_cache_misses.fetch_add(1, Ordering::Relaxed);
                    }
                    self.shards_completed.fetch_add(1, Ordering::Relaxed);
                    return Ok(parsed);
                }
                Err(error) => {
                    self.registry.record_failure(&addr);
                    self.worker_failures.fetch_add(1, Ordering::Relaxed);
                    last_error = format!("worker {addr}: {error}");
                }
            }
        }
        event(
            Level::Warn,
            "service::fabric",
            "dispatch_exhausted",
            &[
                ("what", Value::str(what)),
                ("attempts", Value::U64(u64::from(self.config.max_attempts))),
                ("last_error", Value::str(&last_error)),
            ],
        );
        Err(format!(
            "{what} failed after {} attempts: {last_error}",
            self.config.max_attempts
        ))
    }

    /// One dispatch: post the request (stamping the trace header when this
    /// hop is traced), check the status, report the body and whether the
    /// worker's cache answered it.
    fn dispatch(
        &self,
        addr: &str,
        path: &str,
        body: &str,
        hop: Option<(&ShardTrace, (u64, u64))>,
    ) -> Result<(String, bool), String> {
        let client = Client::new(addr)?
            .timeout(self.config.request_timeout)
            .connect_timeout(self.config.connect_timeout);
        let reply = match hop {
            Some((t, (dispatch_span, _))) => {
                let context = TraceContext {
                    trace_id: t.trace_id.clone(),
                    parent: dispatch_span,
                };
                client.post_with_headers(
                    path,
                    body,
                    &[(TRACE_HEADER, context.header_value().as_str())],
                )?
            }
            None => client.post(path, body)?,
        };
        if !reply.is_success() {
            return Err(format!("status {}: {}", reply.status, reply.body));
        }
        let cache_hit = reply.header("cache") == Some("hit");
        Ok((reply.body, cache_hit))
    }

    /// The fabric counters.
    pub fn stats(&self) -> FabricStats {
        FabricStats {
            shards_dispatched: self.shards_dispatched.load(Ordering::Relaxed),
            shards_completed: self.shards_completed.load(Ordering::Relaxed),
            shard_retries: self.shard_retries.load(Ordering::Relaxed),
            worker_failures: self.worker_failures.load(Ordering::Relaxed),
            remote_cache_hits: self.remote_cache_hits.load(Ordering::Relaxed),
            remote_cache_misses: self.remote_cache_misses.load(Ordering::Relaxed),
        }
    }

    /// Renders the fabric state (counters, streaming statistics, worker
    /// pool) — the body of `GET /fabric` and the `fabric` section of
    /// `GET /metrics`.
    pub fn render(&self) -> Json {
        let stats = self.stats();
        let streamed = self.streamed.lock().expect("streamed moments lock");
        let workers: Vec<Json> = self.registry.snapshot().iter().map(render_worker).collect();
        Json::object([
            ("shards_dispatched", Json::count(stats.shards_dispatched)),
            ("shards_completed", Json::count(stats.shards_completed)),
            ("shard_retries", Json::count(stats.shard_retries)),
            ("worker_failures", Json::count(stats.worker_failures)),
            ("remote_cache_hits", Json::count(stats.remote_cache_hits)),
            (
                "remote_cache_misses",
                Json::count(stats.remote_cache_misses),
            ),
            (
                "streaming",
                Json::object([
                    ("trials", Json::count(streamed.count())),
                    ("mean_final_time", Json::num(streamed.mean())),
                    ("final_time_variance", Json::num(streamed.variance())),
                ]),
            ),
            ("workers", Json::Array(workers)),
        ])
    }
}

fn render_worker(worker: &WorkerSnapshot) -> Json {
    Json::object([
        ("addr", Json::str(worker.addr.clone())),
        ("healthy", Json::Bool(worker.healthy)),
        (
            "consecutive_failures",
            Json::count(u64::from(worker.consecutive_failures)),
        ),
        ("dispatched", Json::count(worker.dispatched)),
        ("completed", Json::count(worker.completed)),
        ("failed", Json::count(worker.failed)),
        ("cache_hits", Json::count(worker.cache_hits)),
        ("cache_misses", Json::count(worker.cache_misses)),
    ])
}

/// Sleeps up to `total`, polling the cancel token every few milliseconds
/// so a cancelled job stops backing off promptly.
fn sleep_cancellable(total: Duration, cancel: &CancelToken) {
    let slice = Duration::from_millis(10);
    let mut remaining = total;
    while !remaining.is_zero() && !cancel.is_cancelled() {
        let step = remaining.min(slice);
        std::thread::sleep(step);
        remaining = remaining.saturating_sub(step);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_tiles_the_trial_range_exactly() {
        let fabric = Fabric::new(FabricConfig {
            shard_trials: 100,
            ..FabricConfig::default()
        });
        let plan = fabric.plan(250);
        assert_eq!(plan, vec![(0, 100), (100, 200), (200, 250)]);
        // Explicit shard size is independent of the worker pool.
        assert_eq!(fabric.plan(100), vec![(0, 100)]);
        assert_eq!(fabric.plan(1), vec![(0, 1)]);
    }

    #[test]
    fn auto_plan_scales_with_the_pool() {
        let fabric = Fabric::new(FabricConfig {
            workers: vec!["a".to_string(), "b".to_string()],
            ..FabricConfig::default()
        });
        let plan = fabric.plan(800);
        assert_eq!(plan.len(), 8, "plan: {plan:?}");
        assert_eq!(plan.first(), Some(&(0, 100)));
        assert_eq!(plan.last(), Some(&(700, 800)));
        // The tiling is gapless.
        for window in plan.windows(2) {
            assert_eq!(window[0].1, window[1].0);
        }
    }

    #[test]
    fn run_shard_without_workers_fails_fast() {
        let fabric = Fabric::new(FabricConfig::default());
        let body =
            crate::json::parse("{\"network\":\"x -> h @ 1\",\"initial\":{\"x\":1},\"trials\":10}")
                .unwrap();
        let request = SimulateRequest::parse(&body).unwrap();
        let err = fabric
            .run_shard(&request, (0, 10), &CancelToken::new(), None)
            .unwrap_err();
        assert!(err.contains("no workers"), "err: {err}");
    }

    #[test]
    fn cancelled_jobs_stop_dispatching() {
        let fabric = Fabric::new(FabricConfig {
            workers: vec!["127.0.0.1:1".to_string()],
            ..FabricConfig::default()
        });
        let body =
            crate::json::parse("{\"network\":\"x -> h @ 1\",\"initial\":{\"x\":1},\"trials\":10}")
                .unwrap();
        let request = SimulateRequest::parse(&body).unwrap();
        let token = CancelToken::new();
        token.cancel();
        let err = fabric
            .run_shard(&request, (0, 10), &token, None)
            .unwrap_err();
        assert!(err.contains("cancelled"), "err: {err}");
    }
}
