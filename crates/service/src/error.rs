//! The service's error type and its mapping onto HTTP status codes.

use std::error::Error;
use std::fmt;

/// Errors produced while handling a service request or running a job.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServiceError {
    /// The request body was not valid JSON or missed required fields.
    BadRequest {
        /// Description of the problem.
        message: String,
    },
    /// The referenced job does not exist.
    UnknownJob {
        /// The requested job id.
        id: u64,
    },
    /// The request conflicts with the job's current state (for example
    /// cancelling an already-finished job).
    Conflict {
        /// Description of the conflict.
        message: String,
    },
    /// The scheduler's bounded queue is at capacity; retry later.
    Busy {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The server is draining for shutdown.
    Unavailable {
        /// Description of why the request cannot be accepted right now.
        message: String,
    },
    /// The request is only allowed from the loopback interface.
    Forbidden {
        /// Description of the restriction.
        message: String,
    },
    /// The request body exceeded the configured size limit.
    PayloadTooLarge {
        /// The configured limit in bytes.
        limit: usize,
    },
    /// The job itself failed while running.
    JobFailed {
        /// The underlying failure rendered as text.
        message: String,
    },
}

impl ServiceError {
    /// The HTTP status code this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            ServiceError::BadRequest { .. } => 400,
            ServiceError::UnknownJob { .. } => 404,
            ServiceError::Conflict { .. } => 409,
            ServiceError::Busy { .. } => 429,
            ServiceError::Unavailable { .. } => 503,
            ServiceError::Forbidden { .. } => 403,
            ServiceError::PayloadTooLarge { .. } => 413,
            ServiceError::JobFailed { .. } => 500,
        }
    }

    /// Convenience constructor for [`ServiceError::BadRequest`].
    pub fn bad_request(message: impl Into<String>) -> ServiceError {
        ServiceError::BadRequest {
            message: message.into(),
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::BadRequest { message } => write!(f, "bad request: {message}"),
            ServiceError::UnknownJob { id } => write!(f, "unknown job {id}"),
            ServiceError::Conflict { message } => write!(f, "conflict: {message}"),
            ServiceError::Busy { capacity } => {
                write!(f, "job queue is at its capacity of {capacity}; retry later")
            }
            ServiceError::Unavailable { message } => write!(f, "unavailable: {message}"),
            ServiceError::Forbidden { message } => write!(f, "forbidden: {message}"),
            ServiceError::PayloadTooLarge { limit } => {
                write!(f, "request body exceeds the {limit}-byte limit")
            }
            ServiceError::JobFailed { message } => write!(f, "job failed: {message}"),
        }
    }
}

impl Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statuses_match_http_semantics() {
        assert_eq!(ServiceError::bad_request("x").status(), 400);
        assert_eq!(ServiceError::UnknownJob { id: 3 }.status(), 404);
        assert_eq!(
            ServiceError::Conflict {
                message: "done".into()
            }
            .status(),
            409
        );
        assert_eq!(ServiceError::Busy { capacity: 8 }.status(), 429);
        assert_eq!(
            ServiceError::Unavailable {
                message: "full".into()
            }
            .status(),
            503
        );
        assert_eq!(
            ServiceError::Forbidden {
                message: "loopback".into()
            }
            .status(),
            403
        );
        assert_eq!(ServiceError::PayloadTooLarge { limit: 10 }.status(), 413);
        assert_eq!(
            ServiceError::JobFailed {
                message: "boom".into()
            }
            .status(),
            500
        );
    }

    #[test]
    fn displays_are_informative() {
        let e = ServiceError::bad_request("missing `trials`");
        assert!(e.to_string().contains("missing `trials`"));
        assert!(!ServiceError::UnknownJob { id: 9 }.to_string().is_empty());
    }
}
