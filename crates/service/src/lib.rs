//! Simulation-as-a-service for the stochastic-synthesis engine.
//!
//! This crate turns the workspace's solvers into a network service: a
//! dependency-free HTTP/1.1 JSON server (std `TcpListener` only — the
//! sandbox has no crates.io access) exposing ensembles, exact CME analysis
//! and the paper's synthesis pipeline behind one API. It is the first
//! subsystem that composes **every** crate: `crn` parses wire-format
//! networks (with line+column errors), `gillespie` fans ensemble trials out
//! through the engine's deterministic range/merge machinery, `cme` answers
//! `/exact` and the model-checking endpoint `/check` (single verdicts or
//! parameter-sweep robustness landscapes, each grid point an independent
//! cached solve), and `synthesis`/`lambda` drive `/synthesize`.
//!
//! The three pillars:
//!
//! * **[`Scheduler`]** — a bounded work-stealing job scheduler. Jobs carry
//!   priorities (with an anti-starvation aging rule), cooperative
//!   cancellation down to single-trial granularity, and progress polling.
//!   Ensemble jobs split into chunk tasks that idle workers steal, and the
//!   chunks merge in trial order, so a report computed by any interleaving
//!   of workers is **bit-identical** to a single-threaded run.
//! * **[`ResultCache`]** — a content-addressed LRU cache keyed on
//!   `hash(model text, stepper, params, seed)`. Because the engine is
//!   deterministic for a fixed seed, whole simulation results are
//!   cacheable; replays are byte-identical and marked only by the
//!   `cache: hit` response header.
//! * **[`Server`]/[`Router`]** — an embeddable blocking HTTP server and
//!   route table; [`serve`] assembles the stock service, and the
//!   `stochsynthd`/`stochsynth-cli` binaries wrap it for operations.
//!
//! # Quickstart (in-process)
//!
//! ```
//! use service::{serve, Client, ServiceConfig};
//!
//! let handle = serve(ServiceConfig::default()).expect("bind");
//! let client = Client::new(handle.addr()).expect("client");
//! let reply = client
//!     .post(
//!         "/simulate",
//!         "{\"network\": \"x -> h @ 3\\nx -> t @ 1\",
//!           \"initial\": {\"x\": 1},
//!           \"trials\": 200, \"seed\": 7, \"wait\": true,
//!           \"classifier\": [
//!             {\"species\": \"h\", \"at_least\": 1, \"outcome\": \"heads\"},
//!             {\"species\": \"t\", \"at_least\": 1, \"outcome\": \"tails\"}]}",
//!     )
//!     .expect("round trip");
//! assert_eq!(reply.status, 200);
//! assert_eq!(reply.header("cache"), Some("miss"));
//! // The same request again is served from the cache, byte for byte.
//! # let again = client.post("/simulate", "{\"network\": \"x -> h @ 3\\nx -> t @ 1\",
//! #   \"initial\": {\"x\": 1}, \"trials\": 200, \"seed\": 7, \"wait\": true,
//! #   \"classifier\": [{\"species\": \"h\", \"at_least\": 1, \"outcome\": \"heads\"},
//! #   {\"species\": \"t\", \"at_least\": 1, \"outcome\": \"tails\"}]}").expect("round trip");
//! # assert_eq!(again.header("cache"), Some("hit"));
//! # assert_eq!(again.body, reply.body);
//! handle.shutdown(std::time::Duration::from_secs(1));
//! handle.join();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
mod app;
mod cache;
mod error;
mod fabric;
pub mod http;
pub mod json;
mod metrics;
mod registry;
mod router;
mod scheduler;
mod server;

mod client;

pub use app::{serve, App, ServiceConfig, ServiceHandle};
pub use cache::{CacheStats, ResultCache};
pub use client::{Client, HttpReply};
pub use error::ServiceError;
pub use fabric::{Fabric, FabricConfig, FabricStats, ShardTrace, TRACE_HEADER};
pub use http::{Method, Request, Response};
pub use metrics::{EndpointMetrics, Metrics};
pub use registry::{WorkerRegistry, WorkerSnapshot};
pub use router::{Handler, RouteContext, Router};
pub use scheduler::{
    ChunkOutput, DrainReport, JobId, JobSnapshot, JobState, JobWork, Scheduler, SchedulerStats,
    SchedulerTelemetry, SubmitError,
};
pub use server::{ResponseObserver, Server, ServerHandle};
