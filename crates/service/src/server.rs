//! The blocking HTTP server: accept loop + thread-per-connection handling.
//!
//! [`Server`] is deliberately small and embeddable: bind a [`Router`] to an
//! address, call [`Server::start`], and every accepted connection is served
//! on its own thread with keep-alive. Connection threads are bounded by
//! the read timeout (an idle keep-alive connection closes itself), and the
//! accept loop exits when the configured stop predicate turns true — the
//! app's `/shutdown` handler raises its flag and self-connects to wake the
//! loop.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::http::{read_request, ReadError, Response};
use crate::router::Router;

/// How long an idle keep-alive connection is held open.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

type StopPredicate = Arc<dyn Fn() -> bool + Send + Sync>;

/// Invoked once per response written — including framing-level `400`/`413`
/// rejections and router-level `404`/`405`s that never reach a handler —
/// so response counters can be complete.
pub type ResponseObserver = Arc<dyn Fn(&Response) + Send + Sync>;

/// A bound-but-not-yet-started HTTP server.
pub struct Server {
    listener: TcpListener,
    router: Arc<Router>,
    max_body: usize,
    stop: StopPredicate,
    observer: Option<ResponseObserver>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Server({:?})", self.listener.local_addr())
    }
}

impl Server {
    /// Binds `addr` (port 0 picks an ephemeral port) and prepares to serve
    /// `router`, rejecting request bodies beyond `max_body` bytes.
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    pub fn bind(addr: &str, router: Router, max_body: usize) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            router: Arc::new(router),
            max_body,
            stop: Arc::new(|| false),
            observer: None,
        })
    }

    /// Installs a [`ResponseObserver`] called for every response written.
    pub fn observe(mut self, observer: impl Fn(&Response) + Send + Sync + 'static) -> Server {
        self.observer = Some(Arc::new(observer));
        self
    }

    /// Installs a stop predicate: the accept loop exits as soon as it
    /// observes `true` (it is checked once per accepted connection, so
    /// raisers should self-connect to force a prompt check).
    pub fn stop_when(mut self, stop: impl Fn() -> bool + Send + Sync + 'static) -> Server {
        self.stop = Arc::new(stop);
        self
    }

    /// The bound address.
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` socket errors.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Starts the accept loop on a background thread.
    pub fn start(self) -> ServerHandle {
        let addr = self
            .listener
            .local_addr()
            .expect("bound listener has an address");
        let active = Arc::new(AtomicUsize::new(0));
        let accept_active = Arc::clone(&active);
        let accept = std::thread::Builder::new()
            .name("stochsynth-accept".to_string())
            .spawn(move || {
                for stream in self.listener.incoming() {
                    if (self.stop)() {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let router = Arc::clone(&self.router);
                    let observer = self.observer.clone();
                    let max_body = self.max_body;
                    let active = Arc::clone(&accept_active);
                    active.fetch_add(1, Ordering::SeqCst);
                    let _ = std::thread::Builder::new()
                        .name("stochsynth-conn".to_string())
                        .spawn(move || {
                            serve_connection(stream, &router, observer.as_ref(), max_body);
                            active.fetch_sub(1, Ordering::SeqCst);
                        });
                }
            })
            .expect("spawn accept thread");
        ServerHandle {
            addr,
            active,
            accept: Some(accept),
        }
    }
}

/// A running server.
pub struct ServerHandle {
    addr: SocketAddr,
    active: Arc<AtomicUsize>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ServerHandle({})", self.addr)
    }
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Wakes the accept loop so it re-checks its stop predicate. Callers
    /// flip the predicate's state first (see
    /// [`ServiceHandle::shutdown`](crate::ServiceHandle::shutdown)).
    pub fn stop(&self) {
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }

    /// Joins the accept thread and waits briefly for in-flight connection
    /// threads to retire.
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Connection threads are short-lived (bounded by the read timeout);
        // give responses in flight a moment to finish writing.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while self.active.load(Ordering::SeqCst) > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

/// Serves one connection: request → dispatch → response, looping for
/// keep-alive until the peer closes, errors, or asks to close.
fn serve_connection(
    stream: TcpStream,
    router: &Router,
    observer: Option<&ResponseObserver>,
    max_body: usize,
) {
    let Ok(peer) = stream.peer_addr() else { return };
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut write_half = write_half;
    let mut reader = BufReader::new(stream);
    let mut send = |response: Response, close: bool| -> std::io::Result<()> {
        if let Some(observer) = observer {
            observer(&response);
        }
        response.write_to(&mut write_half, close)
    };
    loop {
        match read_request(&mut reader, max_body) {
            Ok(request) => {
                let close = request.wants_close();
                let response = router.dispatch(&request, peer);
                if send(response, close).is_err() || close {
                    return;
                }
            }
            Err(ReadError::Closed) | Err(ReadError::Io(_)) => return,
            Err(ReadError::TooLarge { limit }) => {
                let _ = send(
                    Response::json(
                        413,
                        format!("{{\"error\":\"request body exceeds {limit} bytes\"}}"),
                    ),
                    true,
                );
                return;
            }
            Err(ReadError::Malformed(message)) => {
                let _ = send(
                    Response::json(
                        400,
                        format!(
                            "{{\"error\":\"malformed request: {}\"}}",
                            message.replace('"', "'")
                        ),
                    ),
                    true,
                );
                return;
            }
        }
    }
}
