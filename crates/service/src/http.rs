//! Minimal HTTP/1.1 message framing over `std::net` streams.
//!
//! This is deliberately not a general web server: it implements exactly the
//! subset the service needs — request-line + header parsing,
//! `Content-Length`-framed bodies, keep-alive connections and response
//! serialisation — on blocking `TcpStream`s with no dependencies. Chunked
//! transfer encoding, multipart bodies and TLS are out of scope; callers
//! that need them terminate HTTP in front of the service.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// The HTTP methods the service routes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// `GET`
    Get,
    /// `POST`
    Post,
    /// `DELETE`
    Delete,
}

impl Method {
    /// Parses a request-line method token.
    pub fn parse(token: &str) -> Option<Method> {
        match token {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            "DELETE" => Some(Method::Delete),
            _ => None,
        }
    }

    /// The canonical token.
    pub fn as_str(&self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Delete => "DELETE",
        }
    }
}

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The request method.
    pub method: Method,
    /// The request path, without query string.
    pub path: String,
    /// The raw query string (text after `?`), if any.
    pub query: Option<String>,
    /// Header `(name, value)` pairs; names are lower-cased at parse time.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: String,
}

impl Request {
    /// Looks a header up by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Returns `true` when the client asked for the connection to close.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why reading a request failed.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection cleanly before a request started.
    Closed,
    /// The bytes on the wire were not a well-formed HTTP/1.1 request.
    Malformed(String),
    /// The declared body length exceeds the configured limit.
    TooLarge {
        /// The configured limit in bytes.
        limit: usize,
    },
    /// An underlying socket error (including read timeouts).
    Io(std::io::Error),
}

/// Reads one request from the connection.
///
/// # Errors
///
/// [`ReadError::Closed`] on clean EOF before any request bytes,
/// [`ReadError::Malformed`] on framing errors, [`ReadError::TooLarge`] when
/// the declared `Content-Length` exceeds `max_body`, and [`ReadError::Io`]
/// for socket failures.
pub fn read_request(
    reader: &mut BufReader<TcpStream>,
    max_body: usize,
) -> Result<Request, ReadError> {
    let request_line = read_line(reader)?;
    if request_line.is_empty() {
        return Err(ReadError::Closed);
    }
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .and_then(Method::parse)
        .ok_or_else(|| ReadError::Malformed(format!("unsupported method in `{request_line}`")))?;
    let target = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("missing request target".to_string()))?;
    let version = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("missing HTTP version".to_string()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!(
            "unsupported version `{version}`"
        )));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };

    let mut headers = Vec::new();
    let mut declared_length: Option<usize> = None;
    loop {
        if headers.len() >= MAX_HEADERS {
            return Err(ReadError::Malformed(format!(
                "more than {MAX_HEADERS} headers"
            )));
        }
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ReadError::Malformed(format!("malformed header `{line}`")))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            let parsed: usize = value
                .parse()
                .map_err(|_| ReadError::Malformed(format!("bad content-length `{value}`")))?;
            // Duplicate `Content-Length` headers with different values are
            // the classic request-smuggling vector: a front proxy and this
            // server disagreeing on which one wins desynchronises the
            // connection. RFC 7230 §3.3.2 lets identical repeats collapse;
            // anything else is rejected, never silently last-write-wins.
            match declared_length {
                Some(previous) if previous != parsed => {
                    return Err(ReadError::Malformed(format!(
                        "conflicting content-length headers ({previous} vs {parsed})"
                    )));
                }
                _ => declared_length = Some(parsed),
            }
        }
        headers.push((name, value));
    }
    let content_length = declared_length.unwrap_or(0);
    if content_length > max_body {
        return Err(ReadError::TooLarge { limit: max_body });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(ReadError::Io)?;
    let body = String::from_utf8(body)
        .map_err(|_| ReadError::Malformed("request body is not UTF-8".to_string()))?;

    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// Request/header lines past 8 KiB are hostile input, not HTTP.
const MAX_LINE_BYTES: usize = 8192;

/// A header section with more entries than this is hostile input.
const MAX_HEADERS: usize = 128;

/// Reads one CRLF-terminated line, enforcing [`MAX_LINE_BYTES`] *while*
/// reading — an attacker streaming an endless unterminated line is cut off
/// at the cap instead of growing a buffer without bound. Shared with the
/// client, which needs the same discipline against hostile *servers*.
pub(crate) fn read_line<R: BufRead>(reader: &mut R) -> Result<String, ReadError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buffer = reader.fill_buf().map_err(ReadError::Io)?;
        if buffer.is_empty() {
            break; // EOF: return whatever arrived (empty = clean close).
        }
        let newline = buffer.iter().position(|&b| b == b'\n');
        let take = newline.map_or(buffer.len(), |i| i + 1);
        if line.len() + take > MAX_LINE_BYTES {
            return Err(ReadError::Malformed("header line too long".to_string()));
        }
        line.extend_from_slice(&buffer[..take]);
        reader.consume(take);
        if newline.is_some() {
            break;
        }
    }
    while line.last().is_some_and(|&b| b == b'\n' || b == b'\r') {
        line.pop();
    }
    String::from_utf8(line)
        .map_err(|_| ReadError::Malformed("header line is not UTF-8".to_string()))
}

/// One HTTP response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// The HTTP status code.
    pub status: u16,
    /// Extra header `(name, value)` pairs beyond the framing headers.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: String,
}

impl Response {
    /// Builds a JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Builds a plain-text response with the given status (used by the
    /// Prometheus-style `/metrics?format=text` exposition).
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: vec![(
                "content-type".to_string(),
                "text/plain; charset=utf-8".to_string(),
            )],
            body: body.into(),
        }
    }

    /// Adds a header.
    pub fn header(mut self, name: impl Into<String>, value: impl Into<String>) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Looks a response header up by (case-insensitive) name.
    pub fn header_value(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Serialises the response onto `stream`.
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn write_to(&self, stream: &mut TcpStream, close: bool) -> std::io::Result<()> {
        // `application/json` is the protocol default; a response that set
        // its own `content-type` header (the text metrics exposition)
        // overrides it instead of sending two.
        let mut out = format!(
            "HTTP/1.1 {} {}\r\ncontent-length: {}\r\n",
            self.status,
            status_text(self.status),
            self.body.len()
        );
        if self.header_value("content-type").is_none() {
            out.push_str("content-type: application/json\r\n");
        }
        for (name, value) in &self.headers {
            out.push_str(name);
            out.push_str(": ");
            out.push_str(value);
            out.push_str("\r\n");
        }
        out.push_str(if close {
            "connection: close\r\n\r\n"
        } else {
            "connection: keep-alive\r\n\r\n"
        });
        out.push_str(&self.body);
        stream.write_all(out.as_bytes())?;
        stream.flush()
    }
}

/// The reason phrase for the status codes the service emits.
fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Round-trips one request/response pair over a real socket.
    fn exchange(raw_request: &str, max_body: usize) -> Result<Request, ReadError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw_request.to_string();
        let client = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            // Ignore write errors: the server may cut hostile input off
            // before the client finishes sending.
            let _ = stream.write_all(raw.as_bytes());
            let _ = stream.flush();
        });
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream);
        let result = read_request(&mut reader, max_body);
        client.join().unwrap();
        result
    }

    #[test]
    fn parses_a_post_with_body() {
        let request = exchange(
            "POST /simulate?wait=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}",
            1024,
        )
        .unwrap();
        assert_eq!(request.method, Method::Post);
        assert_eq!(request.path, "/simulate");
        assert_eq!(request.query.as_deref(), Some("wait=1"));
        assert_eq!(request.body, "{\"a\":1}");
        assert_eq!(request.header("host"), Some("x"));
        assert_eq!(request.header("HOST"), Some("x"));
        assert!(!request.wants_close());
    }

    #[test]
    fn rejects_oversized_bodies() {
        let err = exchange("POST /x HTTP/1.1\r\nContent-Length: 100\r\n\r\n", 10).unwrap_err();
        assert!(matches!(err, ReadError::TooLarge { limit: 10 }));
    }

    #[test]
    fn unterminated_lines_are_cut_off_at_the_cap() {
        // 64 KiB with no newline: rejected once the cap is hit, not
        // buffered indefinitely.
        let flood = "G".repeat(64 * 1024);
        let err = exchange(&flood, 1024).unwrap_err();
        assert!(matches!(err, ReadError::Malformed(m) if m.contains("too long")));
    }

    #[test]
    fn rejects_unbounded_header_sections() {
        let mut raw = String::from("GET /x HTTP/1.1\r\n");
        for i in 0..200 {
            raw.push_str(&format!("x-h{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        let err = exchange(&raw, 1024).unwrap_err();
        assert!(matches!(err, ReadError::Malformed(m) if m.contains("headers")));
    }

    #[test]
    fn rejects_conflicting_duplicate_content_lengths() {
        // Smuggling hygiene: two different lengths must kill the request…
        let err = exchange(
            "POST /x HTTP/1.1\r\nContent-Length: 7\r\nContent-Length: 4\r\n\r\n{\"a\":1}",
            1024,
        )
        .unwrap_err();
        assert!(matches!(err, ReadError::Malformed(m) if m.contains("conflicting")));
        // …while identical repeats collapse per RFC 7230 §3.3.2.
        let request = exchange(
            "POST /x HTTP/1.1\r\nContent-Length: 7\r\nContent-Length: 7\r\n\r\n{\"a\":1}",
            1024,
        )
        .unwrap();
        assert_eq!(request.body, "{\"a\":1}");
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(matches!(
            exchange("NOPE /x HTTP/1.1\r\n\r\n", 10).unwrap_err(),
            ReadError::Malformed(_)
        ));
        assert!(matches!(
            exchange("GET /x SPDY/9\r\n\r\n", 10).unwrap_err(),
            ReadError::Malformed(_)
        ));
    }

    #[test]
    fn response_serialises_with_headers() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            Response::json(200, "{\"ok\":true}")
                .header("cache", "hit")
                .write_to(&mut stream, true)
                .unwrap();
        });
        let mut client = TcpStream::connect(addr).unwrap();
        let mut text = String::new();
        client.read_to_string(&mut text).unwrap();
        server.join().unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("cache: hit\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("content-type: application/json\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn explicit_content_type_overrides_the_json_default() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            Response::text(200, "a 1\n")
                .write_to(&mut stream, true)
                .unwrap();
        });
        let mut client = TcpStream::connect(addr).unwrap();
        let mut text = String::new();
        client.read_to_string(&mut text).unwrap();
        server.join().unwrap();
        assert!(text.contains("content-type: text/plain; charset=utf-8\r\n"));
        assert!(!text.contains("application/json"), "{text}");
        assert!(text.ends_with("a 1\n"));
    }
}
