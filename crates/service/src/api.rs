//! Request parsing, canonical cache keys and response rendering.
//!
//! Every endpoint's request is parsed into a typed struct up front
//! (validation errors become `400`s before any work is scheduled), reduced
//! to a *canonical key string* for the result cache, and executed against
//! the workspace crates. Canonicalisation goes through the parsed form —
//! `crn::Crn::to_text`, species resolved to ids, fields in a fixed order —
//! so two requests that differ only in whitespace, key order or comments
//! hash to the same result.

use cme::{Checker, FirstPassage, PopulationBounds, StateSpace};
use crn::{Crn, State};
use gillespie::{
    ClassifierReport, EnsembleOptions, EnsemblePartial, EnsemblePartialParts, EnsembleReport,
    SimulationOptions, SpeciesThresholdClassifier, StepperKind, StopCondition,
};
use numerics::LogLinearFit;
use synthesis::{LogLinearSynthesizer, SynthesizedResponse};

use crate::error::ServiceError;
use crate::json::Json;

/// Default hard event limit per trajectory; a safety net against networks
/// that never satisfy their stop condition.
pub const DEFAULT_MAX_EVENTS: u64 = 10_000_000;

/// Default priority of submitted jobs (mid-scale).
pub const DEFAULT_PRIORITY: u8 = 4;

fn bad(message: impl Into<String>) -> ServiceError {
    ServiceError::bad_request(message)
}

/// A parsed `POST /simulate` request.
#[derive(Debug, Clone)]
pub struct SimulateRequest {
    /// The parsed network.
    pub crn: Crn,
    /// The initial state.
    pub initial: State,
    /// Which stepper the request asked for (possibly [`StepperKind::Auto`]).
    pub method: StepperKind,
    /// The concrete stepper the trials actually run with. Equal to `method`
    /// unless `method` is `auto`, in which case the portfolio classifier
    /// resolved it at parse time — once per request, so every scheduled
    /// chunk runs the same kind and the cache key is stable.
    pub resolved: StepperKind,
    /// The classifier's feature report; present only for `auto` requests.
    pub classifier_report: Option<ClassifierReport>,
    /// Number of Monte-Carlo trials.
    pub trials: u64,
    /// Master seed (trial `i` uses `seed + i`). Defaults to 0 so every
    /// request is deterministic — and therefore cacheable.
    pub seed: u64,
    /// Per-trajectory stop condition.
    pub stop: StopCondition,
    /// Hard per-trajectory event limit.
    pub max_events: u64,
    /// Outcome classification rules `(species, threshold, outcome)`.
    pub rules: Vec<(String, u64, String)>,
    /// Scheduling priority (transport-level; not part of the cache key).
    pub priority: u8,
    /// Whether the response should block until the job finishes.
    pub wait: bool,
    /// When present, run only trials `range.0..range.1` and answer with an
    /// [`EnsemblePartial`](gillespie::EnsemblePartial) wire document instead
    /// of a full report. This is how a fabric coordinator shards an
    /// ensemble across workers.
    pub range: Option<(u64, u64)>,
}

impl SimulateRequest {
    /// Parses and validates the request body.
    ///
    /// # Errors
    ///
    /// [`ServiceError::BadRequest`] naming the offending field; network
    /// parse errors include the line *and column* from [`crn::parse_network`].
    pub fn parse(body: &Json) -> Result<SimulateRequest, ServiceError> {
        let crn = parse_network_field(body)?;
        let initial = parse_initial(body, &crn)?;
        let method = match body.get("method") {
            None => StepperKind::Direct,
            Some(value) => parse_method(value.as_str("method").map_err(bad)?)?,
        };
        let trials = body
            .get("trials")
            .ok_or_else(|| bad("missing `trials`"))?
            .as_u64("trials")
            .map_err(bad)?;
        if trials == 0 {
            return Err(bad("`trials` must be positive"));
        }
        let seed = opt_u64(body, "seed")?.unwrap_or(0);
        let max_events = opt_u64(body, "max_events")?.unwrap_or(DEFAULT_MAX_EVENTS);
        let stop = match body.get("stop") {
            None => StopCondition::Exhaustion,
            Some(value) => parse_stop(value, &crn)?,
        };
        let mut rules = Vec::new();
        if let Some(value) = body.get("classifier") {
            for (i, rule) in value
                .as_array("classifier")
                .map_err(bad)?
                .iter()
                .enumerate()
            {
                let what = format!("classifier[{i}]");
                let species = rule
                    .get("species")
                    .ok_or_else(|| bad(format!("{what} missing `species`")))?
                    .as_str(&what)
                    .map_err(bad)?
                    .to_string();
                if crn.species_id(&species).is_none() {
                    return Err(bad(format!("{what}: unknown species `{species}`")));
                }
                let threshold = rule
                    .get("at_least")
                    .ok_or_else(|| bad(format!("{what} missing `at_least`")))?
                    .as_u64(&what)
                    .map_err(bad)?;
                let outcome = rule
                    .get("outcome")
                    .ok_or_else(|| bad(format!("{what} missing `outcome`")))?
                    .as_str(&what)
                    .map_err(bad)?
                    .to_string();
                rules.push((species, threshold, outcome));
            }
        }
        let priority = parse_priority(body)?;
        let wait = opt_bool(body, "wait")?.unwrap_or(false);
        let range = match body.get("range") {
            None => None,
            Some(value) => {
                let (start, end) = parse_pair_u64(value, "range")?;
                if start >= end {
                    return Err(bad(format!("`range` [{start}, {end}) is empty")));
                }
                if end > trials {
                    return Err(bad(format!(
                        "`range` [{start}, {end}) exceeds trials={trials}"
                    )));
                }
                Some((start, end))
            }
        };
        let (resolved, classifier_report) = if method == StepperKind::Auto {
            let report = gillespie::classify(&crn, &initial);
            (report.resolved, Some(report))
        } else {
            (method, None)
        };
        Ok(SimulateRequest {
            crn,
            initial,
            method,
            resolved,
            classifier_report,
            trials,
            seed,
            stop,
            max_events,
            rules,
            priority,
            wait,
            range,
        })
    }

    /// The canonical cache key: every field that determines the result, in
    /// a fixed order, with the network in its canonical label-free text
    /// form.
    ///
    /// An `auto` request keys on `method=auto(<resolved>)`: the resolved
    /// kind is a pure function of the network and initial state (already
    /// part of the key), so replays are byte-identical — and the key stays
    /// distinct from an explicit request for the same concrete kind, whose
    /// response body differs (no `classifier_report`).
    pub fn cache_key(&self) -> String {
        let method = if self.method == StepperKind::Auto {
            format!("auto({})", self.resolved.name())
        } else {
            self.method.name().to_string()
        };
        let mut key = format!(
            "simulate|v1|{}|initial={}|method={}|trials={}|seed={}|stop={}|max_events={}|rules={}",
            canon_network(&self.crn),
            canon_state(&self.crn, &self.initial),
            method,
            self.trials,
            self.seed,
            canon_stop(&self.stop),
            self.max_events,
            self.rules
                .iter()
                .map(|(s, t, o)| format!("{s}>={t}=>{o}"))
                .collect::<Vec<_>>()
                .join(","),
        );
        if let Some((start, end)) = self.range {
            // Shard results are cached at shard granularity on the workers:
            // the same range of the same job replays byte-for-byte, while
            // different shardings of one job stay distinct entries.
            key.push_str(&format!("|range={start}..{end}"));
        }
        key
    }

    /// Builds the classifier from the parsed rules.
    ///
    /// # Errors
    ///
    /// Species were validated at parse time; this only fails if the network
    /// changed underneath, which cannot happen for an owned request.
    pub fn classifier(&self) -> Result<SpeciesThresholdClassifier, ServiceError> {
        let mut classifier = SpeciesThresholdClassifier::new();
        for (species, threshold, outcome) in &self.rules {
            classifier = classifier
                .rule_named(&self.crn, species, *threshold, outcome.as_str())
                .map_err(|e| bad(e.to_string()))?;
        }
        Ok(classifier)
    }

    /// The ensemble options equivalent to this request. Always carries the
    /// *resolved* concrete kind: resolution happened once at parse time, so
    /// chunked scheduling never re-runs the classifier.
    pub fn ensemble_options(&self) -> EnsembleOptions {
        EnsembleOptions::new()
            .trials(self.trials)
            .master_seed(self.seed)
            .method(self.resolved)
            .simulation(
                SimulationOptions::new()
                    .stop(self.stop.clone())
                    .max_events(self.max_events),
            )
    }

    /// Renders the result body for a finished ensemble. `method` echoes the
    /// request; `resolved_stepper` reports the concrete kind the trials ran
    /// with (they differ only for `auto` requests, which additionally get
    /// the classifier's feature report).
    pub fn render_report(&self, report: &EnsembleReport) -> String {
        let counts: Vec<(String, Json)> = report
            .counts
            .iter()
            .map(|c| (c.outcome.as_str().to_string(), Json::count(c.count)))
            .collect();
        let mut members = vec![
            ("kind", Json::str("simulate")),
            ("method", Json::str(self.method.name())),
            ("resolved_stepper", Json::str(report.method.name())),
        ];
        if let Some(classifier) = &self.classifier_report {
            members.push(("classifier_report", render_classifier(classifier)));
        }
        members.extend([
            ("trials", Json::count(report.trials)),
            ("seed", Json::count(report.master_seed)),
            (
                "report",
                Json::Object(vec![
                    ("counts".to_string(), Json::Object(counts)),
                    ("undecided".to_string(), Json::count(report.undecided)),
                    ("mean_events".to_string(), Json::num(report.mean_events)),
                    (
                        "events_variance".to_string(),
                        Json::num(report.events_variance),
                    ),
                    (
                        "mean_final_time".to_string(),
                        Json::num(report.mean_final_time),
                    ),
                    (
                        "final_time_variance".to_string(),
                        Json::num(report.final_time_variance),
                    ),
                ]),
            ),
        ]);
        Json::object(members).render()
    }

    /// Re-renders this request as the canonical JSON body a coordinator
    /// sends to a worker for one shard. The method is the *resolved*
    /// concrete kind — classification happened once on the coordinator, so
    /// every worker runs the same stepper without re-measuring the network —
    /// and `wait` is forced so the shard's partial comes back in-band.
    pub fn to_wire(&self, range: (u64, u64)) -> String {
        let initial: Vec<(String, Json)> = self
            .crn
            .species()
            .iter()
            .filter_map(|species| {
                let count = self.initial.count(species.id());
                (count > 0).then(|| (species.name().to_string(), Json::count(count)))
            })
            .collect();
        let classifier: Vec<Json> = self
            .rules
            .iter()
            .map(|(species, threshold, outcome)| {
                Json::object([
                    ("species", Json::str(species.clone())),
                    ("at_least", Json::count(*threshold)),
                    ("outcome", Json::str(outcome.clone())),
                ])
            })
            .collect();
        let mut members = vec![
            ("network", Json::str(self.crn.to_text())),
            ("initial", Json::Object(initial)),
            ("method", Json::str(self.resolved.name())),
            ("trials", Json::count(self.trials)),
            ("seed", Json::count(self.seed)),
            ("stop", render_stop(&self.crn, &self.stop)),
            ("max_events", Json::count(self.max_events)),
        ];
        if !classifier.is_empty() {
            members.push(("classifier", Json::Array(classifier)));
        }
        members.extend([
            ("wait", Json::Bool(true)),
            (
                "range",
                Json::Array(vec![Json::count(range.0), Json::count(range.1)]),
            ),
        ]);
        Json::object(members).render()
    }

    /// Renders a shard's partial as its wire document. Exact accumulators
    /// travel as canonical hex integers and `u128` squares as decimal
    /// strings, so [`parse_partial`](Self::parse_partial) reconstructs the
    /// partial bit-for-bit and the merged report cannot depend on which
    /// worker ran which shard.
    pub fn render_partial(partial: &EnsemblePartial) -> String {
        let parts = partial.to_parts();
        let counts: Vec<(String, Json)> = parts
            .counts
            .iter()
            .map(|(outcome, count)| (outcome.clone(), Json::count(*count)))
            .collect();
        Json::object([
            ("kind", Json::str("partial")),
            ("start", Json::count(parts.start)),
            ("end", Json::count(parts.end)),
            ("done", Json::count(parts.done)),
            ("counts", Json::Object(counts)),
            ("undecided", Json::count(parts.undecided)),
            ("total_events", Json::count(parts.total_events)),
            ("events_squared", Json::str(parts.events_squared)),
            ("time_sum", Json::str(parts.time_sum)),
            ("time_squared_sum", Json::str(parts.time_squared_sum)),
            (
                "time_moments",
                Json::Array(vec![
                    Json::count(parts.time_moments.0),
                    Json::num(parts.time_moments.1),
                    Json::num(parts.time_moments.2),
                ]),
            ),
        ])
        .render()
    }

    /// Parses a worker's partial document back into an
    /// [`EnsemblePartial`].
    ///
    /// # Errors
    ///
    /// [`ServiceError::BadRequest`] naming the offending field; range and
    /// encoding validation happens in
    /// [`EnsemblePartial::from_parts`].
    pub fn parse_partial(body: &Json) -> Result<EnsemblePartial, ServiceError> {
        if body.get("kind").and_then(|k| k.as_str("kind").ok()) != Some("partial") {
            return Err(bad("not a partial document (missing `kind: partial`)"));
        }
        let field = |key: &'static str| -> Result<&Json, ServiceError> {
            body.get(key)
                .ok_or_else(|| bad(format!("partial missing `{key}`")))
        };
        let num = |key: &'static str| -> Result<u64, ServiceError> {
            field(key)?.as_u64(key).map_err(bad)
        };
        let text = |key: &'static str| -> Result<String, ServiceError> {
            Ok(field(key)?.as_str(key).map_err(bad)?.to_string())
        };
        let mut counts = Vec::new();
        for (outcome, count) in field("counts")?.as_object("counts").map_err(bad)? {
            counts.push((outcome.clone(), count.as_u64("counts").map_err(bad)?));
        }
        let moments = field("time_moments")?
            .as_array("time_moments")
            .map_err(bad)?;
        if moments.len() != 3 {
            return Err(bad("`time_moments` must be a [count, mean, m2] triple"));
        }
        let parts = EnsemblePartialParts {
            start: num("start")?,
            end: num("end")?,
            done: num("done")?,
            counts,
            undecided: num("undecided")?,
            total_events: num("total_events")?,
            events_squared: text("events_squared")?,
            time_sum: text("time_sum")?,
            time_squared_sum: text("time_squared_sum")?,
            time_moments: (
                moments[0].as_u64("time_moments[0]").map_err(bad)?,
                moments[1].as_f64("time_moments[1]").map_err(bad)?,
                moments[2].as_f64("time_moments[2]").map_err(bad)?,
            ),
        };
        EnsemblePartial::from_parts(parts).map_err(|e| bad(e.to_string()))
    }
}

/// The analysis a `POST /exact` request asks for.
#[derive(Debug, Clone)]
pub enum ExactAnalysis {
    /// Exact absorption probabilities into outcome classes.
    FirstPassage {
        /// `(outcome name, species, threshold)` triples.
        outcomes: Vec<(String, String, u64)>,
    },
    /// The transient distribution at time `t`.
    Transient {
        /// The solution time.
        t: f64,
        /// Poisson-tail tolerance of the uniformization series.
        tolerance: f64,
        /// Species whose marginals/expectations the response reports.
        species: Vec<String>,
    },
}

/// A parsed `POST /exact` request.
#[derive(Debug, Clone)]
pub struct ExactRequest {
    /// The parsed network.
    pub crn: Crn,
    /// The initial state.
    pub initial: State,
    /// Population bounds for the state-space enumeration.
    pub bounds: PopulationBounds,
    /// Canonical rendering of the bounds (kept from parse time because
    /// [`PopulationBounds`] is consumed opaquely).
    bounds_canonical: String,
    /// The requested analysis.
    pub analysis: ExactAnalysis,
    /// Scheduling priority.
    pub priority: u8,
    /// Whether to block until done.
    pub wait: bool,
}

impl ExactRequest {
    /// Parses and validates the request body.
    ///
    /// # Errors
    ///
    /// [`ServiceError::BadRequest`] naming the offending field.
    pub fn parse(body: &Json) -> Result<ExactRequest, ServiceError> {
        let crn = parse_network_field(body)?;
        let initial = parse_initial(body, &crn)?;
        let (bounds, bounds_canonical) =
            parse_bounds(body.get("bounds").ok_or_else(|| bad("missing `bounds`"))?)?;
        let analysis_value = body
            .get("analysis")
            .ok_or_else(|| bad("missing `analysis`"))?;
        let kind = analysis_value
            .get("type")
            .ok_or_else(|| bad("`analysis` missing `type`"))?
            .as_str("analysis.type")
            .map_err(bad)?;
        let analysis = match kind {
            "first_passage" => {
                let mut outcomes = Vec::new();
                for (i, outcome) in analysis_value
                    .get("outcomes")
                    .ok_or_else(|| bad("first_passage analysis missing `outcomes`"))?
                    .as_array("analysis.outcomes")
                    .map_err(bad)?
                    .iter()
                    .enumerate()
                {
                    let what = format!("analysis.outcomes[{i}]");
                    let name = outcome
                        .get("name")
                        .ok_or_else(|| bad(format!("{what} missing `name`")))?
                        .as_str(&what)
                        .map_err(bad)?
                        .to_string();
                    let species = outcome
                        .get("species")
                        .ok_or_else(|| bad(format!("{what} missing `species`")))?
                        .as_str(&what)
                        .map_err(bad)?
                        .to_string();
                    if crn.species_id(&species).is_none() {
                        return Err(bad(format!("{what}: unknown species `{species}`")));
                    }
                    let at_least = outcome
                        .get("at_least")
                        .ok_or_else(|| bad(format!("{what} missing `at_least`")))?
                        .as_u64(&what)
                        .map_err(bad)?;
                    outcomes.push((name, species, at_least));
                }
                if outcomes.is_empty() {
                    return Err(bad("first_passage analysis needs at least one outcome"));
                }
                ExactAnalysis::FirstPassage { outcomes }
            }
            "transient" => {
                let t = analysis_value
                    .get("t")
                    .ok_or_else(|| bad("transient analysis missing `t`"))?
                    .as_f64("analysis.t")
                    .map_err(bad)?;
                let tolerance = match analysis_value.get("tolerance") {
                    None => 1e-12,
                    Some(value) => value.as_f64("analysis.tolerance").map_err(bad)?,
                };
                let mut species = Vec::new();
                if let Some(value) = analysis_value.get("species") {
                    for item in value.as_array("analysis.species").map_err(bad)? {
                        let name = item.as_str("analysis.species[]").map_err(bad)?;
                        if crn.species_id(name).is_none() {
                            return Err(bad(format!("analysis.species: unknown species `{name}`")));
                        }
                        species.push(name.to_string());
                    }
                }
                ExactAnalysis::Transient {
                    t,
                    tolerance,
                    species,
                }
            }
            other => {
                return Err(bad(format!(
                    "unknown analysis type `{other}` (expected `first_passage` or `transient`)"
                )))
            }
        };
        Ok(ExactRequest {
            crn,
            initial,
            bounds,
            bounds_canonical,
            analysis,
            priority: parse_priority(body)?,
            wait: opt_bool(body, "wait")?.unwrap_or(false),
        })
    }

    /// The canonical cache key.
    pub fn cache_key(&self) -> String {
        let analysis = match &self.analysis {
            ExactAnalysis::FirstPassage { outcomes } => format!(
                "first_passage:{}",
                outcomes
                    .iter()
                    .map(|(n, s, t)| format!("{n}={s}>={t}"))
                    .collect::<Vec<_>>()
                    .join(",")
            ),
            ExactAnalysis::Transient {
                t,
                tolerance,
                species,
            } => format!(
                "transient:t={t}:tol={tolerance}:species={}",
                species.join(",")
            ),
        };
        format!(
            "exact|v1|{}|initial={}|bounds={}|analysis={analysis}",
            canon_network(&self.crn),
            canon_state(&self.crn, &self.initial),
            self.bounds_canonical,
        )
    }

    /// Runs the analysis and renders the result body.
    ///
    /// # Errors
    ///
    /// [`ServiceError::JobFailed`] wrapping the CME error.
    pub fn execute(&self) -> Result<String, ServiceError> {
        let failed = |e: cme::CmeError| ServiceError::JobFailed {
            message: e.to_string(),
        };
        match &self.analysis {
            ExactAnalysis::FirstPassage { outcomes } => {
                let mut passage = FirstPassage::new(&self.crn);
                for (name, species, at_least) in outcomes {
                    passage = passage
                        .outcome_species_at_least(name.as_str(), species, *at_least)
                        .map_err(failed)?;
                }
                let distribution = passage.solve(&self.initial, &self.bounds).map_err(failed)?;
                let probabilities: Vec<(String, Json)> = distribution
                    .names()
                    .iter()
                    .zip(distribution.probabilities())
                    .map(|(name, &p)| (name.clone(), Json::num(p)))
                    .collect();
                Ok(Json::object([
                    ("kind", Json::str("exact")),
                    ("analysis", Json::str("first_passage")),
                    ("states", Json::count(distribution.states() as u64)),
                    ("probabilities", Json::Object(probabilities)),
                    ("undecided", Json::num(distribution.undecided())),
                    ("escaped", Json::num(distribution.escaped())),
                ])
                .render())
            }
            ExactAnalysis::Transient {
                t,
                tolerance,
                species,
            } => {
                let space = StateSpace::enumerate(&self.crn, &self.initial, &self.bounds)
                    .map_err(failed)?;
                let solution = space.transient(*t, *tolerance).map_err(failed)?;
                let mut expectations = Vec::new();
                let mut marginals = Vec::new();
                for name in species {
                    let id = self
                        .crn
                        .species_id(name)
                        .expect("species validated at parse time");
                    expectations.push((
                        name.clone(),
                        Json::num(space.expectation(&solution.probabilities, id)),
                    ));
                    marginals.push((
                        name.clone(),
                        Json::Array(
                            space
                                .marginal(&solution.probabilities, id)
                                .into_iter()
                                .map(Json::num)
                                .collect(),
                        ),
                    ));
                }
                Ok(Json::object([
                    ("kind", Json::str("exact")),
                    ("analysis", Json::str("transient")),
                    ("t", Json::num(*t)),
                    ("states", Json::count(space.len() as u64)),
                    ("truncation_error", Json::num(solution.truncation_error)),
                    ("leaked", Json::num(solution.leaked)),
                    ("expectations", Json::Object(expectations)),
                    ("marginals", Json::Object(marginals)),
                ])
                .render())
            }
        }
    }
}

/// A threshold predicate — `species` holding at least `at_least` copies —
/// the uniform target language of every `/check` property kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckTarget {
    /// The species the predicate counts.
    pub species: String,
    /// The threshold count.
    pub at_least: u64,
}

impl CheckTarget {
    fn parse(value: &Json, what: &str, crn: &Crn) -> Result<CheckTarget, ServiceError> {
        let species = value
            .get("species")
            .ok_or_else(|| bad(format!("{what} missing `species`")))?
            .as_str(what)
            .map_err(bad)?
            .to_string();
        if crn.species_id(&species).is_none() {
            return Err(bad(format!("{what}: unknown species `{species}`")));
        }
        let at_least = value
            .get("at_least")
            .ok_or_else(|| bad(format!("{what} missing `at_least`")))?
            .as_u64(what)
            .map_err(bad)?;
        Ok(CheckTarget { species, at_least })
    }

    fn canon(&self) -> String {
        format!("{}>={}", self.species, self.at_least)
    }

    fn render(&self) -> Json {
        Json::object([
            ("species", Json::str(self.species.clone())),
            ("at_least", Json::count(self.at_least)),
        ])
    }
}

/// The property of a `POST /check` request, mapped one-to-one onto the
/// [`Checker`] query family.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckProperty {
    /// `P(reach target before competitor)`.
    ReachBefore {
        /// The set the probability is for.
        target: CheckTarget,
        /// The competing absorbing set.
        competitor: CheckTarget,
    },
    /// `P(target within [t₁, t₂])`.
    ReachWithin {
        /// The set to visit.
        target: CheckTarget,
        /// The time window.
        window: (f64, f64),
    },
    /// Expected first-passage time into the target set.
    HittingTime {
        /// The set to hit.
        target: CheckTarget,
    },
    /// Stationary mass of the target set (and the target species' mean).
    Stationary {
        /// The set to weigh.
        target: CheckTarget,
    },
}

impl CheckProperty {
    fn parse(value: &Json, crn: &Crn) -> Result<CheckProperty, ServiceError> {
        let kind = value
            .get("type")
            .ok_or_else(|| bad("`property` missing `type`"))?
            .as_str("property.type")
            .map_err(bad)?;
        let target = CheckTarget::parse(
            value
                .get("target")
                .ok_or_else(|| bad("`property` missing `target`"))?,
            "property.target",
            crn,
        )?;
        match kind {
            "reach_before" => {
                let competitor = CheckTarget::parse(
                    value
                        .get("competitor")
                        .ok_or_else(|| bad("reach_before property missing `competitor`"))?,
                    "property.competitor",
                    crn,
                )?;
                Ok(CheckProperty::ReachBefore { target, competitor })
            }
            "reach_within" => {
                let items = value
                    .get("window")
                    .ok_or_else(|| bad("reach_within property missing `window`"))?
                    .as_array("property.window")
                    .map_err(bad)?;
                if items.len() != 2 {
                    return Err(bad("`property.window` must be a two-element array"));
                }
                let window = (
                    items[0].as_f64("property.window[0]").map_err(bad)?,
                    items[1].as_f64("property.window[1]").map_err(bad)?,
                );
                Ok(CheckProperty::ReachWithin { target, window })
            }
            "hitting_time" => Ok(CheckProperty::HittingTime { target }),
            "stationary" => Ok(CheckProperty::Stationary { target }),
            other => Err(bad(format!(
                "unknown property type `{other}` (expected `reach_before`, `reach_within`, \
                 `hitting_time` or `stationary`)"
            ))),
        }
    }

    /// The wire name of the property kind.
    pub fn kind_name(&self) -> &'static str {
        match self {
            CheckProperty::ReachBefore { .. } => "reach_before",
            CheckProperty::ReachWithin { .. } => "reach_within",
            CheckProperty::HittingTime { .. } => "hitting_time",
            CheckProperty::Stationary { .. } => "stationary",
        }
    }

    fn canon(&self) -> String {
        match self {
            CheckProperty::ReachBefore { target, competitor } => format!(
                "reach_before:target={}:competitor={}",
                target.canon(),
                competitor.canon()
            ),
            CheckProperty::ReachWithin { target, window } => format!(
                "reach_within:target={}:window=[{},{}]",
                target.canon(),
                window.0,
                window.1
            ),
            CheckProperty::HittingTime { target } => {
                format!("hitting_time:target={}", target.canon())
            }
            CheckProperty::Stationary { target } => {
                format!("stationary:target={}", target.canon())
            }
        }
    }

    /// Renders the property back into the request JSON [`Self::parse`]
    /// accepts — the inverse used when a coordinator re-issues a grid
    /// point to a worker.
    fn render_wire(&self) -> Json {
        let mut members = vec![("type", Json::str(self.kind_name()))];
        match self {
            CheckProperty::ReachBefore { target, competitor } => {
                members.push(("target", target.render()));
                members.push(("competitor", competitor.render()));
            }
            CheckProperty::ReachWithin { target, window } => {
                members.push(("target", target.render()));
                members.push((
                    "window",
                    Json::Array(vec![Json::num(window.0), Json::num(window.1)]),
                ));
            }
            CheckProperty::HittingTime { target } | CheckProperty::Stationary { target } => {
                members.push(("target", target.render()));
            }
        }
        Json::object(members)
    }
}

/// One fully-resolved `/check` solve: a concrete network (sweep
/// placeholder substituted), initial state, bounds and property. Grid
/// points are independent — each carries everything a worker needs.
#[derive(Debug, Clone)]
pub struct CheckPoint {
    /// The parsed network.
    pub crn: Crn,
    /// The substituted network text (what a coordinator posts to workers).
    network_text: String,
    /// The `initial` request field, for wire re-rendering.
    initial_wire: Json,
    /// The `bounds` request field, for wire re-rendering.
    bounds_wire: Json,
    /// The initial state.
    pub initial: State,
    /// Population bounds for the state-space enumeration.
    pub bounds: PopulationBounds,
    /// Canonical rendering of the bounds.
    bounds_canonical: String,
    /// The property to check.
    pub property: CheckProperty,
}

impl CheckPoint {
    fn parse(network_text: &str, body: &Json) -> Result<CheckPoint, ServiceError> {
        let crn = crn::parse_network(network_text).map_err(|e| bad(e.to_string()))?;
        let initial = parse_initial(body, &crn)?;
        let bounds_value = body.get("bounds").ok_or_else(|| bad("missing `bounds`"))?;
        let (bounds, bounds_canonical) = parse_bounds(bounds_value)?;
        let property = CheckProperty::parse(
            body.get("property")
                .ok_or_else(|| bad("missing `property`"))?,
            &crn,
        )?;
        Ok(CheckPoint {
            network_text: network_text.to_string(),
            initial_wire: body
                .get("initial")
                .cloned()
                .unwrap_or(Json::Object(Vec::new())),
            bounds_wire: bounds_value.clone(),
            crn,
            initial,
            bounds,
            bounds_canonical,
            property,
        })
    }

    /// The canonical cache key of this grid point. A worker computing the
    /// same substituted network derives the identical key, which is what
    /// makes the per-point cache federate across the fabric.
    pub fn cache_key(&self) -> String {
        format!(
            "check|v1|{}|initial={}|bounds={}|property={}",
            canon_network(&self.crn),
            canon_state(&self.crn, &self.initial),
            self.bounds_canonical,
            self.property.canon(),
        )
    }

    /// The single-point `/check` body a coordinator posts to a worker:
    /// the substituted network, no sweep, `wait: true`.
    pub fn to_wire(&self) -> String {
        Json::object([
            ("network", Json::str(self.network_text.clone())),
            ("initial", self.initial_wire.clone()),
            ("bounds", self.bounds_wire.clone()),
            ("property", self.property.render_wire()),
            ("wait", Json::Bool(true)),
        ])
        .render()
    }

    /// Evaluates the property and renders the verdict document. Every kind
    /// carries a headline `value` field (the number a sweep plots) plus its
    /// full verdict breakdown.
    ///
    /// # Errors
    ///
    /// [`ServiceError::JobFailed`] wrapping the CME error.
    pub fn execute(&self) -> Result<String, ServiceError> {
        let failed = |e: cme::CmeError| ServiceError::JobFailed {
            message: e.to_string(),
        };
        let checker = Checker::new(&self.crn, self.initial.clone(), self.bounds.clone());
        let mut members = vec![
            ("kind", Json::str("check")),
            ("property", Json::str(self.property.kind_name())),
        ];
        match &self.property {
            CheckProperty::ReachBefore { target, competitor } => {
                let verdict = checker
                    .reach_before_species(
                        (&target.species, target.at_least),
                        (&competitor.species, competitor.at_least),
                    )
                    .map_err(failed)?;
                members.extend([
                    ("states", Json::count(verdict.states as u64)),
                    ("value", Json::num(verdict.target)),
                    ("target", Json::num(verdict.target)),
                    ("competitor", Json::num(verdict.competitor)),
                    ("never", Json::num(verdict.never)),
                    ("escaped", Json::num(verdict.escaped)),
                ]);
            }
            CheckProperty::ReachWithin { target, window } => {
                let verdict = checker
                    .species_within(&target.species, target.at_least, *window)
                    .map_err(failed)?;
                members.extend([
                    ("states", Json::count(verdict.states as u64)),
                    ("value", Json::num(verdict.probability)),
                    ("probability", Json::num(verdict.probability)),
                    ("error_bound", Json::num(verdict.error_bound)),
                    ("terms", Json::count(verdict.terms as u64)),
                ]);
            }
            CheckProperty::HittingTime { target } => {
                let verdict = checker
                    .hitting_time_species(&target.species, target.at_least)
                    .map_err(failed)?;
                let mean = verdict.conditional_mean.map_or(Json::Null, Json::num);
                members.extend([
                    ("states", Json::count(verdict.states as u64)),
                    ("value", mean.clone()),
                    ("probability", Json::num(verdict.probability)),
                    ("conditional_mean", mean),
                ]);
            }
            CheckProperty::Stationary { target } => {
                let stationary = checker.stationary().map_err(failed)?;
                let id = self
                    .crn
                    .species_id(&target.species)
                    .expect("species validated at parse time");
                let mass = stationary.mass(|s| s.count(id) >= target.at_least);
                members.extend([
                    ("states", Json::count(stationary.space().len() as u64)),
                    ("value", Json::num(mass)),
                    ("mass", Json::num(mass)),
                    ("expectation", Json::num(stationary.expectation(id))),
                    (
                        "recurrent_states",
                        Json::count(stationary.recurrent_states() as u64),
                    ),
                    ("boundary_mass", Json::num(stationary.boundary_mass())),
                ]);
            }
        }
        Ok(Json::object(members).render())
    }
}

/// A parsed `POST /check` request: one property check, or a parameter
/// sweep of the same check — `sweep.parameter` names a `{placeholder}` in
/// the network text that each grid value substitutes, and every resulting
/// point is validated up front and solved independently.
#[derive(Debug, Clone)]
pub struct CheckRequest {
    /// The fully-resolved grid points (exactly one when there is no sweep).
    pub points: Vec<CheckPoint>,
    /// The sweep parameter name and grid, in request order.
    pub sweep: Option<(String, Vec<f64>)>,
    /// Scheduling priority.
    pub priority: u8,
    /// Whether to block until done.
    pub wait: bool,
}

impl CheckRequest {
    /// Parses and validates the request body, substituting the sweep
    /// placeholder and fully validating every grid point.
    ///
    /// # Errors
    ///
    /// [`ServiceError::BadRequest`] naming the offending field (or grid
    /// point, when one substitution fails to parse).
    pub fn parse(body: &Json) -> Result<CheckRequest, ServiceError> {
        let text = body
            .get("network")
            .ok_or_else(|| bad("missing `network`"))?
            .as_str("network")
            .map_err(bad)?;
        let sweep = match body.get("sweep") {
            None => None,
            Some(value) => {
                let parameter = value
                    .get("parameter")
                    .ok_or_else(|| bad("`sweep` missing `parameter`"))?
                    .as_str("sweep.parameter")
                    .map_err(bad)?
                    .to_string();
                let mut values = Vec::new();
                for (i, item) in value
                    .get("values")
                    .ok_or_else(|| bad("`sweep` missing `values`"))?
                    .as_array("sweep.values")
                    .map_err(bad)?
                    .iter()
                    .enumerate()
                {
                    let v = item.as_f64(&format!("sweep.values[{i}]")).map_err(bad)?;
                    if !v.is_finite() {
                        return Err(bad(format!("sweep.values[{i}]: {v} is not finite")));
                    }
                    values.push(v);
                }
                if values.is_empty() {
                    return Err(bad("`sweep.values` must not be empty"));
                }
                Some((parameter, values))
            }
        };
        let points = match &sweep {
            None => {
                if text.contains('{') {
                    return Err(bad(
                        "network contains a `{placeholder}` but no `sweep` was given",
                    ));
                }
                vec![CheckPoint::parse(text, body)?]
            }
            Some((parameter, values)) => {
                let placeholder = format!("{{{parameter}}}");
                if !text.contains(&placeholder) {
                    return Err(bad(format!(
                        "network does not contain the sweep placeholder `{placeholder}`"
                    )));
                }
                values
                    .iter()
                    .map(|v| CheckPoint::parse(&text.replace(&placeholder, &v.to_string()), body))
                    .collect::<Result<Vec<_>, _>>()?
            }
        };
        Ok(CheckRequest {
            points,
            sweep,
            priority: parse_priority(body)?,
            wait: opt_bool(body, "wait")?.unwrap_or(false),
        })
    }

    /// The canonical cache key of the whole request. A sweep keys on the
    /// parameter name plus every point key, so any change to the grid, the
    /// template or the property re-keys the document.
    pub fn cache_key(&self) -> String {
        match &self.sweep {
            None => self.points[0].cache_key(),
            Some((parameter, _)) => format!(
                "check_sweep|v1|parameter={parameter}|{}",
                self.points
                    .iter()
                    .map(CheckPoint::cache_key)
                    .collect::<Vec<_>>()
                    .join(";"),
            ),
        }
    }

    /// Assembles the sweep document from the rendered per-point bodies, in
    /// grid order. Bodies are parsed and re-embedded (never string-spliced);
    /// `Json` rendering is canonical and float formatting round-trips, so
    /// the document is byte-identical however the points were computed.
    ///
    /// # Errors
    ///
    /// [`ServiceError::JobFailed`] when a point body is not valid JSON.
    pub fn render_sweep(&self, bodies: &[String]) -> Result<String, ServiceError> {
        let (parameter, values) = self.sweep.as_ref().expect("render_sweep needs a sweep");
        let mut points = Vec::with_capacity(bodies.len());
        for (v, body) in values.iter().zip(bodies) {
            let result = crate::json::parse(body).map_err(|e| ServiceError::JobFailed {
                message: format!("check point returned invalid JSON: {e}"),
            })?;
            points.push(Json::object([
                ("parameter", Json::num(*v)),
                ("result", result),
            ]));
        }
        Ok(Json::object([
            ("kind", Json::str("check_sweep")),
            ("parameter", Json::str(parameter.clone())),
            (
                "values",
                Json::Array(values.iter().map(|&v| Json::num(v)).collect()),
            ),
            ("points", Json::Array(points)),
        ])
        .render())
    }
}

/// A parsed `POST /synthesize` request.
#[derive(Debug, Clone)]
pub struct SynthesizeRequest {
    /// The input species name.
    pub input: String,
    /// Response coefficients `(constant, log2, linear)`, in percent of the
    /// probability pool.
    pub coefficients: (f64, f64, f64),
    /// Outcome names `(tracked, complement)`.
    pub outcomes: (String, String),
    /// Output species names `(tracked, complement)`.
    pub outputs: (String, String),
    /// Output thresholds declaring each outcome.
    pub thresholds: (u64, u64),
    /// Food quantities feeding the working reactions.
    pub food: (u64, u64),
    /// Size of the probability-carrying pool.
    pub input_total: u64,
    /// Expected input range, guiding stoichiometry selection.
    pub input_range: (u64, u64),
    /// Optional γ override of the embedded stochastic module.
    pub gamma: Option<f64>,
    /// Input quantities to analyse exactly through the CME.
    pub evaluate: Vec<u64>,
    /// Scheduling priority.
    pub priority: u8,
    /// Whether to block until done.
    pub wait: bool,
}

impl SynthesizeRequest {
    /// Parses and validates the request body.
    ///
    /// The paper's lambda-phage response is available as
    /// `{"preset": "lambda"}` (Equation 14 with the `lambda` crate's
    /// thresholds); explicit fields override preset values.
    ///
    /// # Errors
    ///
    /// [`ServiceError::BadRequest`] naming the offending field.
    pub fn parse(body: &Json) -> Result<SynthesizeRequest, ServiceError> {
        let preset = match body.get("preset") {
            None => None,
            Some(value) => Some(value.as_str("preset").map_err(bad)?),
        };
        let mut request = match preset {
            None => SynthesizeRequest {
                input: String::new(),
                coefficients: (0.0, 0.0, 0.0),
                outcomes: ("T1".to_string(), "T2".to_string()),
                outputs: ("out1".to_string(), "out2".to_string()),
                thresholds: (10, 10),
                food: (100, 100),
                input_total: 100,
                input_range: (1, 10),
                gamma: None,
                evaluate: Vec::new(),
                priority: DEFAULT_PRIORITY,
                wait: false,
            },
            Some("lambda") => {
                let eq14 = lambda::equation_14();
                SynthesizeRequest {
                    input: "moi".to_string(),
                    coefficients: (
                        eq14.constant(),
                        eq14.log_coefficient(),
                        eq14.linear_coefficient(),
                    ),
                    outcomes: (lambda::LYSIS.to_string(), lambda::LYSOGENY.to_string()),
                    outputs: ("cro2".to_string(), "ci2".to_string()),
                    thresholds: (lambda::CRO2_THRESHOLD, lambda::CI2_THRESHOLD),
                    food: (200, 300),
                    input_total: 100,
                    input_range: (1, 10),
                    gamma: None,
                    evaluate: Vec::new(),
                    priority: DEFAULT_PRIORITY,
                    wait: false,
                }
            }
            Some(other) => {
                return Err(bad(format!("unknown preset `{other}` (expected `lambda`)")))
            }
        };

        if let Some(value) = body.get("input") {
            request.input = value.as_str("input").map_err(bad)?.to_string();
        }
        if let Some(value) = body.get("response") {
            let field = |key: &str| -> Result<f64, ServiceError> {
                value
                    .get(key)
                    .ok_or_else(|| bad(format!("`response` missing `{key}`")))?
                    .as_f64(&format!("response.{key}"))
                    .map_err(bad)
            };
            request.coefficients = (field("constant")?, field("log2")?, field("linear")?);
        } else if preset.is_none() {
            return Err(bad("missing `response` (or a `preset`)"));
        }
        if request.input.is_empty() {
            return Err(bad("missing `input`"));
        }
        if let Some(value) = body.get("outcomes") {
            request.outcomes = parse_pair_str(value, "outcomes")?;
        }
        if let Some(value) = body.get("outputs") {
            request.outputs = parse_pair_str(value, "outputs")?;
        }
        if let Some(value) = body.get("thresholds") {
            request.thresholds = parse_pair_u64(value, "thresholds")?;
        }
        if let Some(value) = body.get("food") {
            request.food = parse_pair_u64(value, "food")?;
        }
        if let Some(value) = body.get("input_total") {
            request.input_total = value.as_u64("input_total").map_err(bad)?;
        }
        if let Some(value) = body.get("input_range") {
            request.input_range = parse_pair_u64(value, "input_range")?;
        }
        if let Some(value) = body.get("gamma") {
            request.gamma = Some(value.as_f64("gamma").map_err(bad)?);
        }
        if let Some(value) = body.get("evaluate") {
            for item in value.as_array("evaluate").map_err(bad)? {
                request
                    .evaluate
                    .push(item.as_u64("evaluate[]").map_err(bad)?);
            }
        }
        request.priority = parse_priority(body)?;
        request.wait = opt_bool(body, "wait")?.unwrap_or(false);
        Ok(request)
    }

    /// The canonical cache key.
    pub fn cache_key(&self) -> String {
        format!(
            "synthesize|v1|input={}|a={}|b={}|c={}|outcomes={},{}|outputs={},{}|thresholds={},{}\
             |food={},{}|input_total={}|range={},{}|gamma={}|evaluate={}",
            self.input,
            self.coefficients.0,
            self.coefficients.1,
            self.coefficients.2,
            self.outcomes.0,
            self.outcomes.1,
            self.outputs.0,
            self.outputs.1,
            self.thresholds.0,
            self.thresholds.1,
            self.food.0,
            self.food.1,
            self.input_total,
            self.input_range.0,
            self.input_range.1,
            self.gamma.map_or("default".to_string(), |g| g.to_string()),
            self.evaluate
                .iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(","),
        )
    }

    /// Runs the synthesis pipeline (and the exact evaluations) and renders
    /// the result body.
    ///
    /// # Errors
    ///
    /// [`ServiceError::JobFailed`] wrapping the synthesis/CME error.
    pub fn execute(&self) -> Result<String, ServiceError> {
        let failed = |e: synthesis::SynthesisError| ServiceError::JobFailed {
            message: e.to_string(),
        };
        let fit = LogLinearFit::from_coefficients(
            self.coefficients.0,
            self.coefficients.1,
            self.coefficients.2,
        );
        let mut synthesizer = LogLinearSynthesizer::new(self.input.clone(), fit)
            .outcomes(self.outcomes.0.clone(), self.outcomes.1.clone())
            .outputs(self.outputs.0.clone(), self.outputs.1.clone())
            .thresholds(self.thresholds.0, self.thresholds.1)
            .food(self.food.0, self.food.1)
            .input_total(self.input_total)
            .input_range(self.input_range.0, self.input_range.1);
        if let Some(gamma) = self.gamma {
            synthesizer = synthesizer.stochastic_gamma(gamma);
        }
        let synthesized: SynthesizedResponse = synthesizer.synthesize().map_err(failed)?;

        let mut evaluations = Vec::new();
        for &x in &self.evaluate {
            let analysis = synthesized
                .exact_outcome_analysis(x, &synthesized.exact_bounds(x))
                .map_err(failed)?;
            let probabilities: Vec<(String, Json)> = analysis
                .names()
                .iter()
                .zip(analysis.probabilities())
                .map(|(name, &p)| (name.clone(), Json::num(p)))
                .collect();
            evaluations.push(Json::object([
                ("x", Json::count(x)),
                ("predicted", Json::num(synthesized.predicted_probability(x))),
                ("exact", Json::Object(probabilities)),
                ("undecided", Json::num(analysis.undecided())),
                ("escaped", Json::num(analysis.escaped())),
            ]));
        }

        let crn = synthesized.crn();
        Ok(Json::object([
            ("kind", Json::str("synthesize")),
            ("network", Json::str(crn.to_text())),
            ("species", Json::count(crn.species_len() as u64)),
            ("reactions", Json::count(crn.reactions().len() as u64)),
            ("tracked_outcome", Json::str(self.outcomes.0.clone())),
            ("evaluations", Json::Array(evaluations)),
        ])
        .render())
    }
}

// ---------------------------------------------------------------------------
// Shared field parsers and canonical renderers.
// ---------------------------------------------------------------------------

fn parse_network_field(body: &Json) -> Result<Crn, ServiceError> {
    let text = body
        .get("network")
        .ok_or_else(|| bad("missing `network`"))?
        .as_str("network")
        .map_err(bad)?;
    crn::parse_network(text).map_err(|e| bad(e.to_string()))
}

fn parse_initial(body: &Json, crn: &Crn) -> Result<State, ServiceError> {
    let mut state = crn.zero_state();
    if let Some(value) = body.get("initial") {
        for (name, count) in value.as_object("initial").map_err(bad)? {
            let id = crn
                .species_id(name)
                .ok_or_else(|| bad(format!("initial: unknown species `{name}`")))?;
            state.set(id, count.as_u64(&format!("initial.{name}")).map_err(bad)?);
        }
    }
    Ok(state)
}

fn parse_method(name: &str) -> Result<StepperKind, ServiceError> {
    if name == StepperKind::Auto.name() {
        return Ok(StepperKind::Auto);
    }
    StepperKind::ALL
        .into_iter()
        .find(|kind| kind.name() == name)
        .ok_or_else(|| {
            bad(format!(
                "unknown method `{name}` (expected one of {}, auto)",
                StepperKind::ALL
                    .iter()
                    .map(|k| k.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })
}

/// Renders the portfolio classifier's feature report for `auto` responses
/// (and the debug surface of `/metrics` consumers).
fn render_classifier(report: &ClassifierReport) -> Json {
    Json::object([
        ("reactions", Json::count(report.reactions as u64)),
        ("species", Json::count(report.species as u64)),
        (
            "active_channels",
            Json::count(report.active_channels as u64),
        ),
        ("binade_spread", Json::num(report.binade_spread)),
        (
            "leap_occupancy",
            report.leap_occupancy.map_or(Json::Null, Json::num),
        ),
        (
            "pilot_active_channels",
            report
                .pilot_active_channels
                .map_or(Json::Null, |n| Json::count(n as u64)),
        ),
        (
            "timescale_separation",
            report.timescale_separation.map_or(Json::Null, Json::num),
        ),
        ("resolved", Json::str(report.resolved.name())),
        ("reason", Json::str(report.reason)),
    ])
}

fn parse_stop(value: &Json, crn: &Crn) -> Result<StopCondition, ServiceError> {
    let kind = value
        .get("type")
        .ok_or_else(|| bad("`stop` missing `type`"))?
        .as_str("stop.type")
        .map_err(bad)?;
    match kind {
        "exhaustion" => Ok(StopCondition::Exhaustion),
        "time" => Ok(StopCondition::Time(
            value
                .get("t")
                .ok_or_else(|| bad("time stop missing `t`"))?
                .as_f64("stop.t")
                .map_err(bad)?,
        )),
        "events" => Ok(StopCondition::Events(
            value
                .get("n")
                .ok_or_else(|| bad("events stop missing `n`"))?
                .as_u64("stop.n")
                .map_err(bad)?,
        )),
        "species_at_least" | "species_at_most" => {
            let species = value
                .get("species")
                .ok_or_else(|| bad(format!("{kind} stop missing `species`")))?
                .as_str("stop.species")
                .map_err(bad)?;
            let id = crn
                .species_id(species)
                .ok_or_else(|| bad(format!("stop: unknown species `{species}`")))?;
            let count = value
                .get("count")
                .ok_or_else(|| bad(format!("{kind} stop missing `count`")))?
                .as_u64("stop.count")
                .map_err(bad)?;
            Ok(if kind == "species_at_least" {
                StopCondition::species_at_least(id, count)
            } else {
                StopCondition::species_at_most(id, count)
            })
        }
        "any_of" | "all_of" => {
            let nested = value
                .get("conditions")
                .ok_or_else(|| bad(format!("{kind} stop missing `conditions`")))?
                .as_array("stop.conditions")
                .map_err(bad)?
                .iter()
                .map(|v| parse_stop(v, crn))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(if kind == "any_of" {
                StopCondition::any_of(nested)
            } else {
                StopCondition::all_of(nested)
            })
        }
        other => Err(bad(format!("unknown stop type `{other}`"))),
    }
}

fn parse_priority(body: &Json) -> Result<u8, ServiceError> {
    match opt_u64(body, "priority")? {
        None => Ok(DEFAULT_PRIORITY),
        Some(p) if p <= 9 => Ok(p as u8),
        Some(p) => Err(bad(format!("priority {p} out of range 0..=9"))),
    }
}

fn opt_u64(body: &Json, key: &str) -> Result<Option<u64>, ServiceError> {
    match body.get(key) {
        None => Ok(None),
        Some(value) => value.as_u64(key).map(Some).map_err(bad),
    }
}

fn opt_bool(body: &Json, key: &str) -> Result<Option<bool>, ServiceError> {
    match body.get(key) {
        None => Ok(None),
        Some(value) => value.as_bool(key).map(Some).map_err(bad),
    }
}

fn parse_pair_str(value: &Json, what: &str) -> Result<(String, String), ServiceError> {
    let items = value.as_array(what).map_err(bad)?;
    if items.len() != 2 {
        return Err(bad(format!("`{what}` must be a two-element array")));
    }
    Ok((
        items[0].as_str(what).map_err(bad)?.to_string(),
        items[1].as_str(what).map_err(bad)?.to_string(),
    ))
}

fn parse_pair_u64(value: &Json, what: &str) -> Result<(u64, u64), ServiceError> {
    let items = value.as_array(what).map_err(bad)?;
    if items.len() != 2 {
        return Err(bad(format!("`{what}` must be a two-element array")));
    }
    Ok((
        items[0].as_u64(what).map_err(bad)?,
        items[1].as_u64(what).map_err(bad)?,
    ))
}

fn parse_bounds(value: &Json) -> Result<(PopulationBounds, String), ServiceError> {
    let policy = match value.get("policy") {
        None => "strict",
        Some(v) => v.as_str("bounds.policy").map_err(bad)?,
    };
    let default_cap = value
        .get("default_cap")
        .ok_or_else(|| bad("`bounds` missing `default_cap`"))?
        .as_u64("bounds.default_cap")
        .map_err(bad)?;
    let mut bounds = match policy {
        "strict" => PopulationBounds::strict(default_cap),
        "truncating" => PopulationBounds::truncating(default_cap),
        other => {
            return Err(bad(format!(
                "unknown bounds policy `{other}` (expected `strict` or `truncating`)"
            )))
        }
    };
    let mut caps: Vec<(String, u64)> = Vec::new();
    if let Some(value) = value.get("caps") {
        for (name, cap) in value.as_object("bounds.caps").map_err(bad)? {
            caps.push((
                name.clone(),
                cap.as_u64(&format!("bounds.caps.{name}")).map_err(bad)?,
            ));
        }
    }
    caps.sort();
    for (name, cap) in &caps {
        bounds = bounds.cap(name.clone(), *cap);
    }
    let max_states = opt_u64(value, "max_states")?;
    if let Some(max_states) = max_states {
        bounds = bounds.max_states(max_states as usize);
    }
    let canonical = format!(
        "{policy}:{default_cap}:caps={}:max_states={}",
        caps.iter()
            .map(|(n, c)| format!("{n}={c}"))
            .collect::<Vec<_>>()
            .join(","),
        max_states.map_or("default".to_string(), |m| m.to_string()),
    );
    Ok((bounds, canonical))
}

/// Renders a network canonically for cache keys: one reaction per line in
/// the standard notation, with reaction *labels* stripped — labels are
/// documentation, not dynamics, so two networks differing only in comments
/// must hash identically.
fn canon_network(crn: &Crn) -> String {
    let mut out = String::new();
    for reaction in crn.reactions() {
        let rendered = crn.render_reaction(reaction);
        // `render_reaction` appends labels as `  # label`.
        let dynamics = rendered.split("  # ").next().unwrap_or(&rendered);
        out.push_str(dynamics);
        out.push('\n');
    }
    out
}

/// Renders a state canonically as `name=count` pairs in species-id order,
/// omitting zeros.
fn canon_state(crn: &Crn, state: &State) -> String {
    crn.species()
        .iter()
        .filter_map(|species| {
            let count = state.count(species.id());
            (count > 0).then(|| format!("{}={count}", species.name()))
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// Renders a stop condition back into the request JSON [`parse_stop`]
/// accepts — the inverse used when a coordinator re-issues a request to a
/// worker.
fn render_stop(crn: &Crn, stop: &StopCondition) -> Json {
    let species_name = |id: &crn::SpeciesId| crn.species()[id.index()].name().to_string();
    match stop {
        StopCondition::Exhaustion => Json::object([("type", Json::str("exhaustion"))]),
        StopCondition::Time(t) => Json::object([("type", Json::str("time")), ("t", Json::num(*t))]),
        StopCondition::Events(n) => {
            Json::object([("type", Json::str("events")), ("n", Json::count(*n))])
        }
        StopCondition::SpeciesAtLeast { species, count } => Json::object([
            ("type", Json::str("species_at_least")),
            ("species", Json::str(species_name(species))),
            ("count", Json::count(*count)),
        ]),
        StopCondition::SpeciesAtMost { species, count } => Json::object([
            ("type", Json::str("species_at_most")),
            ("species", Json::str(species_name(species))),
            ("count", Json::count(*count)),
        ]),
        StopCondition::AnyOf(conditions) => Json::object([
            ("type", Json::str("any_of")),
            (
                "conditions",
                Json::Array(conditions.iter().map(|c| render_stop(crn, c)).collect()),
            ),
        ]),
        StopCondition::AllOf(conditions) => Json::object([
            ("type", Json::str("all_of")),
            (
                "conditions",
                Json::Array(conditions.iter().map(|c| render_stop(crn, c)).collect()),
            ),
        ]),
        // `StopCondition` is non-exhaustive, but a `SimulateRequest` only
        // ever holds conditions `parse_stop` produced, all covered above.
        other => unreachable!("stop condition {other:?} cannot come from a parsed request"),
    }
}

/// Renders a stop condition canonically (species by id, fixed field order).
fn canon_stop(stop: &StopCondition) -> String {
    match stop {
        StopCondition::Exhaustion => "exhaustion".to_string(),
        StopCondition::Time(t) => format!("time({t})"),
        StopCondition::Events(n) => format!("events({n})"),
        StopCondition::SpeciesAtLeast { species, count } => {
            format!("at_least(s{}:{count})", species.index())
        }
        StopCondition::SpeciesAtMost { species, count } => {
            format!("at_most(s{}:{count})", species.index())
        }
        StopCondition::AnyOf(conditions) => format!(
            "any_of[{}]",
            conditions
                .iter()
                .map(canon_stop)
                .collect::<Vec<_>>()
                .join(";")
        ),
        StopCondition::AllOf(conditions) => format!(
            "all_of[{}]",
            conditions
                .iter()
                .map(canon_stop)
                .collect::<Vec<_>>()
                .join(";")
        ),
        other => format!("{other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn simulate_body(network: &str, extra: &str) -> Json {
        parse(&format!(
            "{{\"network\":\"{}\",\"trials\":100{extra}}}",
            network.replace('\n', "\\n")
        ))
        .expect("test body parses")
    }

    #[test]
    fn simulate_requests_parse_with_defaults() {
        let body = simulate_body("x -> h @ 3\nx -> t @ 1", ",\"initial\":{\"x\":1}");
        let request = SimulateRequest::parse(&body).unwrap();
        assert_eq!(request.trials, 100);
        assert_eq!(request.seed, 0);
        assert_eq!(request.method, StepperKind::Direct);
        assert_eq!(request.max_events, DEFAULT_MAX_EVENTS);
        assert_eq!(request.priority, DEFAULT_PRIORITY);
        assert!(!request.wait);
        assert_eq!(
            request.initial.count(request.crn.species_id("x").unwrap()),
            1
        );
    }

    #[test]
    fn equivalent_bodies_share_a_cache_key() {
        // Whitespace, comments and field order do not affect the key…
        let a = simulate_body(
            "x -> h @ 3\nx -> t @ 1",
            ",\"initial\":{\"x\":1},\"seed\":7",
        );
        let b = parse(
            "{\"seed\":7,\"trials\":100,\"initial\":{\"x\":1},\
             \"network\":\"x  ->  h @ 3   # fast\\nx -> t @ 1\"}",
        )
        .unwrap();
        let key_a = SimulateRequest::parse(&a).unwrap().cache_key();
        let key_b = SimulateRequest::parse(&b).unwrap().cache_key();
        assert_eq!(key_a, key_b);
        // …but the seed does.
        let c = simulate_body(
            "x -> h @ 3\nx -> t @ 1",
            ",\"initial\":{\"x\":1},\"seed\":8",
        );
        assert_ne!(key_a, SimulateRequest::parse(&c).unwrap().cache_key());
    }

    #[test]
    fn auto_requests_resolve_at_parse_time() {
        let body = simulate_body(
            "x -> h @ 3\nx -> t @ 1",
            ",\"initial\":{\"x\":1},\"method\":\"auto\"",
        );
        let request = SimulateRequest::parse(&body).unwrap();
        assert_eq!(request.method, StepperKind::Auto);
        // A two-reaction network is squarely in the direct method's regime.
        assert_eq!(request.resolved, StepperKind::Direct);
        let classifier = request.classifier_report.as_ref().unwrap();
        assert_eq!(classifier.resolved, StepperKind::Direct);
        assert_eq!(classifier.reactions, 2);
        // The ensemble runs the resolved kind, never `Auto` itself.
        assert_eq!(request.ensemble_options().method, StepperKind::Direct);

        // The cache key embeds the resolution — replayable, but distinct
        // from an explicit request for the same concrete kind (the bodies
        // differ: only `auto` carries a classifier report).
        let key = request.cache_key();
        assert!(key.contains("method=auto(direct)"), "key: {key}");
        let explicit = simulate_body(
            "x -> h @ 3\nx -> t @ 1",
            ",\"initial\":{\"x\":1},\"method\":\"direct\"",
        );
        let explicit_key = SimulateRequest::parse(&explicit).unwrap().cache_key();
        assert_ne!(key, explicit_key);
        assert!(
            explicit_key.contains("method=direct"),
            "key: {explicit_key}"
        );
    }

    #[test]
    fn auto_reports_carry_the_resolved_stepper() {
        let body = simulate_body(
            "x -> h @ 3\nx -> t @ 1",
            ",\"initial\":{\"x\":1},\"method\":\"auto\",\"seed\":3",
        );
        let request = SimulateRequest::parse(&body).unwrap();
        let classifier = request.classifier().unwrap();
        let report = gillespie::Ensemble::new(&request.crn, request.initial.clone(), classifier)
            .options(request.ensemble_options())
            .run()
            .unwrap();
        assert_eq!(report.method, StepperKind::Direct);
        let rendered = parse(&request.render_report(&report)).unwrap();
        let field = |k: &str| rendered.get(k).unwrap().as_str(k).unwrap().to_string();
        assert_eq!(field("method"), "auto");
        assert_eq!(field("resolved_stepper"), "direct");
        let classifier_json = rendered.get("classifier_report").unwrap();
        assert_eq!(
            classifier_json
                .get("resolved")
                .unwrap()
                .as_str("resolved")
                .unwrap(),
            "direct"
        );
        assert!(classifier_json.get("reason").is_some());

        // Explicit requests still render, with `resolved_stepper` matching
        // the method and no classifier report.
        let explicit = simulate_body(
            "x -> h @ 3\nx -> t @ 1",
            ",\"initial\":{\"x\":1},\"method\":\"next-reaction\",\"seed\":3",
        );
        let explicit = SimulateRequest::parse(&explicit).unwrap();
        let report = gillespie::Ensemble::new(
            &explicit.crn,
            explicit.initial.clone(),
            explicit.classifier().unwrap(),
        )
        .options(explicit.ensemble_options())
        .run()
        .unwrap();
        let rendered = parse(&explicit.render_report(&report)).unwrap();
        assert_eq!(
            rendered.get("method").unwrap().as_str("method").unwrap(),
            "next-reaction"
        );
        assert_eq!(
            rendered
                .get("resolved_stepper")
                .unwrap()
                .as_str("resolved_stepper")
                .unwrap(),
            "next-reaction"
        );
        assert!(rendered.get("classifier_report").is_none());
    }

    #[test]
    fn network_errors_surface_line_and_column() {
        let body = simulate_body("x -> h @ fast", "");
        let err = SimulateRequest::parse(&body).unwrap_err();
        let message = err.to_string();
        assert!(
            message.contains("line 1, column 10"),
            "expected a line+column parse error, got: {message}"
        );
    }

    #[test]
    fn stop_conditions_parse_recursively() {
        let body = parse(
            "{\"network\":\"a -> b @ 1\",\"trials\":5,\"stop\":{\
             \"type\":\"any_of\",\"conditions\":[\
             {\"type\":\"time\",\"t\":4.5},\
             {\"type\":\"species_at_least\",\"species\":\"b\",\"count\":3}]}}",
        )
        .unwrap();
        let request = SimulateRequest::parse(&body).unwrap();
        assert_eq!(
            canon_stop(&request.stop),
            "any_of[time(4.5);at_least(s1:3)]"
        );
    }

    #[test]
    fn bad_fields_name_the_problem() {
        for (body, needle) in [
            ("{\"trials\":1}", "missing `network`"),
            ("{\"network\":\"a -> b @ 1\"}", "missing `trials`"),
            (
                "{\"network\":\"a -> b @ 1\",\"trials\":0}",
                "must be positive",
            ),
            (
                "{\"network\":\"a -> b @ 1\",\"trials\":1,\"method\":\"magic\"}",
                "unknown method",
            ),
            (
                "{\"network\":\"a -> b @ 1\",\"trials\":1,\"priority\":99}",
                "out of range",
            ),
            (
                "{\"network\":\"a -> b @ 1\",\"trials\":1,\"initial\":{\"zz\":1}}",
                "unknown species",
            ),
        ] {
            let err = SimulateRequest::parse(&parse(body).unwrap()).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "body {body}: expected `{needle}` in `{err}`"
            );
        }
    }

    #[test]
    fn exact_request_round_trips_a_first_passage() {
        let body = parse(
            "{\"network\":\"x -> heads @ 3\\nx -> tails @ 1\",\
             \"initial\":{\"x\":1},\
             \"bounds\":{\"policy\":\"strict\",\"default_cap\":1},\
             \"analysis\":{\"type\":\"first_passage\",\"outcomes\":[\
             {\"name\":\"heads\",\"species\":\"heads\",\"at_least\":1},\
             {\"name\":\"tails\",\"species\":\"tails\",\"at_least\":1}]}}",
        )
        .unwrap();
        let request = ExactRequest::parse(&body).unwrap();
        let rendered = request.execute().unwrap();
        let result = parse(&rendered).unwrap();
        let p = result
            .get("probabilities")
            .unwrap()
            .get("heads")
            .unwrap()
            .as_f64("heads")
            .unwrap();
        assert!((p - 0.75).abs() < 1e-12, "exact heads probability: {p}");
        assert!(request.cache_key().contains("first_passage"));
    }

    #[test]
    fn exact_transient_reports_expectations() {
        let body = parse(
            "{\"network\":\"a -> b @ 1\",\
             \"initial\":{\"a\":3},\
             \"bounds\":{\"default_cap\":3},\
             \"analysis\":{\"type\":\"transient\",\"t\":0.5,\"species\":[\"a\",\"b\"]}}",
        )
        .unwrap();
        let request = ExactRequest::parse(&body).unwrap();
        let result = parse(&request.execute().unwrap()).unwrap();
        let expect_a = result
            .get("expectations")
            .unwrap()
            .get("a")
            .unwrap()
            .as_f64("a")
            .unwrap();
        // E[a](t) = 3·e^{-t}.
        assert!((expect_a - 3.0 * (-0.5f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn synthesize_lambda_preset_fills_equation_14() {
        let body = parse("{\"preset\":\"lambda\",\"evaluate\":[]}").unwrap();
        let request = SynthesizeRequest::parse(&body).unwrap();
        assert_eq!(request.input, "moi");
        assert_eq!(request.coefficients.0, 15.0);
        assert_eq!(request.outcomes.0, "lysis");
        assert_eq!(request.thresholds, (55, 145));
        // Overrides apply on top of the preset.
        let body = parse("{\"preset\":\"lambda\",\"input_total\":8}").unwrap();
        assert_eq!(SynthesizeRequest::parse(&body).unwrap().input_total, 8);
    }
}
