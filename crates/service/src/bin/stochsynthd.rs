//! `stochsynthd` — the stochastic-synthesis simulation server.
//!
//! ```sh
//! stochsynthd --addr 127.0.0.1:8080 --workers 8 --queue 256 --cache 256
//! # ephemeral port for scripts/CI: bind port 0 and read the address back
//! stochsynthd --addr 127.0.0.1:0 --port-file /tmp/stochsynthd.addr
//! # fabric coordinator: shard /simulate ensembles across three workers
//! stochsynthd --addr 127.0.0.1:8080 \
//!     --fabric-worker 127.0.0.1:9001 --fabric-worker 127.0.0.1:9002 \
//!     --fabric-worker 127.0.0.1:9003 --shard-trials 1000
//! ```
//!
//! The process serves until `POST /shutdown` (loopback-only) drains it —
//! see the README's *Running as a service* and *Running as a fabric*
//! sections for the API.

use std::process::ExitCode;
use std::time::Duration;

use service::{serve, FabricConfig, ServiceConfig};

const USAGE: &str = "usage: stochsynthd [--addr HOST:PORT] [--workers N] [--queue N] \
                     [--cache N] [--max-body BYTES] [--port-file PATH] \
                     [--fabric-worker HOST:PORT]... [--shard-trials N] \
                     [--shard-attempts N] [--shard-backoff-ms MS] [--shard-timeout-s S] \
                     [--log-level SPEC] [--log-json] [--slow-request-ms MS]";

struct Args {
    config: ServiceConfig,
    port_file: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut config = ServiceConfig::default();
    let mut fabric = FabricConfig::default();
    let mut port_file = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--help" || flag == "-h" {
            return Err(USAGE.to_string());
        }
        // `--log-json` is the one boolean flag; everything else takes a
        // value.
        if flag == "--log-json" {
            obs::logger().set_json(true);
            continue;
        }
        let value = args
            .next()
            .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))?;
        match flag.as_str() {
            "--addr" => config.addr = value,
            "--log-level" => obs::logger()
                .set_level_spec(&value)
                .map_err(|e| format!("--log-level: {e}"))?,
            "--slow-request-ms" => {
                config.slow_request_ms = value
                    .parse()
                    .map_err(|_| format!("--slow-request-ms: invalid threshold `{value}`"))?
            }
            "--fabric-worker" => fabric.workers.push(value),
            "--shard-trials" => {
                fabric.shard_trials = value
                    .parse()
                    .map_err(|_| format!("--shard-trials: invalid count `{value}`"))?
            }
            "--shard-attempts" => {
                fabric.max_attempts = value
                    .parse()
                    .map_err(|_| format!("--shard-attempts: invalid count `{value}`"))?
            }
            "--shard-backoff-ms" => {
                fabric.backoff = Duration::from_millis(
                    value
                        .parse()
                        .map_err(|_| format!("--shard-backoff-ms: invalid delay `{value}`"))?,
                )
            }
            "--shard-timeout-s" => {
                fabric.request_timeout = Duration::from_secs(
                    value
                        .parse()
                        .map_err(|_| format!("--shard-timeout-s: invalid timeout `{value}`"))?,
                )
            }
            "--workers" => {
                config.workers = value
                    .parse()
                    .map_err(|_| format!("--workers: invalid count `{value}`"))?
            }
            "--queue" => {
                config.queue_capacity = value
                    .parse()
                    .map_err(|_| format!("--queue: invalid capacity `{value}`"))?
            }
            "--cache" => {
                config.cache_capacity = value
                    .parse()
                    .map_err(|_| format!("--cache: invalid capacity `{value}`"))?
            }
            "--max-body" => {
                config.max_body_bytes = value
                    .parse()
                    .map_err(|_| format!("--max-body: invalid size `{value}`"))?
            }
            "--port-file" => port_file = Some(value),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    // Sharding flags only matter once at least one worker is registered;
    // without workers the daemon stays a plain single-node service.
    if !fabric.workers.is_empty() {
        config.fabric = Some(fabric);
    }
    Ok(Args { config, port_file })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    let handle = match serve(args.config) {
        Ok(handle) => handle,
        Err(error) => {
            eprintln!("stochsynthd: cannot bind: {error}");
            return ExitCode::from(1);
        }
    };
    let addr = handle.addr();
    println!("stochsynthd listening on {addr}");
    if let Some(path) = args.port_file {
        // Write to a temp file and rename so watchers never read a partial
        // address.
        let tmp = format!("{path}.tmp");
        if let Err(error) =
            std::fs::write(&tmp, addr.to_string()).and_then(|()| std::fs::rename(&tmp, &path))
        {
            eprintln!("stochsynthd: cannot write --port-file {path}: {error}");
            return ExitCode::from(1);
        }
    }
    handle.join();
    println!("stochsynthd: drained, exiting");
    ExitCode::SUCCESS
}
