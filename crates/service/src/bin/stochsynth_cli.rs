//! `stochsynth-cli` — submit, poll and fetch jobs from a `stochsynthd`.
//!
//! ```sh
//! stochsynth-cli submit   --server 127.0.0.1:8080 --endpoint simulate --file req.json --wait
//! stochsynth-cli poll     --server 127.0.0.1:8080 --job 3
//! stochsynth-cli fetch    --server 127.0.0.1:8080 --job 3
//! stochsynth-cli cancel   --server 127.0.0.1:8080 --job 3
//! stochsynth-cli health   --server 127.0.0.1:8080
//! stochsynth-cli metrics  --server 127.0.0.1:8080
//! stochsynth-cli shutdown --server 127.0.0.1:8080 --deadline-ms 5000
//! ```
//!
//! Response bodies go to stdout; the `cache: hit|miss` header of
//! result-bearing responses goes to stderr as `cache: …` so scripts can
//! assert on it separately (the CI smoke job does exactly that). Exit
//! codes: 0 success, 1 HTTP-level failure, 2 usage/transport error.

use std::collections::HashMap;
use std::io::Read;
use std::process::ExitCode;

use service::{Client, HttpReply};

const USAGE: &str = "usage: stochsynth-cli <command> --server HOST:PORT [options]

commands:
  submit    --endpoint simulate|exact|synthesize --file REQ.json|- [--wait]
  poll      --job ID          block until the job is terminal, print its body
  fetch     --job ID          print the job's current status/result
  cancel    --job ID
  health
  metrics
  shutdown  [--deadline-ms N]";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, got `{}`\n{USAGE}", args[i]))?;
        // `--wait` is boolean; everything else takes a value.
        if flag == "wait" {
            flags.insert(flag.to_string(), "1".to_string());
            i += 1;
        } else {
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("--{flag} needs a value\n{USAGE}"))?;
            flags.insert(flag.to_string(), value.clone());
            i += 2;
        }
    }
    Ok(flags)
}

/// Prints a reply: body to stdout, cache header (if any) to stderr.
/// Returns the process exit code implied by the HTTP status.
fn print_reply(reply: &HttpReply) -> ExitCode {
    if let Some(cache) = reply.header("cache") {
        eprintln!("cache: {cache}");
    }
    if let Some(state) = reply.header("x-job-state") {
        eprintln!("job-state: {state}");
    }
    println!("{}", reply.body);
    if reply.is_success() {
        ExitCode::SUCCESS
    } else {
        eprintln!("HTTP {}", reply.status);
        ExitCode::from(1)
    }
}

fn read_request_file(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut body = String::new();
        std::io::stdin()
            .read_to_string(&mut body)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        Ok(body)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    }
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        return Err(USAGE.to_string());
    };
    if command == "--help" || command == "-h" || command == "help" {
        return Err(USAGE.to_string());
    }
    let flags = parse_flags(rest)?;
    let server = flags
        .get("server")
        .ok_or_else(|| format!("--server is required\n{USAGE}"))?;
    let client = Client::new(server.as_str())?;
    let job_path = || -> Result<String, String> {
        let id = flags
            .get("job")
            .ok_or_else(|| format!("--job is required\n{USAGE}"))?;
        Ok(format!("/jobs/{id}"))
    };

    let reply = match command.as_str() {
        "submit" => {
            let endpoint = flags
                .get("endpoint")
                .ok_or_else(|| format!("--endpoint is required\n{USAGE}"))?;
            if !matches!(endpoint.as_str(), "simulate" | "exact" | "synthesize") {
                return Err(format!("unknown endpoint `{endpoint}`\n{USAGE}"));
            }
            let file = flags
                .get("file")
                .ok_or_else(|| format!("--file is required\n{USAGE}"))?;
            let mut body = read_request_file(file)?;
            // `--wait` forces a synchronous submission regardless of the
            // request document, by wrapping it at the JSON level.
            if flags.contains_key("wait") {
                let parsed = service::json::parse(&body)
                    .map_err(|e| format!("{file}: invalid JSON: {e}"))?;
                let service::json::Json::Object(mut members) = parsed else {
                    return Err(format!("{file}: request must be a JSON object"));
                };
                members.retain(|(k, _)| k != "wait");
                members.push(("wait".to_string(), service::json::Json::Bool(true)));
                body = service::json::Json::Object(members).render();
            }
            client.post(&format!("/{endpoint}"), &body)?
        }
        "poll" => client.get(&format!("{}?wait=1", job_path()?))?,
        "fetch" => client.get(&job_path()?)?,
        "cancel" => client.delete(&job_path()?)?,
        "health" => client.get("/healthz")?,
        "metrics" => client.get("/metrics")?,
        "shutdown" => {
            let deadline = flags
                .get("deadline-ms")
                .map(String::as_str)
                .unwrap_or("5000");
            deadline
                .parse::<u64>()
                .map_err(|_| format!("--deadline-ms: invalid value `{deadline}`"))?;
            client.post("/shutdown", &format!("{{\"deadline_ms\":{deadline}}}"))?
        }
        other => return Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    Ok(print_reply(&reply))
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::from(2)
        }
    }
}
