//! `stochsynth-cli` — submit, poll and fetch jobs from a `stochsynthd`.
//!
//! ```sh
//! stochsynth-cli submit   --server 127.0.0.1:8080 --endpoint simulate --file req.json --wait
//! stochsynth-cli simulate --server 127.0.0.1:8080 --network "a -> b @ 1" \
//!                         --initial a=100 --stepper auto --trials 1000
//! stochsynth-cli check    --server 127.0.0.1:8080 --network "x -> h @ {k}\nx -> t @ 1" \
//!                         --initial x=1 --cap 1 --type reach_before \
//!                         --target h>=1 --competitor t>=1 --sweep k=1,3,9
//! stochsynth-cli poll     --server 127.0.0.1:8080 --job 3
//! stochsynth-cli fetch    --server 127.0.0.1:8080 --job 3
//! stochsynth-cli cancel   --server 127.0.0.1:8080 --job 3
//! stochsynth-cli health   --server 127.0.0.1:8080
//! stochsynth-cli metrics  --server 127.0.0.1:8080
//! stochsynth-cli fabric   --server 127.0.0.1:8080
//! stochsynth-cli fabric   --server 127.0.0.1:8080 --register 127.0.0.1:9004
//! stochsynth-cli shutdown --server 127.0.0.1:8080 --deadline-ms 5000
//! ```
//!
//! Response bodies go to stdout; the `cache: hit|miss` header of
//! result-bearing responses goes to stderr as `cache: …` so scripts can
//! assert on it separately (the CI smoke job does exactly that). Exit
//! codes: 0 success, 1 HTTP-level failure, 2 usage/transport error.

use std::collections::HashMap;
use std::io::Read;
use std::process::ExitCode;

use service::{Client, HttpReply};

const USAGE: &str = "usage: stochsynth-cli <command> --server HOST:PORT [options]

commands:
  submit    --endpoint simulate|exact|synthesize|check --file REQ.json|- [--wait]
  simulate  --network TEXT | --network-file PATH [--initial a=5,b=3]
            [--stepper direct|first-reaction|next-reaction|composition-rejection|tau-leaping|hybrid|auto]
            [--trials N] [--seed N]
            synchronous ensemble; with `auto` the resolved stepper goes to stderr
  check     --network TEXT | --network-file PATH [--initial a=5,b=3]
            --cap N [--policy strict|truncating]
            --type reach_before|reach_within|hitting_time|stationary
            --target SPECIES>=COUNT [--competitor SPECIES>=COUNT] [--window T1,T2]
            [--sweep PARAM=V1,V2,...]
            synchronous model-checker verdict; with --sweep the network's
            `{PARAM}` placeholder is swept over the grid
  poll      --job ID          block until the job is terminal, print its body
  fetch     --job ID          print the job's current status/result
  cancel    --job ID
  health
  metrics   [--format text]   JSON by default; text exposition with --format
  trace     --job ID          the job's recorded trace-span tree
  fabric    [--register HOST:PORT]   show coordinator fabric state, or
                                     register a worker first
  shutdown  [--deadline-ms N]

global options:
  --log-level SPEC   log floor, e.g. `debug` or `info,service::http=trace`
  --log-json         emit structured JSON log lines on stderr";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, got `{}`\n{USAGE}", args[i]))?;
        // `--wait` and `--log-json` are boolean; everything else takes a
        // value.
        if flag == "wait" || flag == "log-json" {
            flags.insert(flag.to_string(), "1".to_string());
            i += 1;
        } else {
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("--{flag} needs a value\n{USAGE}"))?;
            flags.insert(flag.to_string(), value.clone());
            i += 2;
        }
    }
    Ok(flags)
}

/// Prints a reply: body to stdout, cache header (if any) to stderr.
/// Returns the process exit code implied by the HTTP status.
fn print_reply(reply: &HttpReply) -> ExitCode {
    if let Some(cache) = reply.header("cache") {
        eprintln!("cache: {cache}");
    }
    if let Some(state) = reply.header("x-job-state") {
        eprintln!("job-state: {state}");
    }
    println!("{}", reply.body);
    if reply.is_success() {
        ExitCode::SUCCESS
    } else {
        eprintln!("HTTP {}", reply.status);
        ExitCode::from(1)
    }
}

fn read_request_file(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut body = String::new();
        std::io::stdin()
            .read_to_string(&mut body)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        Ok(body)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    }
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        return Err(USAGE.to_string());
    };
    if command == "--help" || command == "-h" || command == "help" {
        return Err(USAGE.to_string());
    }
    let flags = parse_flags(rest)?;
    if let Some(spec) = flags.get("log-level") {
        obs::logger()
            .set_level_spec(spec)
            .map_err(|e| format!("--log-level: {e}"))?;
    }
    if flags.contains_key("log-json") {
        obs::logger().set_json(true);
    }
    let server = flags
        .get("server")
        .ok_or_else(|| format!("--server is required\n{USAGE}"))?;
    let client = Client::new(server.as_str())?;
    let job_path = || -> Result<String, String> {
        let id = flags
            .get("job")
            .ok_or_else(|| format!("--job is required\n{USAGE}"))?;
        Ok(format!("/jobs/{id}"))
    };

    let reply = match command.as_str() {
        "submit" => {
            let endpoint = flags
                .get("endpoint")
                .ok_or_else(|| format!("--endpoint is required\n{USAGE}"))?;
            if !matches!(
                endpoint.as_str(),
                "simulate" | "exact" | "synthesize" | "check"
            ) {
                return Err(format!("unknown endpoint `{endpoint}`\n{USAGE}"));
            }
            let file = flags
                .get("file")
                .ok_or_else(|| format!("--file is required\n{USAGE}"))?;
            let mut body = read_request_file(file)?;
            // `--wait` forces a synchronous submission regardless of the
            // request document, by wrapping it at the JSON level.
            if flags.contains_key("wait") {
                let parsed = service::json::parse(&body)
                    .map_err(|e| format!("{file}: invalid JSON: {e}"))?;
                let service::json::Json::Object(mut members) = parsed else {
                    return Err(format!("{file}: request must be a JSON object"));
                };
                members.retain(|(k, _)| k != "wait");
                members.push(("wait".to_string(), service::json::Json::Bool(true)));
                body = service::json::Json::Object(members).render();
            }
            client.post(&format!("/{endpoint}"), &body)?
        }
        "simulate" => {
            let network = match (flags.get("network"), flags.get("network-file")) {
                (Some(text), None) => text.clone(),
                (None, Some(path)) => read_request_file(path)?,
                _ => {
                    return Err(format!(
                        "simulate needs exactly one of --network or --network-file\n{USAGE}"
                    ))
                }
            };
            let parse_u64 = |flag: &str, default: u64| -> Result<u64, String> {
                match flags.get(flag) {
                    None => Ok(default),
                    Some(value) => value
                        .parse::<u64>()
                        .map_err(|_| format!("--{flag}: invalid value `{value}`")),
                }
            };
            let trials = parse_u64("trials", 1_000)?;
            let seed = parse_u64("seed", 0)?;
            let stepper = flags.get("stepper").map(String::as_str).unwrap_or("direct");
            use service::json::Json;
            let mut members = vec![
                ("network".to_string(), Json::str(network)),
                ("method".to_string(), Json::str(stepper)),
                ("trials".to_string(), Json::count(trials)),
                ("seed".to_string(), Json::count(seed)),
                ("wait".to_string(), Json::Bool(true)),
            ];
            if let Some(initial) = flags.get("initial") {
                let mut counts = Vec::new();
                for pair in initial.split(',').filter(|p| !p.is_empty()) {
                    let (name, count) = pair.split_once('=').ok_or_else(|| {
                        format!("--initial: expected `species=count`, got `{pair}`")
                    })?;
                    let count = count
                        .parse::<u64>()
                        .map_err(|_| format!("--initial: invalid count in `{pair}`"))?;
                    counts.push((name.to_string(), Json::count(count)));
                }
                members.push(("initial".to_string(), Json::Object(counts)));
            }
            let reply = client.post("/simulate", &Json::Object(members).render())?;
            // Surface the portfolio's decision where scripts can see it
            // without parsing the result body.
            if let Some(resolved) = service::json::parse(&reply.body).ok().and_then(|body| {
                let value = body.get("resolved_stepper")?;
                value.as_str("resolved_stepper").ok().map(str::to_string)
            }) {
                eprintln!("resolved-stepper: {resolved}");
            }
            reply
        }
        "check" => {
            let network = match (flags.get("network"), flags.get("network-file")) {
                (Some(text), None) => text.clone(),
                (None, Some(path)) => read_request_file(path)?,
                _ => {
                    return Err(format!(
                        "check needs exactly one of --network or --network-file\n{USAGE}"
                    ))
                }
            };
            use service::json::Json;
            let parse_target = |flag: &str| -> Result<Json, String> {
                let spec = flags
                    .get(flag)
                    .ok_or_else(|| format!("--{flag} is required\n{USAGE}"))?;
                let (species, count) = spec
                    .split_once(">=")
                    .ok_or_else(|| format!("--{flag}: expected `species>=count`, got `{spec}`"))?;
                let count = count
                    .parse::<u64>()
                    .map_err(|_| format!("--{flag}: invalid count in `{spec}`"))?;
                Ok(Json::Object(vec![
                    ("species".to_string(), Json::str(species)),
                    ("at_least".to_string(), Json::count(count)),
                ]))
            };
            let kind = flags
                .get("type")
                .ok_or_else(|| format!("--type is required\n{USAGE}"))?;
            let mut property = vec![
                ("type".to_string(), Json::str(kind.clone())),
                ("target".to_string(), parse_target("target")?),
            ];
            if kind == "reach_before" {
                property.push(("competitor".to_string(), parse_target("competitor")?));
            }
            if kind == "reach_within" {
                let window = flags
                    .get("window")
                    .ok_or_else(|| format!("--window is required for reach_within\n{USAGE}"))?;
                let (t1, t2) = window
                    .split_once(',')
                    .ok_or_else(|| format!("--window: expected `t1,t2`, got `{window}`"))?;
                let parse_t = |t: &str| {
                    t.trim()
                        .parse::<f64>()
                        .map_err(|_| format!("--window: invalid time `{t}`"))
                };
                property.push((
                    "window".to_string(),
                    Json::Array(vec![Json::num(parse_t(t1)?), Json::num(parse_t(t2)?)]),
                ));
            }
            let cap = flags
                .get("cap")
                .ok_or_else(|| format!("--cap is required\n{USAGE}"))?;
            let cap = cap
                .parse::<u64>()
                .map_err(|_| format!("--cap: invalid value `{cap}`"))?;
            let policy = flags
                .get("policy")
                .map(String::as_str)
                .unwrap_or("truncating");
            let mut members = vec![
                ("network".to_string(), Json::str(network)),
                (
                    "bounds".to_string(),
                    Json::Object(vec![
                        ("policy".to_string(), Json::str(policy)),
                        ("default_cap".to_string(), Json::count(cap)),
                    ]),
                ),
                ("property".to_string(), Json::Object(property)),
                ("wait".to_string(), Json::Bool(true)),
            ];
            if let Some(initial) = flags.get("initial") {
                let mut counts = Vec::new();
                for pair in initial.split(',').filter(|p| !p.is_empty()) {
                    let (name, count) = pair.split_once('=').ok_or_else(|| {
                        format!("--initial: expected `species=count`, got `{pair}`")
                    })?;
                    let count = count
                        .parse::<u64>()
                        .map_err(|_| format!("--initial: invalid count in `{pair}`"))?;
                    counts.push((name.to_string(), Json::count(count)));
                }
                members.push(("initial".to_string(), Json::Object(counts)));
            }
            if let Some(sweep) = flags.get("sweep") {
                let (parameter, grid) = sweep
                    .split_once('=')
                    .ok_or_else(|| format!("--sweep: expected `param=v1,v2,...`, got `{sweep}`"))?;
                let mut values = Vec::new();
                for v in grid.split(',').filter(|v| !v.is_empty()) {
                    values.push(Json::num(
                        v.trim()
                            .parse::<f64>()
                            .map_err(|_| format!("--sweep: invalid grid value `{v}`"))?,
                    ));
                }
                if values.is_empty() {
                    return Err("--sweep: needs at least one grid value".to_string());
                }
                members.push((
                    "sweep".to_string(),
                    Json::Object(vec![
                        ("parameter".to_string(), Json::str(parameter)),
                        ("values".to_string(), Json::Array(values)),
                    ]),
                ));
            }
            client.post("/check", &Json::Object(members).render())?
        }
        "poll" => client.get(&format!("{}?wait=1", job_path()?))?,
        "fetch" => client.get(&job_path()?)?,
        "cancel" => client.delete(&job_path()?)?,
        "health" => client.get("/healthz")?,
        "metrics" => match flags.get("format").map(String::as_str) {
            Some("text") => client.get("/metrics?format=text")?,
            Some(other) => return Err(format!("unknown metrics format `{other}`\n{USAGE}")),
            None => client.get("/metrics")?,
        },
        "trace" => {
            let id = flags
                .get("job")
                .ok_or_else(|| format!("--job is required\n{USAGE}"))?;
            client.get(&format!("/trace/{id}"))?
        }
        "fabric" => match flags.get("register") {
            Some(worker) => client.post(
                "/fabric/workers",
                &format!("{{\"addr\":{}}}", service::json::Json::str(worker).render()),
            )?,
            None => client.get("/fabric")?,
        },
        "shutdown" => {
            let deadline = flags
                .get("deadline-ms")
                .map(String::as_str)
                .unwrap_or("5000");
            deadline
                .parse::<u64>()
                .map_err(|_| format!("--deadline-ms: invalid value `{deadline}`"))?;
            client.post("/shutdown", &format!("{{\"deadline_ms\":{deadline}}}"))?
        }
        other => return Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    Ok(print_reply(&reply))
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::from(2)
        }
    }
}
