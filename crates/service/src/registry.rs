//! The fabric coordinator's view of its worker pool.
//!
//! A [`WorkerRegistry`] tracks the daemons a coordinator may dispatch
//! shards to: their addresses, a consecutive-failure health counter, and
//! per-worker dispatch/cache counters surfaced through `GET /fabric`.
//! Registration stores only the address string — no connection is opened
//! until a shard is dispatched, so registering a worker that is still
//! booting (or temporarily down) is always allowed; health emerges from
//! dispatch outcomes.

use std::sync::Mutex;

/// A worker is skipped by round-robin selection after this many
/// *consecutive* dispatch failures; any success resets the counter. The
/// worker stays registered — if every worker trips the threshold the
/// selector falls back to round-robin over all of them rather than
/// refusing to dispatch, so a full-pool outage degrades to retries instead
/// of instant job failure.
const UNHEALTHY_AFTER: u32 = 3;

#[derive(Debug, Clone)]
struct WorkerEntry {
    addr: String,
    consecutive_failures: u32,
    dispatched: u64,
    completed: u64,
    failed: u64,
    cache_hits: u64,
    cache_misses: u64,
}

/// A point-in-time copy of one worker's registry entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerSnapshot {
    /// The worker's address, as registered.
    pub addr: String,
    /// `false` once [`UNHEALTHY_AFTER`] consecutive dispatches failed.
    pub healthy: bool,
    /// The current consecutive-failure count.
    pub consecutive_failures: u32,
    /// Shards handed to this worker (including ones that later failed).
    pub dispatched: u64,
    /// Shards this worker answered successfully.
    pub completed: u64,
    /// Dispatches that failed (connection, timeout or error status).
    pub failed: u64,
    /// Completed shards the worker answered from its own result cache.
    pub cache_hits: u64,
    /// Completed shards the worker had to compute.
    pub cache_misses: u64,
}

/// The set of workers a fabric coordinator dispatches shards to.
#[derive(Debug, Default)]
pub struct WorkerRegistry {
    workers: Mutex<Vec<WorkerEntry>>,
    /// Round-robin cursor (guarded by the same mutex discipline: only
    /// touched while `workers` is held).
    cursor: Mutex<usize>,
}

impl WorkerRegistry {
    /// Creates an empty registry.
    pub fn new() -> WorkerRegistry {
        WorkerRegistry::default()
    }

    /// Registers a worker address. Duplicate registrations are idempotent;
    /// returns `true` when the address was new.
    pub fn register(&self, addr: &str) -> bool {
        let mut workers = self.workers.lock().expect("registry lock");
        if workers.iter().any(|w| w.addr == addr) {
            return false;
        }
        workers.push(WorkerEntry {
            addr: addr.to_string(),
            consecutive_failures: 0,
            dispatched: 0,
            completed: 0,
            failed: 0,
            cache_hits: 0,
            cache_misses: 0,
        });
        true
    }

    /// Number of registered workers.
    pub fn len(&self) -> usize {
        self.workers.lock().expect("registry lock").len()
    }

    /// `true` when no workers are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Picks the next worker round-robin, skipping unhealthy entries. When
    /// *every* worker is unhealthy the skip is waived — the caller's retry
    /// loop is the backstop, and one of the workers may be back already.
    /// Returns `None` only for an empty registry. Counts a dispatch
    /// against the returned worker.
    pub fn next_worker(&self) -> Option<String> {
        let mut workers = self.workers.lock().expect("registry lock");
        if workers.is_empty() {
            return None;
        }
        let mut cursor = self.cursor.lock().expect("cursor lock");
        let n = workers.len();
        let all_unhealthy = workers
            .iter()
            .all(|w| w.consecutive_failures >= UNHEALTHY_AFTER);
        for offset in 0..n {
            let index = (*cursor + offset) % n;
            if all_unhealthy || workers[index].consecutive_failures < UNHEALTHY_AFTER {
                *cursor = (index + 1) % n;
                workers[index].dispatched += 1;
                return Some(workers[index].addr.clone());
            }
        }
        None
    }

    /// Records a successful shard on `addr`; `cache_hit` says whether the
    /// worker answered from its result cache.
    pub fn record_success(&self, addr: &str, cache_hit: bool) {
        let mut workers = self.workers.lock().expect("registry lock");
        if let Some(worker) = workers.iter_mut().find(|w| w.addr == addr) {
            worker.consecutive_failures = 0;
            worker.completed += 1;
            if cache_hit {
                worker.cache_hits += 1;
            } else {
                worker.cache_misses += 1;
            }
        }
    }

    /// Records a failed dispatch on `addr` (connect failure, timeout or
    /// error status).
    pub fn record_failure(&self, addr: &str) {
        let mut workers = self.workers.lock().expect("registry lock");
        if let Some(worker) = workers.iter_mut().find(|w| w.addr == addr) {
            worker.consecutive_failures += 1;
            worker.failed += 1;
        }
    }

    /// A point-in-time copy of every worker entry, in registration order.
    pub fn snapshot(&self) -> Vec<WorkerSnapshot> {
        self.workers
            .lock()
            .expect("registry lock")
            .iter()
            .map(|w| WorkerSnapshot {
                addr: w.addr.clone(),
                healthy: w.consecutive_failures < UNHEALTHY_AFTER,
                consecutive_failures: w.consecutive_failures,
                dispatched: w.dispatched,
                completed: w.completed,
                failed: w.failed,
                cache_hits: w.cache_hits,
                cache_misses: w.cache_misses,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let registry = WorkerRegistry::new();
        assert!(registry.register("127.0.0.1:9001"));
        assert!(!registry.register("127.0.0.1:9001"));
        assert!(registry.register("127.0.0.1:9002"));
        assert_eq!(registry.len(), 2);
    }

    #[test]
    fn round_robin_skips_unhealthy_workers() {
        let registry = WorkerRegistry::new();
        registry.register("a");
        registry.register("b");
        registry.register("c");
        // Trip `b` past the health threshold.
        for _ in 0..UNHEALTHY_AFTER {
            registry.record_failure("b");
        }
        let picks: Vec<String> = (0..4).map(|_| registry.next_worker().unwrap()).collect();
        assert!(!picks.contains(&"b".to_string()), "picks: {picks:?}");
        assert!(picks.contains(&"a".to_string()));
        assert!(picks.contains(&"c".to_string()));
        // One success re-admits it.
        registry.record_success("b", false);
        let picks: Vec<String> = (0..3).map(|_| registry.next_worker().unwrap()).collect();
        assert!(picks.contains(&"b".to_string()), "picks: {picks:?}");
    }

    #[test]
    fn all_unhealthy_falls_back_to_round_robin() {
        let registry = WorkerRegistry::new();
        registry.register("a");
        registry.register("b");
        for addr in ["a", "b"] {
            for _ in 0..UNHEALTHY_AFTER {
                registry.record_failure(addr);
            }
        }
        // Still dispatches — the retry loop, not the selector, decides when
        // to give up.
        assert!(registry.next_worker().is_some());
        let snapshot = registry.snapshot();
        assert!(snapshot.iter().all(|w| !w.healthy));
    }

    #[test]
    fn snapshot_reports_counters() {
        let registry = WorkerRegistry::new();
        registry.register("a");
        assert!(registry.next_worker().is_some());
        registry.record_success("a", true);
        assert!(registry.next_worker().is_some());
        registry.record_success("a", false);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.len(), 1);
        assert_eq!(snapshot[0].dispatched, 2);
        assert_eq!(snapshot[0].completed, 2);
        assert_eq!(snapshot[0].cache_hits, 1);
        assert_eq!(snapshot[0].cache_misses, 1);
        assert_eq!(snapshot[0].failed, 0);
        assert!(snapshot[0].healthy);
        assert!(registry.next_worker().is_some());
        registry.record_failure("a");
        let snapshot = registry.snapshot();
        assert_eq!(snapshot[0].failed, 1);
        assert_eq!(snapshot[0].consecutive_failures, 1);
    }

    #[test]
    fn empty_registry_yields_no_worker() {
        assert_eq!(WorkerRegistry::new().next_worker(), None);
    }
}
