//! The assembled service: endpoints wired to the scheduler, cache and
//! metrics, plus the [`serve`] entry point used by `stochsynthd`, the
//! examples and the integration tests.
//!
//! # Endpoints
//!
//! | Route | Behaviour |
//! |---|---|
//! | `POST /simulate` | Ensemble job (any [`StepperKind`](gillespie::StepperKind)); cached |
//! | `POST /exact` | CME first-passage / transient analysis; cached |
//! | `POST /synthesize` | The paper's synthesis pipeline + exact evaluation; cached |
//! | `POST /check` | Model-checker verdict (races, time windows, hitting times, stationary mass) or a parameter sweep of one; cached per grid point |
//! | `GET /jobs/:id` | Job status, or the result body once completed |
//! | `DELETE /jobs/:id` | Cancels a queued or running job |
//! | `GET /healthz` | Liveness |
//! | `GET /metrics` | Request, cache, scheduler and fabric counters |
//! | `GET /fabric` | Fabric counters, streaming statistics and worker pool |
//! | `POST /fabric/workers` | Loopback-only worker registration |
//! | `POST /shutdown` | Loopback-only graceful drain |
//!
//! A daemon started with fabric workers configured acts as a
//! **coordinator**: `/simulate` ensembles are split into trial-range
//! shards and dispatched to the pool (see [`crate::fabric`]). Any daemon
//! answers shard requests (`"range": [start, end)`) with a partial
//! document instead of a full report, which is also how workers cache
//! shards for federation.
//!
//! Result-bearing responses carry a `cache: hit|miss` header; bodies are
//! **byte-identical** between a fresh computation and its cached replay
//! (the cache stores rendered bytes, and the engine is deterministic for a
//! fixed seed), so the header is the *only* way to tell them apart.

use std::net::SocketAddr;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use gillespie::{Ensemble, EnsemblePartial, SimProfile};
use obs::log::{event, Level, Value};
use obs::trace::{span_id, Span, TraceContext, TraceSink};

use crate::api::{CheckRequest, ExactRequest, SimulateRequest, SynthesizeRequest};
use crate::cache::ResultCache;
use crate::error::ServiceError;
use crate::fabric::{Fabric, FabricConfig, ShardTrace, TRACE_HEADER};
use crate::http::{Method, Response};
use crate::json::{self, Json};
use crate::metrics::Metrics;
use crate::router::{RouteContext, Router};
use crate::scheduler::{
    ChunkOutput, JobId, JobSnapshot, JobState, JobWork, Scheduler, SchedulerTelemetry, SubmitError,
};
use crate::server::{Server, ServerHandle};

/// How long a `wait: true` submission blocks before degrading to a `202`
/// status response the client can poll.
const WAIT_TIMEOUT: Duration = Duration::from_secs(600);

/// Bounded capacity of the in-memory trace ring: old spans are dropped
/// once this many are held, so tracing every job forever cannot grow
/// memory.
const TRACE_CAPACITY: usize = 4096;

/// Configuration of one service instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Scheduler worker threads (0 = one per CPU).
    pub workers: usize,
    /// Bounded job-queue capacity.
    pub queue_capacity: usize,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Maximum accepted request-body size in bytes.
    pub max_body_bytes: usize,
    /// When set, this daemon coordinates a worker fabric: `/simulate`
    /// ensembles shard across the configured pool instead of running on
    /// the local scheduler threads.
    pub fabric: Option<FabricConfig>,
    /// Requests whose handler takes at least this many milliseconds emit a
    /// `slow_request` warning event. `0` disables the check.
    pub slow_request_ms: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            queue_capacity: 256,
            cache_capacity: 256,
            max_body_bytes: 1 << 20,
            fabric: None,
            slow_request_ms: 10_000,
        }
    }
}

/// The shared state behind every route handler.
pub struct App {
    scheduler: Scheduler,
    cache: ResultCache,
    metrics: Metrics,
    /// Bounded ring of trace spans; `GET /trace/:job_id` reads it.
    trace: Arc<TraceSink>,
    fabric: Option<Arc<Fabric>>,
    config: ServiceConfig,
    /// Set once the listener is bound; `/shutdown` self-connects through it
    /// to wake the accept loop.
    local_addr: OnceLock<SocketAddr>,
    /// Raised by `/shutdown`; checked by the accept loop.
    stopping: Mutex<bool>,
}

impl std::fmt::Debug for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "App({:?})", self.config)
    }
}

impl App {
    /// Creates the service state (scheduler workers start immediately).
    pub fn new(config: ServiceConfig) -> Arc<App> {
        let metrics = Metrics::new();
        let trace = Arc::new(TraceSink::new(TRACE_CAPACITY));
        // The scheduler reports queue waits into the shared histogram and
        // gauges, and the dequeue hook turns each wait into a
        // `schedule-wait` span under the job's root span. None of this
        // influences scheduling order — see the telemetry docs.
        let dequeue_sink = Arc::clone(&trace);
        let telemetry = SchedulerTelemetry {
            queue_wait_us: Arc::clone(&metrics.queue_wait_us),
            queue_depth: metrics.registry().gauge("scheduler_queue_depth"),
            running_jobs: metrics.registry().gauge("scheduler_running_jobs"),
            on_dequeue: Box::new(move |id, _label, wait| {
                let trace_id = id.to_string();
                let end_us = dequeue_sink.now_us();
                let wait_us = u64::try_from(wait.as_micros()).unwrap_or(u64::MAX);
                dequeue_sink.record(Span {
                    id: span_id(&trace_id, "schedule-wait", 0),
                    parent: Some(span_id(&trace_id, "job", 0)),
                    trace_id,
                    name: "schedule-wait".to_string(),
                    start_us: end_us.saturating_sub(wait_us),
                    end_us,
                    attrs: Vec::new(),
                });
            }),
        };
        let fabric = config
            .fabric
            .clone()
            .map(|f| Arc::new(Fabric::new(f).with_metrics(Arc::clone(metrics.registry()))));
        Arc::new(App {
            scheduler: Scheduler::with_telemetry(
                config.workers,
                config.queue_capacity,
                Some(telemetry),
            ),
            cache: ResultCache::new(config.cache_capacity),
            metrics,
            trace,
            fabric,
            config,
            local_addr: OnceLock::new(),
            stopping: Mutex::new(false),
        })
    }

    /// The scheduler, for embedders and tests.
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// The result cache, for embedders and tests.
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// The typed metrics handles, for embedders and tests.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The trace-span ring, for embedders and tests.
    pub fn trace(&self) -> &Arc<TraceSink> {
        &self.trace
    }

    /// The fabric coordinator, when this daemon was configured with one.
    pub fn fabric(&self) -> Option<&Arc<Fabric>> {
        self.fabric.as_ref()
    }

    /// Builds the route table for this app. Every handler is wrapped in
    /// [`instrumented`], which times it, maintains the per-endpoint
    /// request/status/latency series and emits the request log events.
    pub fn router(self: &Arc<App>) -> Router {
        let mut router = Router::new();
        let app = Arc::clone(self);
        router.route(
            Method::Post,
            "/simulate",
            instrumented(self, "simulate", move |ctx| submit_simulate(&app, ctx)),
        );
        let app = Arc::clone(self);
        router.route(
            Method::Post,
            "/exact",
            instrumented(self, "exact", move |ctx| submit_exact(&app, ctx)),
        );
        let app = Arc::clone(self);
        router.route(
            Method::Post,
            "/synthesize",
            instrumented(self, "synthesize", move |ctx| submit_synthesize(&app, ctx)),
        );
        let app = Arc::clone(self);
        router.route(
            Method::Post,
            "/check",
            instrumented(self, "check", move |ctx| submit_check(&app, ctx)),
        );
        let app = Arc::clone(self);
        router.route(
            Method::Get,
            "/jobs/:id",
            instrumented(self, "job_status", move |ctx| job_status(&app, ctx)),
        );
        let app = Arc::clone(self);
        router.route(
            Method::Delete,
            "/jobs/:id",
            instrumented(self, "job_cancel", move |ctx| job_cancel(&app, ctx)),
        );
        let app = Arc::clone(self);
        router.route(
            Method::Get,
            "/healthz",
            instrumented(self, "healthz", move |_| {
                let body = Json::object([
                    ("status", Json::str("ok")),
                    ("workers", Json::count(app.scheduler.stats().workers as u64)),
                    ("uptime_ms", Json::count(app.metrics.uptime_ms())),
                ]);
                Response::json(200, body.render())
            }),
        );
        let app = Arc::clone(self);
        router.route(
            Method::Get,
            "/metrics",
            instrumented(self, "metrics", move |ctx| {
                if ctx.query_param("format") == Some("text") {
                    Response::text(200, app.render_metrics_text())
                } else {
                    Response::json(200, app.render_metrics())
                }
            }),
        );
        let app = Arc::clone(self);
        router.route(
            Method::Get,
            "/trace/:id",
            instrumented(self, "trace", move |ctx| trace_query(&app, ctx)),
        );
        let app = Arc::clone(self);
        router.route(
            Method::Get,
            "/fabric",
            instrumented(self, "fabric", move |_| match &app.fabric {
                Some(fabric) => Response::json(200, fabric.render().render()),
                None => error_response(&ServiceError::bad_request(
                    "this daemon is not a fabric coordinator",
                )),
            }),
        );
        let app = Arc::clone(self);
        router.route(
            Method::Post,
            "/fabric/workers",
            instrumented(self, "fabric_workers", move |ctx| {
                register_worker(&app, ctx)
            }),
        );
        let app = Arc::clone(self);
        router.route(
            Method::Post,
            "/shutdown",
            instrumented(self, "shutdown", move |ctx| shutdown(&app, ctx)),
        );
        router
    }

    /// Counts one written response (every response, including framing-level
    /// rejections and router-level 404/405s — wired in as the server's
    /// [`ResponseObserver`](crate::ResponseObserver) by [`serve`]).
    pub fn count_response(&self, response: &Response) {
        self.metrics.requests.inc();
        if (400..500).contains(&response.status) {
            self.metrics.responses_4xx.inc();
        } else if response.status >= 500 {
            self.metrics.responses_5xx.inc();
        }
    }

    fn render_metrics(&self) -> String {
        let cache = self.cache.stats();
        let scheduler = self.scheduler.stats();
        // Per-endpoint breakdown for the four submission endpoints: request
        // count, status classes and service-time quantiles. Additive — the
        // legacy sections keep their exact shape.
        let endpoints: Vec<(&str, Json)> = ["simulate", "exact", "synthesize", "check"]
            .iter()
            .map(|name| {
                let series = self.metrics.endpoint(name);
                let latency = series.latency_us.snapshot();
                (
                    *name,
                    Json::object([
                        ("requests", Json::count(series.requests.get())),
                        ("responses_4xx", Json::count(series.responses_4xx.get())),
                        ("responses_5xx", Json::count(series.responses_5xx.get())),
                        (
                            "latency_us",
                            Json::object([
                                ("count", Json::count(latency.count)),
                                ("p50", Json::count(latency.p50())),
                                ("p90", Json::count(latency.p90())),
                                ("p99", Json::count(latency.p99())),
                                ("max", Json::count(latency.max)),
                            ]),
                        ),
                    ]),
                )
            })
            .collect();
        let mut members = Json::object([
            ("uptime_ms", Json::count(self.metrics.uptime_ms())),
            (
                "http",
                Json::object([
                    ("requests", Json::count(self.metrics.requests.get())),
                    (
                        "responses_4xx",
                        Json::count(self.metrics.responses_4xx.get()),
                    ),
                    (
                        "responses_5xx",
                        Json::count(self.metrics.responses_5xx.get()),
                    ),
                    (
                        "simulate_requests",
                        Json::count(self.metrics.simulate_requests.get()),
                    ),
                    (
                        "exact_requests",
                        Json::count(self.metrics.exact_requests.get()),
                    ),
                    (
                        "synthesize_requests",
                        Json::count(self.metrics.synthesize_requests.get()),
                    ),
                    (
                        "check_requests",
                        Json::count(self.metrics.check_requests.get()),
                    ),
                ]),
            ),
            ("endpoints", Json::object(endpoints)),
            (
                "auto_resolutions",
                Json::object([
                    (
                        "direct",
                        Json::count(self.metrics.auto_resolved_direct.get()),
                    ),
                    (
                        "first_reaction",
                        Json::count(self.metrics.auto_resolved_first_reaction.get()),
                    ),
                    (
                        "next_reaction",
                        Json::count(self.metrics.auto_resolved_next_reaction.get()),
                    ),
                    (
                        "composition_rejection",
                        Json::count(self.metrics.auto_resolved_composition_rejection.get()),
                    ),
                    (
                        "tau_leaping",
                        Json::count(self.metrics.auto_resolved_tau_leaping.get()),
                    ),
                    (
                        "hybrid",
                        Json::count(self.metrics.auto_resolved_hybrid.get()),
                    ),
                ]),
            ),
            (
                "cache",
                Json::object([
                    ("entries", Json::count(cache.entries as u64)),
                    ("capacity", Json::count(cache.capacity as u64)),
                    ("hits", Json::count(cache.hits)),
                    ("misses", Json::count(cache.misses)),
                    ("evictions", Json::count(cache.evictions)),
                ]),
            ),
            (
                "scheduler",
                Json::object([
                    ("workers", Json::count(scheduler.workers as u64)),
                    ("queued", Json::count(scheduler.queued as u64)),
                    ("running", Json::count(scheduler.running as u64)),
                    ("completed", Json::count(scheduler.completed)),
                    ("failed", Json::count(scheduler.failed)),
                    ("cancelled", Json::count(scheduler.cancelled)),
                    ("rejected", Json::count(scheduler.rejected)),
                    ("steals", Json::count(scheduler.steals)),
                ]),
            ),
        ]);
        if let Some(fabric) = &self.fabric {
            if let Json::Object(m) = &mut members {
                m.push(("fabric".to_string(), fabric.render()));
            }
        }
        members.render()
    }

    /// The Prometheus-style text exposition (`GET /metrics?format=text`):
    /// every registry series, plus the cache, scheduler and fabric counters
    /// (owned by their subsystems, not the registry) appended as gauges.
    fn render_metrics_text(&self) -> String {
        let cache = self.cache.stats();
        let scheduler = self.scheduler.stats();
        let mut extra: Vec<(String, f64)> = vec![
            (
                "service_uptime_ms".to_string(),
                self.metrics.uptime_ms() as f64,
            ),
            ("cache_entries".to_string(), cache.entries as f64),
            ("cache_capacity".to_string(), cache.capacity as f64),
            ("cache_hits_total".to_string(), cache.hits as f64),
            ("cache_misses_total".to_string(), cache.misses as f64),
            ("cache_evictions_total".to_string(), cache.evictions as f64),
            ("scheduler_workers".to_string(), scheduler.workers as f64),
            (
                "scheduler_jobs_completed_total".to_string(),
                scheduler.completed as f64,
            ),
            (
                "scheduler_jobs_failed_total".to_string(),
                scheduler.failed as f64,
            ),
            (
                "scheduler_jobs_cancelled_total".to_string(),
                scheduler.cancelled as f64,
            ),
            (
                "scheduler_jobs_rejected_total".to_string(),
                scheduler.rejected as f64,
            ),
            (
                "scheduler_steals_total".to_string(),
                scheduler.steals as f64,
            ),
        ];
        if let Some(fabric) = &self.fabric {
            let stats = fabric.stats();
            extra.extend([
                (
                    "fabric_shards_dispatched_total".to_string(),
                    stats.shards_dispatched as f64,
                ),
                (
                    "fabric_shards_completed_total".to_string(),
                    stats.shards_completed as f64,
                ),
                (
                    "fabric_shard_retries_total".to_string(),
                    stats.shard_retries as f64,
                ),
                (
                    "fabric_worker_failures_total".to_string(),
                    stats.worker_failures as f64,
                ),
                (
                    "fabric_remote_cache_hits_total".to_string(),
                    stats.remote_cache_hits as f64,
                ),
                (
                    "fabric_remote_cache_misses_total".to_string(),
                    stats.remote_cache_misses as f64,
                ),
            ]);
        }
        self.metrics.registry().render_text(&extra)
    }
}

/// Wraps a route handler with the per-endpoint telemetry: service-time
/// histogram, request/status counters, a debug-level `request` event, and
/// a warn-level `slow_request` event when the handler ran longer than
/// [`ServiceConfig::slow_request_ms`]. Purely observational — the wrapped
/// handler's response passes through untouched.
fn instrumented(
    app: &Arc<App>,
    endpoint: &'static str,
    handler: impl Fn(&RouteContext<'_>) -> Response + Send + Sync + 'static,
) -> impl Fn(&RouteContext<'_>) -> Response + Send + Sync + 'static {
    let app = Arc::clone(app);
    let series = app.metrics.endpoint(endpoint);
    move |ctx| {
        let started = Instant::now();
        let response = handler(ctx);
        let elapsed = started.elapsed();
        series.observe(response.status, elapsed);
        let elapsed_us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        event(
            Level::Debug,
            "service::http",
            "request",
            &[
                ("endpoint", Value::str(endpoint)),
                ("status", Value::U64(u64::from(response.status))),
                ("elapsed_us", Value::U64(elapsed_us)),
            ],
        );
        let threshold_ms = app.config.slow_request_ms;
        if threshold_ms > 0 && elapsed >= Duration::from_millis(threshold_ms) {
            event(
                Level::Warn,
                "service::http",
                "slow_request",
                &[
                    ("endpoint", Value::str(endpoint)),
                    ("status", Value::U64(u64::from(response.status))),
                    ("elapsed_ms", Value::U64(elapsed_us / 1_000)),
                    ("threshold_ms", Value::U64(threshold_ms)),
                ],
            );
        }
        response
    }
}

/// `GET /trace/:id` — the recorded span tree of one job, ordered by start
/// time. Span ids render as 16-hex-digit strings (they are 64-bit hashes,
/// too wide for JSON's f64 numbers).
fn trace_query(app: &Arc<App>, ctx: &RouteContext<'_>) -> Response {
    let id = match parse_job_id(ctx) {
        Ok(id) => id,
        Err(error) => return error_response(&error),
    };
    let trace_id = id.to_string();
    let spans = app.trace.spans(&trace_id);
    if spans.is_empty() {
        return error_response(&ServiceError::UnknownJob { id });
    }
    let rendered: Vec<Json> = spans
        .iter()
        .map(|span| {
            let attrs: Vec<Json> = span
                .attrs
                .iter()
                .map(|(k, v)| {
                    Json::object([
                        ("key", Json::str(k.clone())),
                        ("value", Json::str(v.clone())),
                    ])
                })
                .collect();
            Json::object([
                ("id", Json::str(format!("{:016x}", span.id))),
                (
                    "parent",
                    match span.parent {
                        Some(parent) => Json::str(format!("{parent:016x}")),
                        None => Json::Null,
                    },
                ),
                ("name", Json::str(span.name.clone())),
                ("start_us", Json::count(span.start_us)),
                ("end_us", Json::count(span.end_us)),
                ("attrs", Json::Array(attrs)),
            ])
        })
        .collect();
    Response::json(
        200,
        Json::object([
            ("trace", Json::str(trace_id)),
            ("spans", Json::Array(rendered)),
        ])
        .render(),
    )
}

/// Renders a [`ServiceError`] as its HTTP response.
fn error_response(error: &ServiceError) -> Response {
    Response::json(
        error.status(),
        Json::object([("error", Json::str(error.to_string()))]).render(),
    )
}

/// Renders a job-status body (for every non-completed state).
fn status_body(snapshot: &JobSnapshot) -> String {
    let mut members = vec![
        ("kind", Json::str("job")),
        ("job", Json::count(snapshot.id)),
        ("state", Json::str(snapshot.state.as_str())),
        ("label", Json::str(snapshot.label.clone())),
        ("priority", Json::count(u64::from(snapshot.priority))),
        ("progress", Json::num(snapshot.progress())),
        (
            "completed_chunks",
            Json::count(snapshot.completed_chunks as u64),
        ),
        ("total_chunks", Json::count(snapshot.total_chunks as u64)),
    ];
    if let Some(error) = &snapshot.error {
        members.push(("error", Json::str(error.clone())));
    }
    if let Some(index) = snapshot.completion_index {
        members.push(("completion_index", Json::count(index)));
    }
    Json::object(members).render()
}

/// The response for a job snapshot: the raw result body for completed jobs,
/// a status document otherwise. Every variant carries an `x-job-state`
/// header; result bodies add `cache: miss` (they were computed, not
/// replayed).
fn snapshot_response(snapshot: &JobSnapshot) -> Response {
    let state = snapshot.state.as_str();
    match snapshot.state {
        JobState::Completed => Response::json(
            200,
            snapshot
                .result
                .clone()
                .expect("completed jobs have results"),
        )
        .header("cache", "miss")
        .header("x-job-state", state),
        JobState::Failed => Response::json(500, status_body(snapshot)).header("x-job-state", state),
        _ => Response::json(200, status_body(snapshot)).header("x-job-state", state),
    }
}

/// Shared submit flow: consult the cache (timing the lookup), otherwise
/// schedule the work `build` constructs for the allocated job id and either
/// wait for it (`wait: true`) or hand back a `202`.
///
/// `build` receives the job id so chunk closures can carry the trace id
/// (the id, as text); the built work's `finish` is wrapped to record the
/// trace's root `job` span when the job settles. Cache hits schedule
/// nothing and record no spans: the replayed bytes never went near the
/// scheduler.
fn submit_cached_job(
    app: &Arc<App>,
    label: &'static str,
    key: String,
    priority: u8,
    wait: bool,
    build: impl FnOnce(JobId) -> JobWork,
) -> Response {
    let lookup_started = Instant::now();
    let cached = app.cache.lookup(&key);
    app.metrics
        .cache_lookup_us
        .record(u64::try_from(lookup_started.elapsed().as_micros()).unwrap_or(u64::MAX));
    if let Some(body) = cached {
        return Response::json(200, body)
            .header("cache", "hit")
            .header("x-job-state", "completed");
    }
    let submitted_us = app.trace.now_us();
    let root_app = Arc::clone(app);
    let id = match app.scheduler.submit_with(priority, label, |id| {
        let mut work = build(id);
        let sink = Arc::clone(&root_app.trace);
        let trace_id = id.to_string();
        let inner = work.finish;
        work.finish = Box::new(move |outputs| {
            let result = inner(outputs);
            sink.record(Span {
                id: span_id(&trace_id, "job", 0),
                parent: None,
                trace_id: trace_id.clone(),
                name: "job".to_string(),
                start_us: submitted_us,
                end_us: sink.now_us(),
                attrs: vec![
                    ("label".to_string(), label.to_string()),
                    (
                        "outcome".to_string(),
                        if result.is_ok() { "ok" } else { "error" }.to_string(),
                    ),
                ],
            });
            result
        });
        work
    }) {
        Ok(id) => id,
        Err(SubmitError::QueueFull { capacity }) => {
            return error_response(&ServiceError::Busy { capacity })
        }
        Err(SubmitError::Draining) => {
            return error_response(&ServiceError::Unavailable {
                message: "server is draining".to_string(),
            })
        }
    };
    if wait {
        if let Some(snapshot) = app.scheduler.wait_terminal(id, WAIT_TIMEOUT) {
            return snapshot_response(&snapshot);
        }
    }
    let snapshot = app.scheduler.status(id).expect("job was just submitted");
    Response::json(202, status_body(&snapshot))
        .header("cache", "miss")
        .header("x-job-state", snapshot.state.as_str())
}

/// Parses the request body as JSON, mapping failures to a 400.
fn parse_body(ctx: &RouteContext<'_>) -> Result<Json, ServiceError> {
    json::parse(&ctx.request.body)
        .map_err(|e| ServiceError::bad_request(format!("invalid JSON body: {e}")))
}

/// `POST /fabric/workers` — registers a worker address with the
/// coordinator at run time (loopback-only, like `/shutdown`: the pool an
/// operator dispatches compute to is operator configuration, not a public
/// surface).
fn register_worker(app: &Arc<App>, ctx: &RouteContext<'_>) -> Response {
    if !ctx.peer.ip().is_loopback() {
        return error_response(&ServiceError::Forbidden {
            message: "POST /fabric/workers is only accepted from loopback".to_string(),
        });
    }
    let Some(fabric) = &app.fabric else {
        return error_response(&ServiceError::bad_request(
            "this daemon is not a fabric coordinator",
        ));
    };
    let addr = match parse_body(ctx).and_then(|body| {
        body.get("addr")
            .ok_or_else(|| ServiceError::bad_request("missing `addr`"))?
            .as_str("addr")
            .map(str::to_string)
            .map_err(ServiceError::bad_request)
    }) {
        Ok(addr) => addr,
        Err(error) => return error_response(&error),
    };
    let registered = fabric.registry().register(&addr);
    Response::json(
        200,
        Json::object([
            ("addr", Json::str(addr)),
            ("registered", Json::Bool(registered)),
            ("workers", Json::count(fabric.registry().len() as u64)),
        ])
        .render(),
    )
}

fn submit_simulate(app: &Arc<App>, ctx: &RouteContext<'_>) -> Response {
    // Timestamps for the `parse` and `classify` trace spans are captured
    // here, but the spans are recorded later, inside the submit `build`
    // callback — the trace id is the job id, which does not exist yet.
    let parse_started_us = app.trace.now_us();
    let body = parse_body(ctx);
    let parse_done_us = app.trace.now_us();
    let request = match body.and_then(|body| SimulateRequest::parse(&body)) {
        Ok(request) => Arc::new(request),
        Err(error) => return error_response(&error),
    };
    let classify_done_us = app.trace.now_us();
    // Count what the portfolio decided (even when the cache answers the
    // request): the per-kind histogram in `/metrics` is how operators see
    // which regimes their workloads land in.
    if request.method == gillespie::StepperKind::Auto {
        app.metrics.auto_resolution_counter(request.resolved).inc();
    }
    let key = request.cache_key();

    // A shard request (`"range": [start, end)`) runs its trial range as
    // one chunk and answers with a partial wire document — the worker side
    // of the fabric. The partial is cached under the range-suffixed key,
    // so a coordinator retrying or re-dispatching a shard replays it
    // byte-for-byte. When the coordinator stamped a trace header, the
    // execution is recorded as a `shard-exec` span under the
    // *coordinator's* trace id (in this worker's own sink).
    if let Some((start, end)) = request.range {
        let context = ctx
            .request
            .header(TRACE_HEADER)
            .and_then(TraceContext::parse);
        let run_request = Arc::clone(&request);
        let run_app = Arc::clone(app);
        let run_chunk = move |_: usize, cancel: &gillespie::engine::CancelToken| {
            let started_us = run_app.trace.now_us();
            let classifier = run_request.classifier().map_err(|e| e.to_string())?;
            let ensemble = Ensemble::new(&run_request.crn, run_request.initial.clone(), classifier)
                .options(run_request.ensemble_options());
            let mut profile = SimProfile::default();
            let partial = ensemble
                .run_range_profiled(start, end, cancel, &mut profile)
                .map_err(|e| e.to_string())?;
            run_app
                .metrics
                .record_profile(run_request.resolved.name(), &profile);
            if let Some(context) = &context {
                run_app.trace.record(Span {
                    trace_id: context.trace_id.clone(),
                    id: span_id(&context.trace_id, "shard-exec", start),
                    parent: Some(context.parent),
                    name: "shard-exec".to_string(),
                    start_us: started_us,
                    end_us: run_app.trace.now_us(),
                    attrs: vec![
                        ("range".to_string(), format!("[{start}, {end})")),
                        ("steps".to_string(), profile.steps.to_string()),
                        (
                            "propensity_evals".to_string(),
                            profile.propensity_evals.to_string(),
                        ),
                    ],
                });
            }
            Ok(ChunkOutput::Body(SimulateRequest::render_partial(&partial)))
        };
        let finish_key = key.clone();
        let finish_app = Arc::clone(app);
        let finish = move |mut outputs: Vec<ChunkOutput>| {
            let ChunkOutput::Body(body) = outputs.remove(0) else {
                unreachable!("shard chunks produce bodies")
            };
            finish_app.cache.insert(&finish_key, &body);
            Ok(body)
        };
        let (priority, wait) = (request.priority, request.wait);
        return submit_cached_job(app, "simulate-shard", key, priority, wait, move |_| {
            JobWork {
                chunks: 1,
                run_chunk: Box::new(run_chunk),
                finish: Box::new(finish),
            }
        });
    }

    // Chunk the ensemble. On a coordinator the chunks are fabric shards
    // dispatched to the worker pool; locally they are trial ranges sized
    // for ~4 tasks per scheduler worker so stealing has something to
    // steal, without shattering small ensembles into per-trial tasks.
    let fabric = app
        .fabric
        .as_ref()
        .filter(|f| !f.registry().is_empty())
        .cloned();
    let (priority, wait) = (request.priority, request.wait);
    // Read the worker count up front: the build callback below runs under
    // the scheduler lock, where calling back into `scheduler.stats()`
    // would deadlock.
    let scheduler_workers = app.scheduler.stats().workers as u64;
    let build_app = Arc::clone(app);
    let finish_key = key.clone();
    submit_cached_job(app, "simulate", key, priority, wait, move |id| {
        let app = build_app;
        let sink = Arc::clone(app.trace());
        let trace_id = id.to_string();
        let root = span_id(&trace_id, "job", 0);
        sink.record(Span {
            trace_id: trace_id.clone(),
            id: span_id(&trace_id, "parse", 0),
            parent: Some(root),
            name: "parse".to_string(),
            start_us: parse_started_us,
            end_us: parse_done_us,
            attrs: Vec::new(),
        });
        sink.record(Span {
            trace_id: trace_id.clone(),
            id: span_id(&trace_id, "classify", 0),
            parent: Some(root),
            name: "classify".to_string(),
            start_us: parse_done_us,
            end_us: classify_done_us,
            attrs: vec![
                ("method".to_string(), request.method.name().to_string()),
                ("resolved".to_string(), request.resolved.name().to_string()),
            ],
        });

        type ChunkRunner = Box<
            dyn Fn(usize, &gillespie::engine::CancelToken) -> Result<ChunkOutput, String>
                + Send
                + Sync,
        >;
        let (chunks, run_chunk): (usize, ChunkRunner) = match fabric {
            Some(fabric) => {
                let plan = fabric.plan(request.trials);
                let run_request = Arc::clone(&request);
                let chunks = plan.len();
                let run_sink = Arc::clone(&sink);
                let run_trace_id = trace_id.clone();
                let run_chunk = move |index: usize, cancel: &gillespie::engine::CancelToken| {
                    let shard_span = span_id(&run_trace_id, "shard", index as u64);
                    let shard_trace = ShardTrace {
                        sink: Arc::clone(&run_sink),
                        trace_id: run_trace_id.clone(),
                        parent: shard_span,
                        index: index as u64,
                    };
                    let started_us = run_sink.now_us();
                    let result =
                        fabric.run_shard(&run_request, plan[index], cancel, Some(&shard_trace));
                    run_sink.record(Span {
                        trace_id: run_trace_id.clone(),
                        id: shard_span,
                        parent: Some(span_id(&run_trace_id, "job", 0)),
                        name: "shard".to_string(),
                        start_us: started_us,
                        end_us: run_sink.now_us(),
                        attrs: vec![
                            (
                                "range".to_string(),
                                format!("[{}, {})", plan[index].0, plan[index].1),
                            ),
                            (
                                "outcome".to_string(),
                                if result.is_ok() { "ok" } else { "error" }.to_string(),
                            ),
                        ],
                    });
                    Ok(ChunkOutput::Partial(Box::new(result?)))
                };
                (chunks, Box::new(run_chunk) as _)
            }
            None => {
                let target_chunks = (scheduler_workers * 4).clamp(1, request.trials);
                let chunk_size = request.trials.div_ceil(target_chunks);
                let chunks = request.trials.div_ceil(chunk_size) as usize;
                let run_request = Arc::clone(&request);
                let trials = request.trials;
                let run_app = Arc::clone(&app);
                let run_sink = Arc::clone(&sink);
                let run_trace_id = trace_id.clone();
                let run_chunk = move |index: usize, cancel: &gillespie::engine::CancelToken| {
                    let start = index as u64 * chunk_size;
                    let end = (start + chunk_size).min(trials);
                    let started_us = run_sink.now_us();
                    let classifier = run_request.classifier().map_err(|e| e.to_string())?;
                    let ensemble =
                        Ensemble::new(&run_request.crn, run_request.initial.clone(), classifier)
                            .options(run_request.ensemble_options());
                    let mut profile = SimProfile::default();
                    let partial = ensemble
                        .run_range_profiled(start, end, cancel, &mut profile)
                        .map_err(|e| e.to_string())?;
                    run_app
                        .metrics
                        .record_profile(run_request.resolved.name(), &profile);
                    run_sink.record(Span {
                        trace_id: run_trace_id.clone(),
                        id: span_id(&run_trace_id, "shard", index as u64),
                        parent: Some(span_id(&run_trace_id, "job", 0)),
                        name: "shard".to_string(),
                        start_us: started_us,
                        end_us: run_sink.now_us(),
                        attrs: vec![
                            ("range".to_string(), format!("[{start}, {end})")),
                            ("steps".to_string(), profile.steps.to_string()),
                            (
                                "propensity_evals".to_string(),
                                profile.propensity_evals.to_string(),
                            ),
                        ],
                    });
                    Ok(ChunkOutput::Partial(Box::new(partial)))
                };
                (chunks, Box::new(run_chunk) as _)
            }
        };

        let finish_request = Arc::clone(&request);
        let finish_app = Arc::clone(&app);
        let finish_trace_id = trace_id;
        let finish = move |outputs: Vec<ChunkOutput>| {
            let merge_started_us = finish_app.trace.now_us();
            let partials: Vec<EnsemblePartial> = outputs
                .into_iter()
                .map(|output| match output {
                    ChunkOutput::Partial(partial) => *partial,
                    ChunkOutput::Body(_) => unreachable!("simulate chunks produce partials"),
                })
                .collect();
            let merged = partials.len();
            let classifier = finish_request.classifier().map_err(|e| e.to_string())?;
            let ensemble = Ensemble::new(
                &finish_request.crn,
                finish_request.initial.clone(),
                classifier,
            )
            .options(finish_request.ensemble_options());
            let report = ensemble.merge(partials).map_err(|e| e.to_string())?;
            let body = finish_request.render_report(&report);
            finish_app.cache.insert(&finish_key, &body);
            finish_app.trace.record(Span {
                trace_id: finish_trace_id.clone(),
                id: span_id(&finish_trace_id, "merge", 0),
                parent: Some(span_id(&finish_trace_id, "job", 0)),
                name: "merge".to_string(),
                start_us: merge_started_us,
                end_us: finish_app.trace.now_us(),
                attrs: vec![("partials".to_string(), merged.to_string())],
            });
            Ok(body)
        };

        JobWork {
            chunks,
            run_chunk,
            finish: Box::new(finish),
        }
    })
}

/// Builds the single-chunk job for an analysis endpoint whose work is one
/// opaque computation (`/exact`, `/synthesize`).
fn analysis_job(
    app: &Arc<App>,
    key: String,
    execute: impl Fn() -> Result<String, ServiceError> + Send + Sync + 'static,
) -> JobWork {
    let finish_app = Arc::clone(app);
    JobWork {
        chunks: 1,
        run_chunk: Box::new(move |_, _| {
            execute().map(ChunkOutput::Body).map_err(|e| e.to_string())
        }),
        finish: Box::new(move |mut outputs| {
            let ChunkOutput::Body(body) = outputs.remove(0) else {
                unreachable!("analysis chunks produce bodies")
            };
            finish_app.cache.insert(&key, &body);
            Ok(body)
        }),
    }
}

fn submit_exact(app: &Arc<App>, ctx: &RouteContext<'_>) -> Response {
    let request = match parse_body(ctx).and_then(|body| ExactRequest::parse(&body)) {
        Ok(request) => request,
        Err(error) => return error_response(&error),
    };
    let key = request.cache_key();
    let (priority, wait) = (request.priority, request.wait);
    let work = analysis_job(app, key.clone(), move || request.execute());
    submit_cached_job(app, "exact", key, priority, wait, move |_| work)
}

fn submit_synthesize(app: &Arc<App>, ctx: &RouteContext<'_>) -> Response {
    let request = match parse_body(ctx).and_then(|body| SynthesizeRequest::parse(&body)) {
        Ok(request) => request,
        Err(error) => return error_response(&error),
    };
    let key = request.cache_key();
    let (priority, wait) = (request.priority, request.wait);
    let work = analysis_job(app, key.clone(), move || request.execute());
    submit_cached_job(app, "synthesize", key, priority, wait, move |_| work)
}

fn submit_check(app: &Arc<App>, ctx: &RouteContext<'_>) -> Response {
    let request = match parse_body(ctx).and_then(|body| CheckRequest::parse(&body)) {
        Ok(request) => request,
        Err(error) => return error_response(&error),
    };
    let (priority, wait) = (request.priority, request.wait);
    let key = request.cache_key();
    if request.sweep.is_none() {
        let point = request
            .points
            .into_iter()
            .next()
            .expect("a sweepless request has exactly one point");
        let work = analysis_job(app, key.clone(), move || point.execute());
        return submit_cached_job(app, "check", key, priority, wait, move |_| work);
    }

    // A sweep runs each grid point as its own chunk — locally on the
    // scheduler threads, or fanned out to `/check` on the worker pool when
    // this daemon coordinates a fabric. Every point consults (and fills)
    // the per-point cache before the sweep document is assembled, so
    // re-gridded sweeps and single-point replays reuse each other's
    // solves, on top of the whole-document key.
    let request = Arc::new(request);
    let chunks = request.points.len();
    let fabric = app
        .fabric
        .as_ref()
        .filter(|f| !f.registry().is_empty())
        .cloned();
    let run_request = Arc::clone(&request);
    let run_app = Arc::clone(app);
    let run_chunk = move |index: usize, cancel: &gillespie::engine::CancelToken| {
        let point = &run_request.points[index];
        let point_key = point.cache_key();
        if let Some(body) = run_app.cache.lookup(&point_key) {
            return Ok(ChunkOutput::Body(body));
        }
        let body = match &fabric {
            Some(fabric) => fabric.run_check(point, index, cancel)?,
            None => point.execute().map_err(|e| e.to_string())?,
        };
        run_app.cache.insert(&point_key, &body);
        Ok(ChunkOutput::Body(body))
    };

    let finish_request = Arc::clone(&request);
    let finish_app = Arc::clone(app);
    let finish_key = key.clone();
    let finish = move |outputs: Vec<ChunkOutput>| {
        let bodies: Vec<String> = outputs
            .into_iter()
            .map(|output| match output {
                ChunkOutput::Body(body) => body,
                ChunkOutput::Partial(_) => unreachable!("check chunks produce bodies"),
            })
            .collect();
        let body = finish_request
            .render_sweep(&bodies)
            .map_err(|e| e.to_string())?;
        finish_app.cache.insert(&finish_key, &body);
        Ok(body)
    };

    submit_cached_job(app, "check-sweep", key, priority, wait, move |_| JobWork {
        chunks,
        run_chunk: Box::new(run_chunk),
        finish: Box::new(finish),
    })
}

fn parse_job_id(ctx: &RouteContext<'_>) -> Result<JobId, ServiceError> {
    ctx.param("id")
        .and_then(|id| id.parse::<JobId>().ok())
        .ok_or_else(|| ServiceError::bad_request("job ids are positive integers"))
}

fn job_status(app: &Arc<App>, ctx: &RouteContext<'_>) -> Response {
    let id = match parse_job_id(ctx) {
        Ok(id) => id,
        Err(error) => return error_response(&error),
    };
    // `?wait=1` turns the poll into a blocking wait (used by the CLI).
    if ctx.query_param("wait").is_some() {
        if let Some(snapshot) = app.scheduler.wait_terminal(id, WAIT_TIMEOUT) {
            return snapshot_response(&snapshot);
        }
    }
    match app.scheduler.status(id) {
        Some(snapshot) => snapshot_response(&snapshot),
        None => error_response(&ServiceError::UnknownJob { id }),
    }
}

fn job_cancel(app: &Arc<App>, ctx: &RouteContext<'_>) -> Response {
    let id = match parse_job_id(ctx) {
        Ok(id) => id,
        Err(error) => return error_response(&error),
    };
    match app.scheduler.status(id) {
        None => error_response(&ServiceError::UnknownJob { id }),
        // `cancel` re-checks terminality under the scheduler lock: a job
        // that settles between the status read and the cancel reports a
        // conflict, never `cancelled: true`.
        Some(_) if app.scheduler.cancel(id) => {
            let snapshot = app.scheduler.status(id).expect("job still known");
            Response::json(
                202,
                Json::object([
                    ("job", Json::count(id)),
                    ("state", Json::str(snapshot.state.as_str())),
                    ("cancelled", Json::Bool(true)),
                ])
                .render(),
            )
        }
        Some(_) => {
            // Re-read: the pre-cancel snapshot may predate the settling.
            let state = app
                .scheduler
                .status(id)
                .map_or("settled", |s| s.state.as_str());
            error_response(&ServiceError::Conflict {
                message: format!("job {id} is already {state}"),
            })
        }
    }
}

fn shutdown(app: &Arc<App>, ctx: &RouteContext<'_>) -> Response {
    if !ctx.peer.ip().is_loopback() {
        return error_response(&ServiceError::Forbidden {
            message: "POST /shutdown is only accepted from loopback".to_string(),
        });
    }
    let deadline_ms = if ctx.request.body.trim().is_empty() {
        5_000
    } else {
        match parse_body(ctx).and_then(|body| {
            body.get("deadline_ms")
                .map(|v| v.as_u64("deadline_ms").map_err(ServiceError::bad_request))
                .unwrap_or(Ok(5_000))
        }) {
            Ok(ms) => ms,
            Err(error) => return error_response(&error),
        }
    };
    let report = app.scheduler.drain(Duration::from_millis(deadline_ms));
    // Stop the accept loop: raise the flag, then self-connect to wake it.
    *app.stopping.lock().expect("stop flag") = true;
    if let Some(addr) = app.local_addr.get() {
        let _ = std::net::TcpStream::connect_timeout(addr, Duration::from_secs(1));
    }
    Response::json(
        200,
        Json::object([
            ("status", Json::str("drained")),
            ("finished", Json::count(report.finished)),
            ("cancelled", Json::count(report.cancelled)),
        ])
        .render(),
    )
}

/// A running service: the bound address plus handles to stop and join it.
#[derive(Debug)]
pub struct ServiceHandle {
    app: Arc<App>,
    server: ServerHandle,
}

impl ServiceHandle {
    /// The bound socket address.
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// The shared app state (scheduler, cache, metrics).
    pub fn app(&self) -> &Arc<App> {
        &self.app
    }

    /// Drains the scheduler and stops the server — the programmatic
    /// equivalent of `POST /shutdown`.
    pub fn shutdown(&self, deadline: Duration) {
        self.app.scheduler.drain(deadline);
        *self.app.stopping.lock().expect("stop flag") = true;
        self.server.stop();
    }

    /// Blocks until the accept loop exits (via [`ServiceHandle::shutdown`]
    /// or `POST /shutdown`), then joins connection threads.
    pub fn join(self) {
        self.server.join();
    }
}

/// Binds and starts a service instance.
///
/// # Errors
///
/// Propagates socket bind errors.
pub fn serve(config: ServiceConfig) -> std::io::Result<ServiceHandle> {
    let app = App::new(config.clone());
    let router = app.router();
    let stop_app = Arc::clone(&app);
    let observe_app = Arc::clone(&app);
    let server = Server::bind(&config.addr, router, config.max_body_bytes)?
        .stop_when(move || *stop_app.stopping.lock().expect("stop flag"))
        .observe(move |response| observe_app.count_response(response));
    let _ = app.local_addr.set(server.local_addr()?);
    let server = server.start();
    Ok(ServiceHandle { app, server })
}
