//! The assembled service: endpoints wired to the scheduler, cache and
//! metrics, plus the [`serve`] entry point used by `stochsynthd`, the
//! examples and the integration tests.
//!
//! # Endpoints
//!
//! | Route | Behaviour |
//! |---|---|
//! | `POST /simulate` | Ensemble job (any [`StepperKind`](gillespie::StepperKind)); cached |
//! | `POST /exact` | CME first-passage / transient analysis; cached |
//! | `POST /synthesize` | The paper's synthesis pipeline + exact evaluation; cached |
//! | `POST /check` | Model-checker verdict (races, time windows, hitting times, stationary mass) or a parameter sweep of one; cached per grid point |
//! | `GET /jobs/:id` | Job status, or the result body once completed |
//! | `DELETE /jobs/:id` | Cancels a queued or running job |
//! | `GET /healthz` | Liveness |
//! | `GET /metrics` | Request, cache, scheduler and fabric counters |
//! | `GET /fabric` | Fabric counters, streaming statistics and worker pool |
//! | `POST /fabric/workers` | Loopback-only worker registration |
//! | `POST /shutdown` | Loopback-only graceful drain |
//!
//! A daemon started with fabric workers configured acts as a
//! **coordinator**: `/simulate` ensembles are split into trial-range
//! shards and dispatched to the pool (see [`crate::fabric`]). Any daemon
//! answers shard requests (`"range": [start, end)`) with a partial
//! document instead of a full report, which is also how workers cache
//! shards for federation.
//!
//! Result-bearing responses carry a `cache: hit|miss` header; bodies are
//! **byte-identical** between a fresh computation and its cached replay
//! (the cache stores rendered bytes, and the engine is deterministic for a
//! fixed seed), so the header is the *only* way to tell them apart.

use std::net::SocketAddr;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use gillespie::{Ensemble, EnsemblePartial};

use crate::api::{CheckRequest, ExactRequest, SimulateRequest, SynthesizeRequest};
use crate::cache::ResultCache;
use crate::error::ServiceError;
use crate::fabric::{Fabric, FabricConfig};
use crate::http::{Method, Response};
use crate::json::{self, Json};
use crate::metrics::Metrics;
use crate::router::{RouteContext, Router};
use crate::scheduler::{
    ChunkOutput, JobId, JobSnapshot, JobState, JobWork, Scheduler, SubmitError,
};
use crate::server::{Server, ServerHandle};

/// How long a `wait: true` submission blocks before degrading to a `202`
/// status response the client can poll.
const WAIT_TIMEOUT: Duration = Duration::from_secs(600);

/// Configuration of one service instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Scheduler worker threads (0 = one per CPU).
    pub workers: usize,
    /// Bounded job-queue capacity.
    pub queue_capacity: usize,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Maximum accepted request-body size in bytes.
    pub max_body_bytes: usize,
    /// When set, this daemon coordinates a worker fabric: `/simulate`
    /// ensembles shard across the configured pool instead of running on
    /// the local scheduler threads.
    pub fabric: Option<FabricConfig>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            queue_capacity: 256,
            cache_capacity: 256,
            max_body_bytes: 1 << 20,
            fabric: None,
        }
    }
}

/// The shared state behind every route handler.
pub struct App {
    scheduler: Scheduler,
    cache: ResultCache,
    metrics: Metrics,
    fabric: Option<Arc<Fabric>>,
    config: ServiceConfig,
    /// Set once the listener is bound; `/shutdown` self-connects through it
    /// to wake the accept loop.
    local_addr: OnceLock<SocketAddr>,
    /// Raised by `/shutdown`; checked by the accept loop.
    stopping: Mutex<bool>,
}

impl std::fmt::Debug for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "App({:?})", self.config)
    }
}

impl App {
    /// Creates the service state (scheduler workers start immediately).
    pub fn new(config: ServiceConfig) -> Arc<App> {
        let fabric = config.fabric.clone().map(|f| Arc::new(Fabric::new(f)));
        Arc::new(App {
            scheduler: Scheduler::new(config.workers, config.queue_capacity),
            cache: ResultCache::new(config.cache_capacity),
            metrics: Metrics::new(),
            fabric,
            config,
            local_addr: OnceLock::new(),
            stopping: Mutex::new(false),
        })
    }

    /// The scheduler, for embedders and tests.
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// The result cache, for embedders and tests.
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// The fabric coordinator, when this daemon was configured with one.
    pub fn fabric(&self) -> Option<&Arc<Fabric>> {
        self.fabric.as_ref()
    }

    /// Builds the route table for this app.
    pub fn router(self: &Arc<App>) -> Router {
        let mut router = Router::new();
        let app = Arc::clone(self);
        router.route(Method::Post, "/simulate", move |ctx| {
            Metrics::bump(&app.metrics.simulate_requests);
            submit_simulate(&app, ctx)
        });
        let app = Arc::clone(self);
        router.route(Method::Post, "/exact", move |ctx| {
            Metrics::bump(&app.metrics.exact_requests);
            submit_exact(&app, ctx)
        });
        let app = Arc::clone(self);
        router.route(Method::Post, "/synthesize", move |ctx| {
            Metrics::bump(&app.metrics.synthesize_requests);
            submit_synthesize(&app, ctx)
        });
        let app = Arc::clone(self);
        router.route(Method::Post, "/check", move |ctx| {
            Metrics::bump(&app.metrics.check_requests);
            submit_check(&app, ctx)
        });
        let app = Arc::clone(self);
        router.route(Method::Get, "/jobs/:id", move |ctx| job_status(&app, ctx));
        let app = Arc::clone(self);
        router.route(Method::Delete, "/jobs/:id", move |ctx| {
            job_cancel(&app, ctx)
        });
        let app = Arc::clone(self);
        router.route(Method::Get, "/healthz", move |_| {
            let body = Json::object([
                ("status", Json::str("ok")),
                ("workers", Json::count(app.scheduler.stats().workers as u64)),
                ("uptime_ms", Json::count(app.metrics.uptime_ms())),
            ]);
            Response::json(200, body.render())
        });
        let app = Arc::clone(self);
        router.route(Method::Get, "/metrics", move |_| {
            Response::json(200, app.render_metrics())
        });
        let app = Arc::clone(self);
        router.route(Method::Get, "/fabric", move |_| match &app.fabric {
            Some(fabric) => Response::json(200, fabric.render().render()),
            None => error_response(&ServiceError::bad_request(
                "this daemon is not a fabric coordinator",
            )),
        });
        let app = Arc::clone(self);
        router.route(Method::Post, "/fabric/workers", move |ctx| {
            register_worker(&app, ctx)
        });
        let app = Arc::clone(self);
        router.route(Method::Post, "/shutdown", move |ctx| shutdown(&app, ctx));
        router
    }

    /// Counts one written response (every response, including framing-level
    /// rejections and router-level 404/405s — wired in as the server's
    /// [`ResponseObserver`](crate::ResponseObserver) by [`serve`]).
    pub fn count_response(&self, response: &Response) {
        Metrics::bump(&self.metrics.requests);
        if (400..500).contains(&response.status) {
            Metrics::bump(&self.metrics.responses_4xx);
        } else if response.status >= 500 {
            Metrics::bump(&self.metrics.responses_5xx);
        }
    }

    fn render_metrics(&self) -> String {
        let cache = self.cache.stats();
        let scheduler = self.scheduler.stats();
        let mut members = Json::object([
            ("uptime_ms", Json::count(self.metrics.uptime_ms())),
            (
                "http",
                Json::object([
                    (
                        "requests",
                        Json::count(Metrics::read(&self.metrics.requests)),
                    ),
                    (
                        "responses_4xx",
                        Json::count(Metrics::read(&self.metrics.responses_4xx)),
                    ),
                    (
                        "responses_5xx",
                        Json::count(Metrics::read(&self.metrics.responses_5xx)),
                    ),
                    (
                        "simulate_requests",
                        Json::count(Metrics::read(&self.metrics.simulate_requests)),
                    ),
                    (
                        "exact_requests",
                        Json::count(Metrics::read(&self.metrics.exact_requests)),
                    ),
                    (
                        "synthesize_requests",
                        Json::count(Metrics::read(&self.metrics.synthesize_requests)),
                    ),
                    (
                        "check_requests",
                        Json::count(Metrics::read(&self.metrics.check_requests)),
                    ),
                ]),
            ),
            (
                "auto_resolutions",
                Json::object([
                    (
                        "direct",
                        Json::count(Metrics::read(&self.metrics.auto_resolved_direct)),
                    ),
                    (
                        "first_reaction",
                        Json::count(Metrics::read(&self.metrics.auto_resolved_first_reaction)),
                    ),
                    (
                        "next_reaction",
                        Json::count(Metrics::read(&self.metrics.auto_resolved_next_reaction)),
                    ),
                    (
                        "composition_rejection",
                        Json::count(Metrics::read(
                            &self.metrics.auto_resolved_composition_rejection,
                        )),
                    ),
                    (
                        "tau_leaping",
                        Json::count(Metrics::read(&self.metrics.auto_resolved_tau_leaping)),
                    ),
                    (
                        "hybrid",
                        Json::count(Metrics::read(&self.metrics.auto_resolved_hybrid)),
                    ),
                ]),
            ),
            (
                "cache",
                Json::object([
                    ("entries", Json::count(cache.entries as u64)),
                    ("capacity", Json::count(cache.capacity as u64)),
                    ("hits", Json::count(cache.hits)),
                    ("misses", Json::count(cache.misses)),
                    ("evictions", Json::count(cache.evictions)),
                ]),
            ),
            (
                "scheduler",
                Json::object([
                    ("workers", Json::count(scheduler.workers as u64)),
                    ("queued", Json::count(scheduler.queued as u64)),
                    ("running", Json::count(scheduler.running as u64)),
                    ("completed", Json::count(scheduler.completed)),
                    ("failed", Json::count(scheduler.failed)),
                    ("cancelled", Json::count(scheduler.cancelled)),
                    ("rejected", Json::count(scheduler.rejected)),
                    ("steals", Json::count(scheduler.steals)),
                ]),
            ),
        ]);
        if let Some(fabric) = &self.fabric {
            if let Json::Object(m) = &mut members {
                m.push(("fabric".to_string(), fabric.render()));
            }
        }
        members.render()
    }
}

/// Renders a [`ServiceError`] as its HTTP response.
fn error_response(error: &ServiceError) -> Response {
    Response::json(
        error.status(),
        Json::object([("error", Json::str(error.to_string()))]).render(),
    )
}

/// Renders a job-status body (for every non-completed state).
fn status_body(snapshot: &JobSnapshot) -> String {
    let mut members = vec![
        ("kind", Json::str("job")),
        ("job", Json::count(snapshot.id)),
        ("state", Json::str(snapshot.state.as_str())),
        ("label", Json::str(snapshot.label.clone())),
        ("priority", Json::count(u64::from(snapshot.priority))),
        ("progress", Json::num(snapshot.progress())),
        (
            "completed_chunks",
            Json::count(snapshot.completed_chunks as u64),
        ),
        ("total_chunks", Json::count(snapshot.total_chunks as u64)),
    ];
    if let Some(error) = &snapshot.error {
        members.push(("error", Json::str(error.clone())));
    }
    if let Some(index) = snapshot.completion_index {
        members.push(("completion_index", Json::count(index)));
    }
    Json::object(members).render()
}

/// The response for a job snapshot: the raw result body for completed jobs,
/// a status document otherwise. Every variant carries an `x-job-state`
/// header; result bodies add `cache: miss` (they were computed, not
/// replayed).
fn snapshot_response(snapshot: &JobSnapshot) -> Response {
    let state = snapshot.state.as_str();
    match snapshot.state {
        JobState::Completed => Response::json(
            200,
            snapshot
                .result
                .clone()
                .expect("completed jobs have results"),
        )
        .header("cache", "miss")
        .header("x-job-state", state),
        JobState::Failed => Response::json(500, status_body(snapshot)).header("x-job-state", state),
        _ => Response::json(200, status_body(snapshot)).header("x-job-state", state),
    }
}

/// Shared submit flow: consult the cache, otherwise schedule `work` and
/// either wait for it (`wait: true`) or hand back a `202`.
fn submit_cached_job(
    app: &Arc<App>,
    label: &'static str,
    key: String,
    priority: u8,
    wait: bool,
    work: JobWork,
) -> Response {
    if let Some(body) = app.cache.lookup(&key) {
        return Response::json(200, body)
            .header("cache", "hit")
            .header("x-job-state", "completed");
    }
    let id = match app.scheduler.submit(priority, label, work) {
        Ok(id) => id,
        Err(SubmitError::QueueFull { capacity }) => {
            return error_response(&ServiceError::Busy { capacity })
        }
        Err(SubmitError::Draining) => {
            return error_response(&ServiceError::Unavailable {
                message: "server is draining".to_string(),
            })
        }
    };
    if wait {
        if let Some(snapshot) = app.scheduler.wait_terminal(id, WAIT_TIMEOUT) {
            return snapshot_response(&snapshot);
        }
    }
    let snapshot = app.scheduler.status(id).expect("job was just submitted");
    Response::json(202, status_body(&snapshot))
        .header("cache", "miss")
        .header("x-job-state", snapshot.state.as_str())
}

/// Parses the request body as JSON, mapping failures to a 400.
fn parse_body(ctx: &RouteContext<'_>) -> Result<Json, ServiceError> {
    json::parse(&ctx.request.body)
        .map_err(|e| ServiceError::bad_request(format!("invalid JSON body: {e}")))
}

/// `POST /fabric/workers` — registers a worker address with the
/// coordinator at run time (loopback-only, like `/shutdown`: the pool an
/// operator dispatches compute to is operator configuration, not a public
/// surface).
fn register_worker(app: &Arc<App>, ctx: &RouteContext<'_>) -> Response {
    if !ctx.peer.ip().is_loopback() {
        return error_response(&ServiceError::Forbidden {
            message: "POST /fabric/workers is only accepted from loopback".to_string(),
        });
    }
    let Some(fabric) = &app.fabric else {
        return error_response(&ServiceError::bad_request(
            "this daemon is not a fabric coordinator",
        ));
    };
    let addr = match parse_body(ctx).and_then(|body| {
        body.get("addr")
            .ok_or_else(|| ServiceError::bad_request("missing `addr`"))?
            .as_str("addr")
            .map(str::to_string)
            .map_err(ServiceError::bad_request)
    }) {
        Ok(addr) => addr,
        Err(error) => return error_response(&error),
    };
    let registered = fabric.registry().register(&addr);
    Response::json(
        200,
        Json::object([
            ("addr", Json::str(addr)),
            ("registered", Json::Bool(registered)),
            ("workers", Json::count(fabric.registry().len() as u64)),
        ])
        .render(),
    )
}

fn submit_simulate(app: &Arc<App>, ctx: &RouteContext<'_>) -> Response {
    let request = match parse_body(ctx).and_then(|body| SimulateRequest::parse(&body)) {
        Ok(request) => Arc::new(request),
        Err(error) => return error_response(&error),
    };
    // Count what the portfolio decided (even when the cache answers the
    // request): the per-kind histogram in `/metrics` is how operators see
    // which regimes their workloads land in.
    if request.method == gillespie::StepperKind::Auto {
        Metrics::bump(app.metrics.auto_resolution_counter(request.resolved));
    }
    let key = request.cache_key();

    // A shard request (`"range": [start, end)`) runs its trial range as
    // one chunk and answers with a partial wire document — the worker side
    // of the fabric. The partial is cached under the range-suffixed key,
    // so a coordinator retrying or re-dispatching a shard replays it
    // byte-for-byte.
    if let Some((start, end)) = request.range {
        let run_request = Arc::clone(&request);
        let run_chunk = move |_: usize, cancel: &gillespie::engine::CancelToken| {
            let classifier = run_request.classifier().map_err(|e| e.to_string())?;
            let ensemble = Ensemble::new(&run_request.crn, run_request.initial.clone(), classifier)
                .options(run_request.ensemble_options());
            let partial = ensemble
                .run_range(start, end, cancel)
                .map_err(|e| e.to_string())?;
            Ok(ChunkOutput::Body(SimulateRequest::render_partial(&partial)))
        };
        let finish_key = key.clone();
        let finish_app = Arc::clone(app);
        let finish = move |mut outputs: Vec<ChunkOutput>| {
            let ChunkOutput::Body(body) = outputs.remove(0) else {
                unreachable!("shard chunks produce bodies")
            };
            finish_app.cache.insert(&finish_key, &body);
            Ok(body)
        };
        return submit_cached_job(
            app,
            "simulate-shard",
            key,
            request.priority,
            request.wait,
            JobWork {
                chunks: 1,
                run_chunk: Box::new(run_chunk),
                finish: Box::new(finish),
            },
        );
    }

    // Chunk the ensemble. On a coordinator the chunks are fabric shards
    // dispatched to the worker pool; locally they are trial ranges sized
    // for ~4 tasks per scheduler worker so stealing has something to
    // steal, without shattering small ensembles into per-trial tasks.
    let fabric = app
        .fabric
        .as_ref()
        .filter(|f| !f.registry().is_empty())
        .cloned();
    type ChunkRunner = Box<
        dyn Fn(usize, &gillespie::engine::CancelToken) -> Result<ChunkOutput, String> + Send + Sync,
    >;
    let (chunks, run_chunk): (usize, ChunkRunner) = match fabric {
        Some(fabric) => {
            let plan = fabric.plan(request.trials);
            let run_request = Arc::clone(&request);
            let chunks = plan.len();
            let run_chunk = move |index: usize, cancel: &gillespie::engine::CancelToken| {
                let partial = fabric.run_shard(&run_request, plan[index], cancel)?;
                Ok(ChunkOutput::Partial(Box::new(partial)))
            };
            (chunks, Box::new(run_chunk) as _)
        }
        None => {
            let workers = app.scheduler.stats().workers as u64;
            let target_chunks = (workers * 4).clamp(1, request.trials);
            let chunk_size = request.trials.div_ceil(target_chunks);
            let chunks = request.trials.div_ceil(chunk_size) as usize;
            let run_request = Arc::clone(&request);
            let trials = request.trials;
            let run_chunk = move |index: usize, cancel: &gillespie::engine::CancelToken| {
                let start = index as u64 * chunk_size;
                let end = (start + chunk_size).min(trials);
                let classifier = run_request.classifier().map_err(|e| e.to_string())?;
                let ensemble =
                    Ensemble::new(&run_request.crn, run_request.initial.clone(), classifier)
                        .options(run_request.ensemble_options());
                let partial = ensemble
                    .run_range(start, end, cancel)
                    .map_err(|e| e.to_string())?;
                Ok(ChunkOutput::Partial(Box::new(partial)))
            };
            (chunks, Box::new(run_chunk) as _)
        }
    };

    let finish_request = Arc::clone(&request);
    let finish_key = key.clone();
    let finish_app = Arc::clone(app);
    let finish = move |outputs: Vec<ChunkOutput>| {
        let partials: Vec<EnsemblePartial> = outputs
            .into_iter()
            .map(|output| match output {
                ChunkOutput::Partial(partial) => *partial,
                ChunkOutput::Body(_) => unreachable!("simulate chunks produce partials"),
            })
            .collect();
        let classifier = finish_request.classifier().map_err(|e| e.to_string())?;
        let ensemble = Ensemble::new(
            &finish_request.crn,
            finish_request.initial.clone(),
            classifier,
        )
        .options(finish_request.ensemble_options());
        let report = ensemble.merge(partials).map_err(|e| e.to_string())?;
        let body = finish_request.render_report(&report);
        finish_app.cache.insert(&finish_key, &body);
        Ok(body)
    };

    submit_cached_job(
        app,
        "simulate",
        key,
        request.priority,
        request.wait,
        JobWork {
            chunks,
            run_chunk,
            finish: Box::new(finish),
        },
    )
}

/// Builds the single-chunk job for an analysis endpoint whose work is one
/// opaque computation (`/exact`, `/synthesize`).
fn analysis_job(
    app: &Arc<App>,
    key: String,
    execute: impl Fn() -> Result<String, ServiceError> + Send + Sync + 'static,
) -> JobWork {
    let finish_app = Arc::clone(app);
    JobWork {
        chunks: 1,
        run_chunk: Box::new(move |_, _| {
            execute().map(ChunkOutput::Body).map_err(|e| e.to_string())
        }),
        finish: Box::new(move |mut outputs| {
            let ChunkOutput::Body(body) = outputs.remove(0) else {
                unreachable!("analysis chunks produce bodies")
            };
            finish_app.cache.insert(&key, &body);
            Ok(body)
        }),
    }
}

fn submit_exact(app: &Arc<App>, ctx: &RouteContext<'_>) -> Response {
    let request = match parse_body(ctx).and_then(|body| ExactRequest::parse(&body)) {
        Ok(request) => request,
        Err(error) => return error_response(&error),
    };
    let key = request.cache_key();
    let (priority, wait) = (request.priority, request.wait);
    let work = analysis_job(app, key.clone(), move || request.execute());
    submit_cached_job(app, "exact", key, priority, wait, work)
}

fn submit_synthesize(app: &Arc<App>, ctx: &RouteContext<'_>) -> Response {
    let request = match parse_body(ctx).and_then(|body| SynthesizeRequest::parse(&body)) {
        Ok(request) => request,
        Err(error) => return error_response(&error),
    };
    let key = request.cache_key();
    let (priority, wait) = (request.priority, request.wait);
    let work = analysis_job(app, key.clone(), move || request.execute());
    submit_cached_job(app, "synthesize", key, priority, wait, work)
}

fn submit_check(app: &Arc<App>, ctx: &RouteContext<'_>) -> Response {
    let request = match parse_body(ctx).and_then(|body| CheckRequest::parse(&body)) {
        Ok(request) => request,
        Err(error) => return error_response(&error),
    };
    let (priority, wait) = (request.priority, request.wait);
    let key = request.cache_key();
    if request.sweep.is_none() {
        let point = request
            .points
            .into_iter()
            .next()
            .expect("a sweepless request has exactly one point");
        let work = analysis_job(app, key.clone(), move || point.execute());
        return submit_cached_job(app, "check", key, priority, wait, work);
    }

    // A sweep runs each grid point as its own chunk — locally on the
    // scheduler threads, or fanned out to `/check` on the worker pool when
    // this daemon coordinates a fabric. Every point consults (and fills)
    // the per-point cache before the sweep document is assembled, so
    // re-gridded sweeps and single-point replays reuse each other's
    // solves, on top of the whole-document key.
    let request = Arc::new(request);
    let chunks = request.points.len();
    let fabric = app
        .fabric
        .as_ref()
        .filter(|f| !f.registry().is_empty())
        .cloned();
    let run_request = Arc::clone(&request);
    let run_app = Arc::clone(app);
    let run_chunk = move |index: usize, cancel: &gillespie::engine::CancelToken| {
        let point = &run_request.points[index];
        let point_key = point.cache_key();
        if let Some(body) = run_app.cache.lookup(&point_key) {
            return Ok(ChunkOutput::Body(body));
        }
        let body = match &fabric {
            Some(fabric) => fabric.run_check(point, index, cancel)?,
            None => point.execute().map_err(|e| e.to_string())?,
        };
        run_app.cache.insert(&point_key, &body);
        Ok(ChunkOutput::Body(body))
    };

    let finish_request = Arc::clone(&request);
    let finish_app = Arc::clone(app);
    let finish_key = key.clone();
    let finish = move |outputs: Vec<ChunkOutput>| {
        let bodies: Vec<String> = outputs
            .into_iter()
            .map(|output| match output {
                ChunkOutput::Body(body) => body,
                ChunkOutput::Partial(_) => unreachable!("check chunks produce bodies"),
            })
            .collect();
        let body = finish_request
            .render_sweep(&bodies)
            .map_err(|e| e.to_string())?;
        finish_app.cache.insert(&finish_key, &body);
        Ok(body)
    };

    submit_cached_job(
        app,
        "check-sweep",
        key,
        priority,
        wait,
        JobWork {
            chunks,
            run_chunk: Box::new(run_chunk),
            finish: Box::new(finish),
        },
    )
}

fn parse_job_id(ctx: &RouteContext<'_>) -> Result<JobId, ServiceError> {
    ctx.param("id")
        .and_then(|id| id.parse::<JobId>().ok())
        .ok_or_else(|| ServiceError::bad_request("job ids are positive integers"))
}

fn job_status(app: &Arc<App>, ctx: &RouteContext<'_>) -> Response {
    let id = match parse_job_id(ctx) {
        Ok(id) => id,
        Err(error) => return error_response(&error),
    };
    // `?wait=1` turns the poll into a blocking wait (used by the CLI).
    if ctx.query_param("wait").is_some() {
        if let Some(snapshot) = app.scheduler.wait_terminal(id, WAIT_TIMEOUT) {
            return snapshot_response(&snapshot);
        }
    }
    match app.scheduler.status(id) {
        Some(snapshot) => snapshot_response(&snapshot),
        None => error_response(&ServiceError::UnknownJob { id }),
    }
}

fn job_cancel(app: &Arc<App>, ctx: &RouteContext<'_>) -> Response {
    let id = match parse_job_id(ctx) {
        Ok(id) => id,
        Err(error) => return error_response(&error),
    };
    match app.scheduler.status(id) {
        None => error_response(&ServiceError::UnknownJob { id }),
        // `cancel` re-checks terminality under the scheduler lock: a job
        // that settles between the status read and the cancel reports a
        // conflict, never `cancelled: true`.
        Some(_) if app.scheduler.cancel(id) => {
            let snapshot = app.scheduler.status(id).expect("job still known");
            Response::json(
                202,
                Json::object([
                    ("job", Json::count(id)),
                    ("state", Json::str(snapshot.state.as_str())),
                    ("cancelled", Json::Bool(true)),
                ])
                .render(),
            )
        }
        Some(_) => {
            // Re-read: the pre-cancel snapshot may predate the settling.
            let state = app
                .scheduler
                .status(id)
                .map_or("settled", |s| s.state.as_str());
            error_response(&ServiceError::Conflict {
                message: format!("job {id} is already {state}"),
            })
        }
    }
}

fn shutdown(app: &Arc<App>, ctx: &RouteContext<'_>) -> Response {
    if !ctx.peer.ip().is_loopback() {
        return error_response(&ServiceError::Forbidden {
            message: "POST /shutdown is only accepted from loopback".to_string(),
        });
    }
    let deadline_ms = if ctx.request.body.trim().is_empty() {
        5_000
    } else {
        match parse_body(ctx).and_then(|body| {
            body.get("deadline_ms")
                .map(|v| v.as_u64("deadline_ms").map_err(ServiceError::bad_request))
                .unwrap_or(Ok(5_000))
        }) {
            Ok(ms) => ms,
            Err(error) => return error_response(&error),
        }
    };
    let report = app.scheduler.drain(Duration::from_millis(deadline_ms));
    // Stop the accept loop: raise the flag, then self-connect to wake it.
    *app.stopping.lock().expect("stop flag") = true;
    if let Some(addr) = app.local_addr.get() {
        let _ = std::net::TcpStream::connect_timeout(addr, Duration::from_secs(1));
    }
    Response::json(
        200,
        Json::object([
            ("status", Json::str("drained")),
            ("finished", Json::count(report.finished)),
            ("cancelled", Json::count(report.cancelled)),
        ])
        .render(),
    )
}

/// A running service: the bound address plus handles to stop and join it.
#[derive(Debug)]
pub struct ServiceHandle {
    app: Arc<App>,
    server: ServerHandle,
}

impl ServiceHandle {
    /// The bound socket address.
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// The shared app state (scheduler, cache, metrics).
    pub fn app(&self) -> &Arc<App> {
        &self.app
    }

    /// Drains the scheduler and stops the server — the programmatic
    /// equivalent of `POST /shutdown`.
    pub fn shutdown(&self, deadline: Duration) {
        self.app.scheduler.drain(deadline);
        *self.app.stopping.lock().expect("stop flag") = true;
        self.server.stop();
    }

    /// Blocks until the accept loop exits (via [`ServiceHandle::shutdown`]
    /// or `POST /shutdown`), then joins connection threads.
    pub fn join(self) {
        self.server.join();
    }
}

/// Binds and starts a service instance.
///
/// # Errors
///
/// Propagates socket bind errors.
pub fn serve(config: ServiceConfig) -> std::io::Result<ServiceHandle> {
    let app = App::new(config.clone());
    let router = app.router();
    let stop_app = Arc::clone(&app);
    let observe_app = Arc::clone(&app);
    let server = Server::bind(&config.addr, router, config.max_body_bytes)?
        .stop_when(move || *stop_app.stopping.lock().expect("stop flag"))
        .observe(move |response| observe_app.count_response(response));
    let _ = app.local_addr.set(server.local_addr()?);
    let server = server.start();
    Ok(ServiceHandle { app, server })
}
