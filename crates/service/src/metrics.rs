//! Service-wide counters surfaced through `GET /metrics`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Lock-free request/response counters. Cache and scheduler counters live
/// with their owners ([`ResultCache`](crate::ResultCache),
/// [`Scheduler`](crate::Scheduler)) and are merged into the `/metrics` body
/// by the app layer.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    /// Total HTTP responses written — one per request the server answered,
    /// including framing-level `400`/`413` rejections and router-level
    /// `404`/`405`s that never reach a handler.
    pub requests: AtomicU64,
    /// Responses with a 4xx status.
    pub responses_4xx: AtomicU64,
    /// Responses with a 5xx status.
    pub responses_5xx: AtomicU64,
    /// `POST /simulate` requests.
    pub simulate_requests: AtomicU64,
    /// `POST /exact` requests.
    pub exact_requests: AtomicU64,
    /// `POST /synthesize` requests.
    pub synthesize_requests: AtomicU64,
    /// `POST /check` requests.
    pub check_requests: AtomicU64,
    /// `method: auto` simulate requests resolved to the direct method.
    pub auto_resolved_direct: AtomicU64,
    /// `method: auto` simulate requests resolved to first-reaction.
    pub auto_resolved_first_reaction: AtomicU64,
    /// `method: auto` simulate requests resolved to next-reaction.
    pub auto_resolved_next_reaction: AtomicU64,
    /// `method: auto` simulate requests resolved to composition–rejection.
    pub auto_resolved_composition_rejection: AtomicU64,
    /// `method: auto` simulate requests resolved to tau-leaping.
    pub auto_resolved_tau_leaping: AtomicU64,
    /// `method: auto` simulate requests resolved to the hybrid stepper.
    pub auto_resolved_hybrid: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// Creates zeroed counters with the clock started now.
    pub fn new() -> Metrics {
        Metrics {
            started: Instant::now(),
            requests: AtomicU64::new(0),
            responses_4xx: AtomicU64::new(0),
            responses_5xx: AtomicU64::new(0),
            simulate_requests: AtomicU64::new(0),
            exact_requests: AtomicU64::new(0),
            synthesize_requests: AtomicU64::new(0),
            check_requests: AtomicU64::new(0),
            auto_resolved_direct: AtomicU64::new(0),
            auto_resolved_first_reaction: AtomicU64::new(0),
            auto_resolved_next_reaction: AtomicU64::new(0),
            auto_resolved_composition_rejection: AtomicU64::new(0),
            auto_resolved_tau_leaping: AtomicU64::new(0),
            auto_resolved_hybrid: AtomicU64::new(0),
        }
    }

    /// The per-kind resolution counter for an `auto` request that resolved
    /// to `kind`.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is `Auto` itself — resolution always produces a
    /// concrete kind.
    pub fn auto_resolution_counter(&self, kind: gillespie::StepperKind) -> &AtomicU64 {
        use gillespie::StepperKind;
        match kind {
            StepperKind::Direct => &self.auto_resolved_direct,
            StepperKind::FirstReaction => &self.auto_resolved_first_reaction,
            StepperKind::NextReaction => &self.auto_resolved_next_reaction,
            StepperKind::CompositionRejection => &self.auto_resolved_composition_rejection,
            StepperKind::TauLeaping => &self.auto_resolved_tau_leaping,
            StepperKind::Hybrid => &self.auto_resolved_hybrid,
            StepperKind::Auto => unreachable!("auto always resolves to a concrete kind"),
        }
    }

    /// Milliseconds since the service started.
    pub fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Bumps a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads a counter.
    pub fn read(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let metrics = Metrics::new();
        Metrics::bump(&metrics.requests);
        Metrics::bump(&metrics.requests);
        Metrics::bump(&metrics.responses_4xx);
        assert_eq!(Metrics::read(&metrics.requests), 2);
        assert_eq!(Metrics::read(&metrics.responses_4xx), 1);
        assert_eq!(Metrics::read(&metrics.responses_5xx), 0);
    }
}
