//! Service-wide telemetry surfaced through `GET /metrics`.
//!
//! Counters, gauges and latency histograms live in one
//! [`obs::MetricsRegistry`]; the legacy JSON body of `GET /metrics` reads
//! the same handles (so its shape is unchanged), and
//! `GET /metrics?format=text` renders the whole registry as a
//! Prometheus-style text exposition. Cache and scheduler counters live with
//! their owners ([`ResultCache`](crate::ResultCache),
//! [`Scheduler`](crate::Scheduler)) and are merged into both bodies by the
//! app layer.

use std::sync::Arc;
use std::time::{Duration, Instant};

use gillespie::SimProfile;
use obs::{Counter, Histogram, MetricsRegistry};

/// The per-endpoint telemetry handles the request wrapper bumps: request
/// count, 4xx/5xx breakdown and a service-time histogram. Handles are
/// shared `Arc`s from the registry, so asking twice for the same endpoint
/// returns the same series.
#[derive(Debug, Clone)]
pub struct EndpointMetrics {
    /// Requests dispatched to this endpoint's handler.
    pub requests: Arc<Counter>,
    /// 4xx responses from this endpoint.
    pub responses_4xx: Arc<Counter>,
    /// 5xx responses from this endpoint.
    pub responses_5xx: Arc<Counter>,
    /// Handler service time, microseconds.
    pub latency_us: Arc<Histogram>,
}

impl EndpointMetrics {
    /// Records one handled response: the request count, the status class
    /// and the service time.
    pub fn observe(&self, status: u16, elapsed: Duration) {
        self.requests.inc();
        if (400..500).contains(&status) {
            self.responses_4xx.inc();
        } else if status >= 500 {
            self.responses_5xx.inc();
        }
        self.latency_us
            .record(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
    }
}

/// The service's typed metrics: a registry plus named handles for the
/// series the JSON body of `GET /metrics` reads directly.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    registry: Arc<MetricsRegistry>,
    /// Total HTTP responses written — one per request the server answered,
    /// including framing-level `400`/`413` rejections and router-level
    /// `404`/`405`s that never reach a handler.
    pub requests: Arc<Counter>,
    /// Responses with a 4xx status (all endpoints).
    pub responses_4xx: Arc<Counter>,
    /// Responses with a 5xx status (all endpoints).
    pub responses_5xx: Arc<Counter>,
    /// `POST /simulate` requests.
    pub simulate_requests: Arc<Counter>,
    /// `POST /exact` requests.
    pub exact_requests: Arc<Counter>,
    /// `POST /synthesize` requests.
    pub synthesize_requests: Arc<Counter>,
    /// `POST /check` requests.
    pub check_requests: Arc<Counter>,
    /// `method: auto` simulate requests resolved to the direct method.
    pub auto_resolved_direct: Arc<Counter>,
    /// `method: auto` simulate requests resolved to first-reaction.
    pub auto_resolved_first_reaction: Arc<Counter>,
    /// `method: auto` simulate requests resolved to next-reaction.
    pub auto_resolved_next_reaction: Arc<Counter>,
    /// `method: auto` simulate requests resolved to composition–rejection.
    pub auto_resolved_composition_rejection: Arc<Counter>,
    /// `method: auto` simulate requests resolved to tau-leaping.
    pub auto_resolved_tau_leaping: Arc<Counter>,
    /// `method: auto` simulate requests resolved to the hybrid stepper.
    pub auto_resolved_hybrid: Arc<Counter>,
    /// Result-cache lookup latency, microseconds.
    pub cache_lookup_us: Arc<Histogram>,
    /// Scheduler queue wait (submission → first chunk dispatched),
    /// microseconds. The handle is shared with the scheduler's telemetry.
    pub queue_wait_us: Arc<Histogram>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// Creates zeroed series with the clock started now.
    pub fn new() -> Metrics {
        let registry = Arc::new(MetricsRegistry::new());
        let auto = |stepper: &str| {
            registry.counter(&format!("auto_resolutions_total{{stepper=\"{stepper}\"}}"))
        };
        Metrics {
            started: Instant::now(),
            requests: registry.counter("http_requests_total"),
            responses_4xx: registry.counter("http_responses_total{class=\"4xx\"}"),
            responses_5xx: registry.counter("http_responses_total{class=\"5xx\"}"),
            simulate_requests: registry.counter("http_requests_total{endpoint=\"simulate\"}"),
            exact_requests: registry.counter("http_requests_total{endpoint=\"exact\"}"),
            synthesize_requests: registry.counter("http_requests_total{endpoint=\"synthesize\"}"),
            check_requests: registry.counter("http_requests_total{endpoint=\"check\"}"),
            auto_resolved_direct: auto("direct"),
            auto_resolved_first_reaction: auto("first-reaction"),
            auto_resolved_next_reaction: auto("next-reaction"),
            auto_resolved_composition_rejection: auto("composition-rejection"),
            auto_resolved_tau_leaping: auto("tau-leaping"),
            auto_resolved_hybrid: auto("hybrid"),
            cache_lookup_us: registry.histogram("cache_lookup_duration_us"),
            queue_wait_us: registry.histogram("scheduler_queue_wait_us"),
            registry,
        }
    }

    /// The registry behind every handle (for the text exposition and for
    /// subsystems that register their own series — the fabric's per-worker
    /// round-trip histograms).
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The per-endpoint handles for `endpoint`, registered on first use.
    pub fn endpoint(&self, endpoint: &str) -> EndpointMetrics {
        EndpointMetrics {
            requests: self
                .registry
                .counter(&format!("http_requests_total{{endpoint=\"{endpoint}\"}}")),
            responses_4xx: self.registry.counter(&format!(
                "http_responses_total{{endpoint=\"{endpoint}\",class=\"4xx\"}}"
            )),
            responses_5xx: self.registry.counter(&format!(
                "http_responses_total{{endpoint=\"{endpoint}\",class=\"5xx\"}}"
            )),
            latency_us: self.registry.histogram(&format!(
                "http_request_duration_us{{endpoint=\"{endpoint}\"}}"
            )),
        }
    }

    /// The per-kind resolution counter for an `auto` request that resolved
    /// to `kind`.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is `Auto` itself — resolution always produces a
    /// concrete kind.
    pub fn auto_resolution_counter(&self, kind: gillespie::StepperKind) -> &Arc<Counter> {
        use gillespie::StepperKind;
        match kind {
            StepperKind::Direct => &self.auto_resolved_direct,
            StepperKind::FirstReaction => &self.auto_resolved_first_reaction,
            StepperKind::NextReaction => &self.auto_resolved_next_reaction,
            StepperKind::CompositionRejection => &self.auto_resolved_composition_rejection,
            StepperKind::TauLeaping => &self.auto_resolved_tau_leaping,
            StepperKind::Hybrid => &self.auto_resolved_hybrid,
            StepperKind::Auto => unreachable!("auto always resolves to a concrete kind"),
        }
    }

    /// Adds one chunk's engine work counters to the per-stepper sums
    /// (`sim_steps_total{stepper="direct"}`, …). Observational only — the
    /// profile is collected out-of-band and never alters result bytes.
    pub fn record_profile(&self, stepper: &str, profile: &SimProfile) {
        let add = |series: &str, value: u64| {
            if value > 0 {
                self.registry
                    .counter(&format!("{series}{{stepper=\"{stepper}\"}}"))
                    .add(value);
            }
        };
        add("sim_steps_total", profile.steps);
        add("sim_propensity_evals_total", profile.propensity_evals);
        add("sim_leaps_accepted_total", profile.leaps_accepted);
        add("sim_leaps_rejected_total", profile.leaps_rejected);
        add("sim_rk45_accepted_total", profile.rk45_accepted);
        add("sim_rk45_rejected_total", profile.rk45_rejected);
    }

    /// Milliseconds since the service started. Saturates instead of
    /// truncating: the old `as u64` cast would silently wrap a (very) long
    /// uptime's u128 millisecond count.
    pub fn uptime_ms(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_through_shared_handles() {
        let metrics = Metrics::new();
        metrics.requests.inc();
        metrics.requests.inc();
        metrics.responses_4xx.inc();
        assert_eq!(metrics.requests.get(), 2);
        assert_eq!(metrics.responses_4xx.get(), 1);
        assert_eq!(metrics.responses_5xx.get(), 0);
        // The named field and the registry series are the same handle.
        assert_eq!(metrics.registry().counter("http_requests_total").get(), 2);
    }

    #[test]
    fn endpoint_observation_classifies_statuses() {
        let metrics = Metrics::new();
        let simulate = metrics.endpoint("simulate");
        simulate.observe(200, Duration::from_micros(150));
        simulate.observe(400, Duration::from_micros(50));
        simulate.observe(500, Duration::from_micros(50));
        assert_eq!(simulate.requests.get(), 3);
        assert_eq!(simulate.responses_4xx.get(), 1);
        assert_eq!(simulate.responses_5xx.get(), 1);
        assert_eq!(simulate.latency_us.snapshot().count, 3);
        // The explicit named handle sees the wrapper's counts: same series.
        assert_eq!(metrics.simulate_requests.get(), 3);
    }

    #[test]
    fn profiles_sum_per_stepper() {
        let metrics = Metrics::new();
        let profile = SimProfile {
            steps: 10,
            propensity_evals: 25,
            ..SimProfile::default()
        };
        metrics.record_profile("direct", &profile);
        metrics.record_profile("direct", &profile);
        let text = metrics.registry().render_text(&[]);
        assert!(
            text.contains("sim_steps_total{stepper=\"direct\"} 20\n"),
            "{text}"
        );
        assert!(
            text.contains("sim_propensity_evals_total{stepper=\"direct\"} 50\n"),
            "{text}"
        );
        // Zero-valued series are not registered at all.
        assert!(!text.contains("sim_rk45_accepted_total"), "{text}");
    }
}
