//! The deterministic, content-addressed result cache.
//!
//! Every cacheable request is reduced to a *canonical key string* (the
//! parsed model re-serialised through [`crn::Crn::to_text`], plus every
//! parameter that affects the result — stepper, trials, seed, stop
//! condition, …). The cache is addressed by the FNV-1a hash of that string
//! and stores the **rendered response body**: replaying a hit returns the
//! exact bytes of the original response.
//!
//! Caching simulation *results* (not just parses) is sound because the
//! engine's reports are bit-identical for a given `(model, stepper, params,
//! seed)` across thread counts and schedulers — the determinism contract
//! pinned by `crates/gillespie/tests/determinism.rs` and re-checked end to
//! end by the service's own integration tests. The stored key string is
//! compared on every hit, so a 64-bit hash collision degrades to a miss,
//! never to a wrong answer.
//!
//! Eviction is least-recently-used over a bounded entry count, with
//! hit/miss/eviction counters surfaced through `GET /metrics`.

use std::collections::HashMap;
use std::sync::Mutex;

/// Hashes a canonical key string with 64-bit FNV-1a.
pub fn fnv1a(key: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in key.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

struct Entry {
    /// The full canonical key, compared on lookup so hash collisions can
    /// never serve a wrong body.
    key: String,
    body: String,
    /// Logical clock of the last touch, for LRU eviction.
    last_used: u64,
}

#[derive(Default)]
struct CacheState {
    entries: HashMap<u64, Entry>,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A snapshot of the cache counters for `GET /metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of stored bodies.
    pub entries: usize,
    /// Configured maximum number of entries.
    pub capacity: usize,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (including collision-degraded ones).
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

/// A bounded LRU cache from canonical request keys to rendered bodies.
#[derive(Debug)]
pub struct ResultCache {
    state: Mutex<CacheState>,
    capacity: usize,
}

impl std::fmt::Debug for CacheState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CacheState({} entries)", self.entries.len())
    }
}

impl ResultCache {
    /// Creates a cache bounded to `capacity` entries (0 disables caching).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            state: Mutex::new(CacheState::default()),
            capacity,
        }
    }

    /// Looks `key` up, counting a hit or a miss.
    pub fn lookup(&self, key: &str) -> Option<String> {
        let mut state = self.state.lock().expect("cache lock");
        state.clock += 1;
        let clock = state.clock;
        let hash = fnv1a(key);
        match state.entries.get_mut(&hash) {
            Some(entry) if entry.key == key => {
                entry.last_used = clock;
                let body = entry.body.clone();
                state.hits += 1;
                Some(body)
            }
            _ => {
                state.misses += 1;
                None
            }
        }
    }

    /// Inserts a rendered body under `key`, evicting the least-recently-used
    /// entry when full. Does nothing when the capacity is zero.
    pub fn insert(&self, key: &str, body: &str) {
        if self.capacity == 0 {
            return;
        }
        let mut state = self.state.lock().expect("cache lock");
        state.clock += 1;
        let clock = state.clock;
        let hash = fnv1a(key);
        if !state.entries.contains_key(&hash) && state.entries.len() >= self.capacity {
            if let Some((&oldest, _)) = state
                .entries
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
            {
                state.entries.remove(&oldest);
                state.evictions += 1;
            }
        }
        state.entries.insert(
            hash,
            Entry {
                key: key.to_string(),
                body: body.to_string(),
                last_used: clock,
            },
        );
    }

    /// Returns the current counters.
    pub fn stats(&self) -> CacheStats {
        let state = self.state.lock().expect("cache lock");
        CacheStats {
            entries: state.entries.len(),
            capacity: self.capacity,
            hits: state.hits,
            misses: state.misses,
            evictions: state.evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_replay_the_exact_body() {
        let cache = ResultCache::new(4);
        assert_eq!(cache.lookup("k1"), None);
        cache.insert("k1", "{\"x\":1}");
        assert_eq!(cache.lookup("k1").as_deref(), Some("{\"x\":1}"));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = ResultCache::new(2);
        cache.insert("a", "1");
        cache.insert("b", "2");
        // Touch `a`, making `b` the LRU victim.
        assert!(cache.lookup("a").is_some());
        cache.insert("c", "3");
        assert_eq!(cache.lookup("b"), None, "b was evicted");
        assert!(cache.lookup("a").is_some());
        assert!(cache.lookup("c").is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let cache = ResultCache::new(2);
        cache.insert("a", "1");
        cache.insert("b", "2");
        cache.insert("a", "updated");
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.lookup("a").as_deref(), Some("updated"));
        assert!(cache.lookup("b").is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ResultCache::new(0);
        cache.insert("a", "1");
        assert_eq!(cache.lookup("a"), None);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned values guard against accidental algorithm changes, which
        // would silently invalidate nothing but is worth noticing.
        assert_eq!(fnv1a(""), 0xcbf29ce484222325);
        assert_eq!(fnv1a("a"), 0xaf63dc4c8601ec8c);
        assert_ne!(fnv1a("simulate|x"), fnv1a("simulate|y"));
    }
}
