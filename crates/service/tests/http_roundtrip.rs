//! End-to-end integration tests over real sockets: cache semantics, job
//! lifecycle, graceful shutdown and conformance of served results against
//! the library run directly.

use std::time::Duration;

use gillespie::{Ensemble, EnsembleOptions, SimulationOptions, SpeciesThresholdClassifier};
use service::{serve, App, Client, Method, Request, ServiceConfig};

fn test_config() -> ServiceConfig {
    ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        queue_capacity: 256,
        cache_capacity: 64,
        max_body_bytes: 1 << 20,
        fabric: None,
        slow_request_ms: 10_000,
    }
}

fn coin_request(seed: u64, trials: u64, wait: bool) -> String {
    format!(
        "{{\"network\":\"x -> h @ 3\\nx -> t @ 1\",\"initial\":{{\"x\":1}},\
         \"trials\":{trials},\"seed\":{seed},\"wait\":{wait},\
         \"classifier\":[\
         {{\"species\":\"h\",\"at_least\":1,\"outcome\":\"heads\"}},\
         {{\"species\":\"t\",\"at_least\":1,\"outcome\":\"tails\"}}]}}"
    )
}

/// Reads `path.to.key` out of a JSON body.
fn json_number(body: &str, path: &[&str]) -> f64 {
    let mut value = service::json::parse(body).expect("valid JSON body");
    for key in path {
        value = value
            .get(key)
            .unwrap_or_else(|| panic!("missing `{key}` in {body}"))
            .clone();
    }
    value.as_f64(path.last().unwrap()).expect("numeric field")
}

/// The tentpole acceptance test: the same ensemble job twice over HTTP —
/// the second response comes from the cache, byte-identical, and
/// `GET /metrics` shows exactly one cache hit.
#[test]
fn repeated_request_is_a_byte_identical_cache_hit() {
    let handle = serve(test_config()).expect("bind");
    let client = Client::new(handle.addr()).expect("client");

    let request = coin_request(7, 2_000, true);
    let fresh = client
        .post("/simulate", &request)
        .expect("first round trip");
    assert_eq!(fresh.status, 200, "body: {}", fresh.body);
    assert_eq!(fresh.header("cache"), Some("miss"));
    // The report is self-describing: the seed rides in the body…
    assert_eq!(json_number(&fresh.body, &["seed"]), 7.0);

    let cached = client
        .post("/simulate", &request)
        .expect("second round trip");
    assert_eq!(cached.status, 200);
    assert_eq!(cached.header("cache"), Some("hit"));
    // …so cached and fresh responses differ *only* in the cache header.
    assert_eq!(
        cached.body, fresh.body,
        "cache replay must be byte-identical"
    );

    let metrics = client.get("/metrics").expect("metrics");
    assert_eq!(json_number(&metrics.body, &["cache", "hits"]), 1.0);
    assert_eq!(json_number(&metrics.body, &["cache", "misses"]), 1.0);
    assert_eq!(json_number(&metrics.body, &["scheduler", "completed"]), 1.0);

    handle.shutdown(Duration::from_secs(2));
    handle.join();
}

/// Served ensemble reports must not diverge from a single-threaded library
/// run — the scheduler's chunked fan-out is bit-faithful.
#[test]
fn served_reports_match_a_single_threaded_run() {
    let handle = serve(test_config()).expect("bind");
    let client = Client::new(handle.addr()).expect("client");
    let reply = client
        .post("/simulate", &coin_request(99, 3_000, true))
        .expect("round trip");
    assert_eq!(reply.status, 200, "body: {}", reply.body);

    let crn: crn::Crn = "x -> h @ 3\nx -> t @ 1".parse().expect("network");
    let initial = crn.state_from_counts([("x", 1)]).expect("state");
    let classifier = SpeciesThresholdClassifier::new()
        .rule_named(&crn, "h", 1, "heads")
        .expect("rule")
        .rule_named(&crn, "t", 1, "tails")
        .expect("rule");
    let report = Ensemble::new(&crn, initial, classifier)
        .options(
            EnsembleOptions::new()
                .trials(3_000)
                .master_seed(99)
                .threads(1)
                .simulation(SimulationOptions::new().max_events(10_000_000)),
        )
        .run()
        .expect("local run");

    assert_eq!(
        json_number(&reply.body, &["report", "counts", "heads"]),
        report.count("heads") as f64
    );
    assert_eq!(
        json_number(&reply.body, &["report", "counts", "tails"]),
        report.count("tails") as f64
    );
    assert_eq!(
        json_number(&reply.body, &["report", "mean_final_time"]),
        report.mean_final_time,
        "floating-point statistics must be bit-identical"
    );

    handle.shutdown(Duration::from_secs(2));
    handle.join();
}

/// A lambda-switch `POST /synthesize` round trip must match the exact CME
/// goldens pinned in `tests/exact_verification.rs`.
#[test]
fn synthesize_round_trip_matches_exact_verification_goldens() {
    let handle = serve(test_config()).expect("bind");
    let client = Client::new(handle.addr()).expect("client");
    let request = "{\"input\":\"moi\",\
        \"response\":{\"constant\":2,\"log2\":1,\"linear\":1},\
        \"outcomes\":[\"lysis\",\"lysogeny\"],\"outputs\":[\"cro2\",\"ci2\"],\
        \"thresholds\":[1,1],\"food\":[1,1],\"input_total\":8,\
        \"input_range\":[1,4],\"evaluate\":[1,2],\"wait\":true}";
    let reply = client.post("/synthesize", request).expect("round trip");
    assert_eq!(reply.status, 200, "body: {}", reply.body);

    let body = service::json::parse(&reply.body).expect("valid body");
    let evaluations = body
        .get("evaluations")
        .expect("evaluations")
        .as_array("evaluations")
        .expect("array");
    // The same goldens as tests/exact_verification.rs, to the same 1e-9.
    let golden = [(1.0, 0.374_999_999_750), (2.0, 0.624_998_998_258)];
    assert_eq!(evaluations.len(), golden.len());
    for (evaluation, (x, expected)) in evaluations.iter().zip(golden) {
        assert_eq!(evaluation.get("x").unwrap().as_f64("x").unwrap(), x);
        let lysis = evaluation
            .get("exact")
            .expect("exact")
            .get("lysis")
            .expect("lysis")
            .as_f64("lysis")
            .expect("number");
        assert!(
            (lysis - expected).abs() < 1e-9,
            "x={x}: served {lysis:.12} vs golden {expected:.12}"
        );
    }

    // The cached replay agrees byte for byte.
    let cached = client.post("/synthesize", request).expect("replay");
    assert_eq!(cached.header("cache"), Some("hit"));
    assert_eq!(cached.body, reply.body);

    handle.shutdown(Duration::from_secs(2));
    handle.join();
}

/// `POST /exact` answers a first-passage query with the exact probability.
#[test]
fn exact_endpoint_serves_first_passage_probabilities() {
    let handle = serve(test_config()).expect("bind");
    let client = Client::new(handle.addr()).expect("client");
    let request = "{\"network\":\"x -> heads @ 3\\nx -> tails @ 1\",\
        \"initial\":{\"x\":1},\
        \"bounds\":{\"policy\":\"strict\",\"default_cap\":1},\
        \"analysis\":{\"type\":\"first_passage\",\"outcomes\":[\
        {\"name\":\"heads\",\"species\":\"heads\",\"at_least\":1},\
        {\"name\":\"tails\",\"species\":\"tails\",\"at_least\":1}]},\
        \"wait\":true}";
    let reply = client.post("/exact", request).expect("round trip");
    assert_eq!(reply.status, 200, "body: {}", reply.body);
    let heads = json_number(&reply.body, &["probabilities", "heads"]);
    assert!((heads - 0.75).abs() < 1e-12, "exact P(heads) = {heads}");

    handle.shutdown(Duration::from_secs(2));
    handle.join();
}

/// Async lifecycle: submit without `wait`, poll to completion, then cancel
/// a long job and watch its worker slot go to the next job.
#[test]
fn cancellation_frees_the_worker_slot() {
    let mut config = test_config();
    config.workers = 1; // a single slot makes occupancy observable
    let handle = serve(config).expect("bind");
    let client = Client::new(handle.addr()).expect("client");

    // A long-running job: tens of millions of quick trials.
    let long = client
        .post("/simulate", &coin_request(1, 50_000_000, false))
        .expect("submit long");
    assert_eq!(long.status, 202, "body: {}", long.body);
    let long_id = json_number(&long.body, &["job"]) as u64;

    // A short job queued behind it.
    let short = client
        .post("/simulate", &coin_request(2, 1_000, false))
        .expect("submit short");
    assert_eq!(short.status, 202);
    let short_id = json_number(&short.body, &["job"]) as u64;

    // Cancel the long job; its trial-granular token poll frees the slot.
    let cancelled = client.delete(&format!("/jobs/{long_id}")).expect("cancel");
    assert_eq!(cancelled.status, 202, "body: {}", cancelled.body);

    // The short job now completes…
    let done = client
        .get(&format!("/jobs/{short_id}?wait=1"))
        .expect("poll short");
    assert_eq!(done.status, 200, "body: {}", done.body);
    assert_eq!(done.header("x-job-state"), Some("completed"));
    assert_eq!(done.header("cache"), Some("miss"));

    // …and the long job settles as cancelled.
    let long_status = client
        .get(&format!("/jobs/{long_id}?wait=1"))
        .expect("poll long");
    assert_eq!(long_status.header("x-job-state"), Some("cancelled"));
    // Cancelling again conflicts.
    let again = client
        .delete(&format!("/jobs/{long_id}"))
        .expect("re-cancel");
    assert_eq!(again.status, 409);

    handle.shutdown(Duration::from_secs(2));
    handle.join();
}

/// 64 jobs in flight on the scheduler at once: everything completes, and
/// spot-checked reports match fresh library runs.
#[test]
fn sustains_64_concurrent_in_flight_jobs() {
    let handle = serve(test_config()).expect("bind");
    let client = Client::new(handle.addr()).expect("client");

    let mut ids = Vec::new();
    for seed in 0..64u64 {
        let reply = client
            .post("/simulate", &coin_request(seed, 50_000, false))
            .expect("submit");
        assert_eq!(reply.status, 202, "seed {seed}: {}", reply.body);
        ids.push((seed, json_number(&reply.body, &["job"]) as u64));
    }
    // All 64 were accepted before any could finish submitting's worth of
    // work; now they must all complete without deadlock.
    for (seed, id) in &ids {
        let done = client.get(&format!("/jobs/{id}?wait=1")).expect("poll");
        assert_eq!(
            done.header("x-job-state"),
            Some("completed"),
            "seed {seed}: {}",
            done.body
        );
        assert_eq!(json_number(&done.body, &["seed"]), *seed as f64);
    }
    let metrics = client.get("/metrics").expect("metrics");
    assert_eq!(
        json_number(&metrics.body, &["scheduler", "completed"]),
        64.0
    );
    assert_eq!(json_number(&metrics.body, &["scheduler", "failed"]), 0.0);

    // Divergence spot check against a single-threaded library run.
    let crn: crn::Crn = "x -> h @ 3\nx -> t @ 1".parse().expect("network");
    let initial = crn.state_from_counts([("x", 1)]).expect("state");
    for seed in [0u64, 31, 63] {
        let classifier = SpeciesThresholdClassifier::new()
            .rule_named(&crn, "h", 1, "heads")
            .expect("rule")
            .rule_named(&crn, "t", 1, "tails")
            .expect("rule");
        let report = Ensemble::new(&crn, initial.clone(), classifier)
            .options(
                EnsembleOptions::new()
                    .trials(50_000)
                    .master_seed(seed)
                    .threads(1)
                    .simulation(SimulationOptions::new().max_events(10_000_000)),
            )
            .run()
            .expect("local run");
        let (_, id) = ids[seed as usize];
        let served = client.get(&format!("/jobs/{id}")).expect("fetch");
        assert_eq!(
            json_number(&served.body, &["report", "counts", "heads"]),
            report.count("heads") as f64,
            "seed {seed} diverged from the single-threaded run"
        );
    }

    handle.shutdown(Duration::from_secs(5));
    handle.join();
}

/// Malformed input surfaces as a 400 with the parser's line+column.
#[test]
fn bad_requests_name_line_and_column() {
    let handle = serve(test_config()).expect("bind");
    let client = Client::new(handle.addr()).expect("client");

    let reply = client
        .post("/simulate", "{\"network\":\"x -> h @ fast\",\"trials\":10}")
        .expect("round trip");
    assert_eq!(reply.status, 400);
    assert!(
        reply.body.contains("line 1, column 10"),
        "error should pinpoint the bad rate: {}",
        reply.body
    );

    let reply = client.post("/simulate", "not json").expect("round trip");
    assert_eq!(reply.status, 400);

    let reply = client.get("/jobs/999").expect("round trip");
    assert_eq!(reply.status, 404);

    let reply = client.post("/healthz", "{}").expect("round trip");
    assert_eq!(reply.status, 405);

    let reply = client.get("/nope").expect("round trip");
    assert_eq!(reply.status, 404);

    handle.shutdown(Duration::from_secs(2));
    handle.join();
}

/// A throwaway server that answers its first connection with a canned,
/// possibly malformed, HTTP response — for client-hardening regressions.
fn canned_server(response: &'static str) -> std::net::SocketAddr {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    std::thread::spawn(move || {
        if let Ok((mut stream, _)) = listener.accept() {
            use std::io::{Read, Write};
            let mut scratch = [0u8; 4096];
            let _ = stream.read(&mut scratch);
            let _ = stream.write_all(response.as_bytes());
        }
    });
    addr
}

/// An address nothing listens on: bind an ephemeral port, then drop the
/// listener so connects are refused.
fn dead_addr() -> std::net::SocketAddr {
    std::net::TcpListener::bind("127.0.0.1:0")
        .expect("bind")
        .local_addr()
        .expect("addr")
}

/// Regression: `Client::new` used to keep only the *first* resolved
/// address, so a multi-address resolution whose first candidate was dead
/// failed outright. Every address must be tried in order.
#[test]
fn client_tries_every_resolved_address() {
    let handle = serve(test_config()).expect("bind");
    let addrs = [dead_addr(), handle.addr()];
    let client = Client::new(&addrs[..]).expect("client");
    let reply = client.get("/healthz").expect("second address must answer");
    assert_eq!(reply.status, 200);
    handle.shutdown(Duration::from_secs(2));
    handle.join();
}

/// Regression: duplicate `Content-Length` headers with conflicting values
/// were resolved last-write-wins — classic request-smuggling surface. Both
/// sides of the transport must reject the conflict outright.
#[test]
fn conflicting_content_lengths_are_rejected_on_both_sides() {
    // Server side: a raw request with two disagreeing lengths gets a 400.
    let handle = serve(test_config()).expect("bind");
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(handle.addr()).expect("connect");
    stream
        .write_all(
            b"POST /simulate HTTP/1.1\r\nhost: test\r\ncontent-length: 2\r\n\
              content-length: 3\r\nconnection: close\r\n\r\n{}",
        )
        .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    assert!(
        response.starts_with("HTTP/1.1 400"),
        "conflicting lengths must be a 400: {response}"
    );
    handle.shutdown(Duration::from_secs(2));
    handle.join();

    // Client side: a response with disagreeing lengths is a transport error.
    let addr =
        canned_server("HTTP/1.1 200 OK\r\ncontent-length: 5\r\ncontent-length: 7\r\n\r\nhello");
    let client = Client::new(addr).expect("client");
    let err = client
        .get("/healthz")
        .expect_err("must reject the conflict");
    assert!(err.contains("conflicting"), "err: {err}");
}

/// Regression: a response without `Content-Length` used to fall back to
/// read-to-EOF, hanging a keep-alive connection for the full I/O timeout.
/// The client must fail fast instead.
#[test]
fn client_fails_fast_on_unframed_responses() {
    let addr = canned_server("HTTP/1.1 200 OK\r\nconnection: keep-alive\r\n\r\nunframed body");
    let client = Client::new(addr)
        .expect("client")
        .timeout(Duration::from_secs(30));
    let start = std::time::Instant::now();
    let err = client
        .get("/healthz")
        .expect_err("must refuse unframed body");
    assert!(err.contains("content-length"), "err: {err}");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "must fail fast, not wait out the I/O timeout"
    );
}

/// `POST /shutdown` is refused for non-loopback peers (checked at the
/// router level with a synthetic peer address) and drains in-flight jobs
/// for loopback callers.
#[test]
fn shutdown_is_loopback_only_and_drains_in_flight_jobs() {
    // Router-level check of the loopback guard.
    let app = App::new(test_config());
    let router = app.router();
    let request = Request {
        method: Method::Post,
        path: "/shutdown".to_string(),
        query: None,
        headers: Vec::new(),
        body: String::new(),
    };
    let refused = router.dispatch(&request, "203.0.113.9:4444".parse().expect("addr"));
    assert_eq!(refused.status, 403);

    // Full-stack drain over a socket.
    let handle = serve(test_config()).expect("bind");
    let client = Client::new(handle.addr()).expect("client");
    let submitted = client
        .post("/simulate", &coin_request(5, 200_000, false))
        .expect("submit");
    assert_eq!(submitted.status, 202);
    let id = json_number(&submitted.body, &["job"]) as u64;

    let drained = client
        .post("/shutdown", "{\"deadline_ms\":30000}")
        .expect("shutdown");
    assert_eq!(drained.status, 200, "body: {}", drained.body);
    assert!(json_number(&drained.body, &["finished"]) >= 1.0);

    // The in-flight job finished rather than being killed.
    let app = handle.app();
    let snapshot = app.scheduler().status(id).expect("job known");
    assert_eq!(snapshot.state, service::JobState::Completed);
    handle.join();
}
