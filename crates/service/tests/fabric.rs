//! Distributed-fabric integration tests over real sockets: byte-determinism
//! across cluster shapes, fault injection, cache federation, worker
//! registration and streaming statistics.

use std::net::{SocketAddr, TcpListener};
use std::time::Duration;

use service::{serve, Client, FabricConfig, ServiceConfig, ServiceHandle};

fn worker_config() -> ServiceConfig {
    ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 256,
        cache_capacity: 256,
        max_body_bytes: 1 << 20,
        fabric: None,
        slow_request_ms: 10_000,
    }
}

/// Boots `n` plain worker daemons and returns their handles + addresses.
fn boot_workers(n: usize) -> (Vec<ServiceHandle>, Vec<String>) {
    let handles: Vec<ServiceHandle> = (0..n)
        .map(|_| serve(worker_config()).expect("bind worker"))
        .collect();
    let addrs = handles.iter().map(|h| h.addr().to_string()).collect();
    (handles, addrs)
}

/// Boots a coordinator daemon sharding across `workers` with a fixed shard
/// size, so shard boundaries (and therefore worker cache keys) do not
/// depend on the cluster shape.
fn boot_coordinator(workers: Vec<String>, shard_trials: u64) -> ServiceHandle {
    let mut config = worker_config();
    config.fabric = Some(FabricConfig {
        workers,
        shard_trials,
        backoff: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(50),
        ..FabricConfig::default()
    });
    serve(config).expect("bind coordinator")
}

fn coin_request(seed: u64, trials: u64) -> String {
    format!(
        "{{\"network\":\"x -> h @ 3\\nx -> t @ 1\",\"initial\":{{\"x\":1}},\
         \"trials\":{trials},\"seed\":{seed},\"wait\":true,\
         \"classifier\":[\
         {{\"species\":\"h\",\"at_least\":1,\"outcome\":\"heads\"}},\
         {{\"species\":\"t\",\"at_least\":1,\"outcome\":\"tails\"}}]}}"
    )
}

fn json_number(body: &str, path: &[&str]) -> f64 {
    let mut value = service::json::parse(body).expect("valid JSON body");
    for key in path {
        value = value
            .get(key)
            .unwrap_or_else(|| panic!("missing `{key}` in {body}"))
            .clone();
    }
    value.as_f64(path.last().unwrap()).expect("numeric field")
}

fn shutdown_all(handles: impl IntoIterator<Item = ServiceHandle>) {
    for handle in handles {
        handle.shutdown(Duration::from_secs(5));
        handle.join();
    }
}

/// An address nothing listens on: bind an ephemeral port, then drop the
/// listener so every connect is refused — a permanently dead worker.
fn dead_worker_addr() -> String {
    TcpListener::bind("127.0.0.1:0")
        .expect("bind")
        .local_addr()
        .expect("addr")
        .to_string()
}

/// The acceptance gate: the same ensemble served single-process and by
/// 1-, 2- and 4-worker fabrics must produce byte-identical response
/// bodies — cluster shape must be unobservable in the result.
#[test]
fn sharded_reports_are_byte_identical_across_cluster_shapes() {
    let request = coin_request(42, 2_000);

    // Reference bytes: a plain single-process daemon.
    let single = serve(worker_config()).expect("bind");
    let reference = Client::new(single.addr())
        .expect("client")
        .post("/simulate", &request)
        .expect("single-process run");
    assert_eq!(reference.status, 200, "body: {}", reference.body);
    shutdown_all([single]);

    for pool_size in [1usize, 2, 4] {
        let (workers, addrs) = boot_workers(pool_size);
        let coordinator = boot_coordinator(addrs, 250);
        let reply = Client::new(coordinator.addr())
            .expect("client")
            .post("/simulate", &request)
            .expect("fabric run");
        assert_eq!(reply.status, 200, "body: {}", reply.body);
        assert_eq!(
            reply.body, reference.body,
            "{pool_size}-worker fabric diverged from the single-process run"
        );

        // The coordinator really sharded: 2000 trials / 250 = 8 shards.
        let fabric = Client::new(coordinator.addr())
            .expect("client")
            .get("/fabric")
            .expect("fabric state");
        assert_eq!(json_number(&fabric.body, &["shards_completed"]), 8.0);
        assert_eq!(json_number(&fabric.body, &["streaming", "trials"]), 2_000.0);

        shutdown_all([coordinator]);
        shutdown_all(workers);
    }
}

/// Fault injection: a pool with a permanently dead worker and a worker
/// killed mid-job still produces the exact single-process bytes — shards
/// rebalance onto survivors, and the retries are visible in the metrics.
#[test]
fn worker_failures_rebalance_without_changing_the_bytes() {
    let request = coin_request(7, 4_000);

    let single = serve(worker_config()).expect("bind");
    let reference = Client::new(single.addr())
        .expect("client")
        .post("/simulate", &request)
        .expect("single-process run");
    assert_eq!(reference.status, 200, "body: {}", reference.body);
    shutdown_all([single]);

    // Pool of three: one dead on arrival, two live — one of which is shot
    // mid-job.
    let (mut workers, mut addrs) = boot_workers(2);
    addrs.insert(0, dead_worker_addr());
    let coordinator = boot_coordinator(addrs, 100); // 40 shards
    let client = Client::new(coordinator.addr()).expect("client");

    // Submit asynchronously, then kill a live worker while shards are in
    // flight; its unfinished shards must retry onto the survivor.
    let submitted = client
        .post(
            "/simulate",
            &request.replace("\"wait\":true", "\"wait\":false"),
        )
        .expect("submit");
    assert_eq!(submitted.status, 202, "body: {}", submitted.body);
    let id = json_number(&submitted.body, &["job"]) as u64;
    let victim = workers.remove(0);
    victim.shutdown(Duration::from_secs(5));
    victim.join();

    let done = client
        .get(&format!("/jobs/{id}?wait=1"))
        .expect("poll to completion");
    assert_eq!(
        done.header("x-job-state"),
        Some("completed"),
        "{}",
        done.body
    );
    assert_eq!(
        done.body, reference.body,
        "fault-injected fabric run diverged from the single-process bytes"
    );

    // The dead worker was dispatched to, failed, and the shards retried.
    let fabric = client.get("/fabric").expect("fabric state");
    assert_eq!(json_number(&fabric.body, &["shards_completed"]), 40.0);
    assert!(json_number(&fabric.body, &["worker_failures"]) >= 1.0);
    assert!(json_number(&fabric.body, &["shard_retries"]) >= 1.0);

    shutdown_all([coordinator]);
    shutdown_all(workers);
}

/// Cache federation: a *fresh* coordinator re-running a job over a pool
/// that has already computed its shards is answered entirely from the
/// workers' caches — and the replay is byte-identical.
#[test]
fn worker_caches_answer_resharded_replays() {
    let request = coin_request(11, 1_000);
    // One worker, so every shard lands in the same cache — shard→worker
    // assignment in larger pools depends on chunk scheduling order, which
    // would make the hit count nondeterministic.
    let (workers, addrs) = boot_workers(1);

    let first = boot_coordinator(addrs.clone(), 250);
    let original = Client::new(first.addr())
        .expect("client")
        .post("/simulate", &request)
        .expect("first fabric run");
    assert_eq!(original.status, 200, "body: {}", original.body);
    let fabric = Client::new(first.addr())
        .expect("client")
        .get("/fabric")
        .expect("fabric state");
    assert_eq!(json_number(&fabric.body, &["remote_cache_misses"]), 4.0);
    assert_eq!(json_number(&fabric.body, &["remote_cache_hits"]), 0.0);
    shutdown_all([first]);

    // A brand-new coordinator has an empty whole-job cache, so it re-shards
    // — but every shard is a worker-tier cache hit.
    let second = boot_coordinator(addrs, 250);
    let replay = Client::new(second.addr())
        .expect("client")
        .post("/simulate", &request)
        .expect("replayed fabric run");
    assert_eq!(replay.header("cache"), Some("miss"), "coordinator tier");
    assert_eq!(
        replay.body, original.body,
        "federated replay must be byte-identical"
    );
    let fabric = Client::new(second.addr())
        .expect("client")
        .get("/fabric")
        .expect("fabric state");
    assert_eq!(json_number(&fabric.body, &["remote_cache_hits"]), 4.0);
    assert_eq!(json_number(&fabric.body, &["remote_cache_misses"]), 0.0);

    // The whole-job coordinator tier still works on top: an identical
    // resubmission to the *same* coordinator is a tier-1 hit.
    let cached = Client::new(second.addr())
        .expect("client")
        .post("/simulate", &request)
        .expect("tier-1 replay");
    assert_eq!(cached.header("cache"), Some("hit"));
    assert_eq!(cached.body, original.body);

    shutdown_all([second]);
    shutdown_all(workers);
}

/// The hybrid multiscale stepper through the wire: a fast birth–death pool
/// with slow production, explicitly requested with `"method": "hybrid"`,
/// sharded across a fabric — the bytes must match the single-process run
/// exactly, leaps, ODE segments, slow-hazard budgets and all.
#[test]
fn hybrid_shards_are_byte_identical_through_the_fabric() {
    let request =
        "{\"network\":\"0 -> x @ 2000\\nx -> 0 @ 0.2\\nx -> x + p @ 0.0002\\np -> 0 @ 0.5\",\
         \"initial\":{},\"method\":\"hybrid\",\"trials\":400,\"seed\":9,\"wait\":true,\
         \"stop\":{\"type\":\"time\",\"t\":0.25},\
         \"classifier\":[{\"species\":\"p\",\"at_least\":1,\"outcome\":\"produced\"}]}";

    let single = serve(worker_config()).expect("bind");
    let reference = Client::new(single.addr())
        .expect("client")
        .post("/simulate", request)
        .expect("single-process run");
    assert_eq!(reference.status, 200, "body: {}", reference.body);
    assert!(
        reference.body.contains("\"method\":\"hybrid\""),
        "response must echo the hybrid method: {}",
        reference.body
    );
    shutdown_all([single]);

    let (workers, addrs) = boot_workers(2);
    let coordinator = boot_coordinator(addrs, 100);
    let reply = Client::new(coordinator.addr())
        .expect("client")
        .post("/simulate", request)
        .expect("fabric run");
    assert_eq!(reply.status, 200, "body: {}", reply.body);
    assert_eq!(
        reply.body, reference.body,
        "hybrid fabric run diverged from the single-process bytes"
    );
    let fabric = Client::new(coordinator.addr())
        .expect("client")
        .get("/fabric")
        .expect("fabric state");
    assert_eq!(json_number(&fabric.body, &["shards_completed"]), 4.0);
    shutdown_all([coordinator]);
    shutdown_all(workers);
}

/// A `/check` parameter sweep over the biased-coin race: `P(h before t)`
/// with the heads rate swept through the grid, each point exactly
/// `k / (k + 1)`.
fn check_sweep_request(values: &str) -> String {
    format!(
        "{{\"network\":\"x -> h @ {{k}}\\nx -> t @ 1\",\"initial\":{{\"x\":1}},\
         \"bounds\":{{\"policy\":\"strict\",\"default_cap\":1}},\
         \"property\":{{\"type\":\"reach_before\",\
         \"target\":{{\"species\":\"h\",\"at_least\":1}},\
         \"competitor\":{{\"species\":\"t\",\"at_least\":1}}}},\
         \"sweep\":{{\"parameter\":\"k\",\"values\":[{values}]}},\"wait\":true}}"
    )
}

/// `/check` sweep determinism: the same robustness landscape computed
/// single-process and by 1-, 2- and 4-worker fabrics must produce
/// byte-identical sweep documents — grid points are pure solves, so the
/// cluster shape must be unobservable.
#[test]
fn check_sweeps_are_byte_identical_across_cluster_shapes() {
    let request = check_sweep_request("1,3,9");

    let single = serve(worker_config()).expect("bind");
    let reference = Client::new(single.addr())
        .expect("client")
        .post("/check", &request)
        .expect("single-process sweep");
    assert_eq!(reference.status, 200, "body: {}", reference.body);
    // Spot-check the landscape itself: P(h before t) = k / (k + 1).
    let sweep = service::json::parse(&reference.body).expect("sweep JSON");
    let service::json::Json::Array(items) = sweep.get("points").expect("points").clone() else {
        panic!("points must be an array")
    };
    assert_eq!(items.len(), 3);
    for (i, k) in [1.0f64, 3.0, 9.0].iter().enumerate() {
        let result = items[i].get("result").expect("result");
        let got = result.get("value").expect("value").as_f64("value").unwrap();
        assert!(
            (got - k / (k + 1.0)).abs() < 1e-12,
            "point {i}: {got} vs {}",
            k / (k + 1.0)
        );
    }
    shutdown_all([single]);

    for pool_size in [1usize, 2, 4] {
        let (workers, addrs) = boot_workers(pool_size);
        let coordinator = boot_coordinator(addrs, 250);
        let reply = Client::new(coordinator.addr())
            .expect("client")
            .post("/check", &request)
            .expect("fabric sweep");
        assert_eq!(reply.status, 200, "body: {}", reply.body);
        assert_eq!(
            reply.body, reference.body,
            "{pool_size}-worker fabric sweep diverged from the single-process document"
        );

        // Every grid point was dispatched as its own fabric work unit.
        let fabric = Client::new(coordinator.addr())
            .expect("client")
            .get("/fabric")
            .expect("fabric state");
        assert_eq!(json_number(&fabric.body, &["shards_completed"]), 3.0);

        shutdown_all([coordinator]);
        shutdown_all(workers);
    }
}

/// Fault injection on a sweep: a dead-on-arrival worker plus a worker shot
/// right after submission still yield the exact single-process sweep
/// bytes — grid points rebalance onto survivors like simulate shards.
#[test]
fn check_sweep_rebalances_after_worker_death() {
    let request = check_sweep_request("1,2,3,4,5,6,7,8");

    let single = serve(worker_config()).expect("bind");
    let reference = Client::new(single.addr())
        .expect("client")
        .post("/check", &request)
        .expect("single-process sweep");
    assert_eq!(reference.status, 200, "body: {}", reference.body);
    shutdown_all([single]);

    let (mut workers, mut addrs) = boot_workers(2);
    addrs.insert(0, dead_worker_addr());
    let coordinator = boot_coordinator(addrs, 100);
    let client = Client::new(coordinator.addr()).expect("client");

    let submitted = client
        .post(
            "/check",
            &request.replace("\"wait\":true", "\"wait\":false"),
        )
        .expect("submit");
    assert_eq!(submitted.status, 202, "body: {}", submitted.body);
    let id = json_number(&submitted.body, &["job"]) as u64;
    let victim = workers.remove(0);
    victim.shutdown(Duration::from_secs(5));
    victim.join();

    let done = client
        .get(&format!("/jobs/{id}?wait=1"))
        .expect("poll to completion");
    assert_eq!(
        done.header("x-job-state"),
        Some("completed"),
        "{}",
        done.body
    );
    assert_eq!(
        done.body, reference.body,
        "fault-injected sweep diverged from the single-process bytes"
    );

    // The dead worker was dispatched to, failed, and the points retried.
    let fabric = client.get("/fabric").expect("fabric state");
    assert_eq!(json_number(&fabric.body, &["shards_completed"]), 8.0);
    assert!(json_number(&fabric.body, &["worker_failures"]) >= 1.0);
    assert!(json_number(&fabric.body, &["shard_retries"]) >= 1.0);

    shutdown_all([coordinator]);
    shutdown_all(workers);
}

/// `/check` cache federation: a fresh coordinator re-running a sweep over
/// a warm single-worker pool is answered entirely from the worker's
/// per-point cache — every grid point counts exactly one remote hit — and
/// the points also answer *single-point* `/check` requests directly.
#[test]
fn check_points_federate_through_worker_caches() {
    let request = check_sweep_request("1,3,9,27");
    let (workers, addrs) = boot_workers(1);

    let first = boot_coordinator(addrs.clone(), 250);
    let original = Client::new(first.addr())
        .expect("client")
        .post("/check", &request)
        .expect("first sweep");
    assert_eq!(original.status, 200, "body: {}", original.body);
    let fabric = Client::new(first.addr())
        .expect("client")
        .get("/fabric")
        .expect("fabric state");
    assert_eq!(json_number(&fabric.body, &["remote_cache_misses"]), 4.0);
    assert_eq!(json_number(&fabric.body, &["remote_cache_hits"]), 0.0);
    shutdown_all([first]);

    // A brand-new coordinator re-dispatches every point; each is a
    // worker-tier hit, counted exactly once, and the document is
    // byte-identical.
    let second = boot_coordinator(addrs.clone(), 250);
    let replay = Client::new(second.addr())
        .expect("client")
        .post("/check", &request)
        .expect("replayed sweep");
    assert_eq!(replay.header("cache"), Some("miss"), "coordinator tier");
    assert_eq!(replay.body, original.body);
    let fabric = Client::new(second.addr())
        .expect("client")
        .get("/fabric")
        .expect("fabric state");
    assert_eq!(json_number(&fabric.body, &["remote_cache_hits"]), 4.0);
    assert_eq!(json_number(&fabric.body, &["remote_cache_misses"]), 0.0);

    // Tier-1 on top: resubmitting to the same coordinator replays the
    // whole document without touching the pool.
    let cached = Client::new(second.addr())
        .expect("client")
        .post("/check", &request)
        .expect("tier-1 replay");
    assert_eq!(cached.header("cache"), Some("hit"));
    assert_eq!(cached.body, original.body);

    // The worker cached each point under its canonical single-point key:
    // the same property posted as a plain (sweepless) `/check` with the
    // substituted rate is answered from cache.
    let point = "{\"network\":\"x -> h @ 3\\nx -> t @ 1\",\"initial\":{\"x\":1},\
                 \"bounds\":{\"policy\":\"strict\",\"default_cap\":1},\
                 \"property\":{\"type\":\"reach_before\",\
                 \"target\":{\"species\":\"h\",\"at_least\":1},\
                 \"competitor\":{\"species\":\"t\",\"at_least\":1}},\"wait\":true}";
    let direct = Client::new(workers[0].addr())
        .expect("client")
        .post("/check", point)
        .expect("single-point replay");
    assert_eq!(direct.status, 200, "body: {}", direct.body);
    assert_eq!(direct.header("cache"), Some("hit"), "body: {}", direct.body);
    let value = json_number(&direct.body, &["value"]);
    assert!((value - 0.75).abs() < 1e-12, "value {value}");

    shutdown_all([second]);
    shutdown_all(workers);
}

/// Workers can join a running coordinator through `POST /fabric/workers`;
/// `GET /fabric` reflects the pool, and jobs shard as soon as the first
/// worker registers. The endpoint is loopback-only, like `/shutdown`.
#[test]
fn workers_register_at_runtime() {
    // A coordinator configured as a fabric but with an empty pool runs jobs
    // locally until someone registers.
    let coordinator = boot_coordinator(Vec::new(), 100);
    let client = Client::new(coordinator.addr()).expect("client");

    let local = client
        .post("/simulate", &coin_request(3, 200))
        .expect("local run");
    assert_eq!(local.status, 200, "body: {}", local.body);
    let fabric = client.get("/fabric").expect("fabric state");
    assert_eq!(json_number(&fabric.body, &["shards_completed"]), 0.0);

    let (workers, addrs) = boot_workers(1);
    let registered = client
        .post("/fabric/workers", &format!("{{\"addr\":\"{}\"}}", addrs[0]))
        .expect("register");
    assert_eq!(registered.status, 200, "body: {}", registered.body);
    assert_eq!(json_number(&registered.body, &["workers"]), 1.0);
    // Re-registration is idempotent.
    let again = client
        .post("/fabric/workers", &format!("{{\"addr\":\"{}\"}}", addrs[0]))
        .expect("re-register");
    assert_eq!(json_number(&again.body, &["workers"]), 1.0);

    // A different seed (so the coordinator cache cannot answer) now shards.
    let sharded = client
        .post("/simulate", &coin_request(4, 200))
        .expect("sharded run");
    assert_eq!(sharded.status, 200, "body: {}", sharded.body);
    let fabric = client.get("/fabric").expect("fabric state");
    assert_eq!(json_number(&fabric.body, &["shards_completed"]), 2.0);

    // `/metrics` carries the same fabric section for scrapers.
    let metrics = client.get("/metrics").expect("metrics");
    assert_eq!(
        json_number(&metrics.body, &["fabric", "shards_completed"]),
        2.0
    );

    shutdown_all([coordinator]);
    shutdown_all(workers);
}

/// `GET /fabric` on a daemon that is not a coordinator is a 400, and
/// registration is refused for non-loopback peers at the router level.
#[test]
fn fabric_endpoints_guard_their_preconditions() {
    let plain = serve(worker_config()).expect("bind");
    let client = Client::new(plain.addr()).expect("client");
    let reply = client.get("/fabric").expect("round trip");
    assert_eq!(reply.status, 400, "body: {}", reply.body);
    shutdown_all([plain]);

    use service::{App, Method, Request};
    let mut config = worker_config();
    config.fabric = Some(FabricConfig::default());
    let app = App::new(config);
    let router = app.router();
    let request = Request {
        method: Method::Post,
        path: "/fabric/workers".to_string(),
        query: None,
        headers: Vec::new(),
        body: "{\"addr\":\"127.0.0.1:9001\"}".to_string(),
    };
    let refused = router.dispatch(&request, "203.0.113.9:4444".parse::<SocketAddr>().unwrap());
    assert_eq!(refused.status, 403);
}

/// A large streaming job: 200k trials over a small pool. The coordinator
/// only ever holds one `O(1)` partial per shard, and its running moments
/// cover every merged trial; the final report matches the single-process
/// bytes.
#[test]
fn large_jobs_stream_with_bounded_coordinator_state() {
    let request = coin_request(123, 200_000);

    let single = serve(worker_config()).expect("bind");
    let reference = Client::new(single.addr())
        .expect("client")
        .post("/simulate", &request)
        .expect("single-process run");
    assert_eq!(reference.status, 200);
    shutdown_all([single]);

    let (workers, addrs) = boot_workers(2);
    let coordinator = boot_coordinator(addrs, 25_000); // 8 shards
    let client = Client::new(coordinator.addr()).expect("client");
    let reply = client.post("/simulate", &request).expect("fabric run");
    assert_eq!(reply.status, 200, "body: {}", reply.body);
    assert_eq!(reply.body, reference.body);

    let fabric = client.get("/fabric").expect("fabric state");
    assert_eq!(
        json_number(&fabric.body, &["streaming", "trials"]),
        200_000.0
    );
    let mean = json_number(&fabric.body, &["streaming", "mean_final_time"]);
    let reported = json_number(&reply.body, &["report", "mean_final_time"]);
    // The streamed Welford mean is monitoring-grade (not byte-pinned); it
    // must agree with the exact-summation report to float tolerance.
    assert!(
        (mean - reported).abs() < 1e-9 * reported.abs().max(1.0),
        "streamed mean {mean} vs exact {reported}"
    );
    let variance = json_number(&fabric.body, &["streaming", "final_time_variance"]);
    assert!(variance > 0.0);

    shutdown_all([coordinator]);
    shutdown_all(workers);
}
