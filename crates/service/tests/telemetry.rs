//! Telemetry integration tests: structured logging and trace-span
//! recording never change result bytes, `GET /trace/:job_id` exposes the
//! full span tree of a fabric job, and both metrics expositions stay
//! consistent with the traffic that produced them.
//!
//! The global logger is process-wide, so every assertion that captures or
//! reconfigures it lives in ONE test (`trace_level_logging_...`); the
//! other tests leave the logger alone (its default state is off).

use std::collections::HashSet;
use std::time::Duration;

use obs::log::BufferWriter;
use service::json::Json;
use service::{serve, Client, FabricConfig, ServiceConfig, ServiceHandle};

fn test_config() -> ServiceConfig {
    ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 256,
        cache_capacity: 256,
        max_body_bytes: 1 << 20,
        fabric: None,
        slow_request_ms: 10_000,
    }
}

fn boot_workers(n: usize) -> (Vec<ServiceHandle>, Vec<String>) {
    let handles: Vec<ServiceHandle> = (0..n)
        .map(|_| serve(test_config()).expect("bind worker"))
        .collect();
    let addrs = handles.iter().map(|h| h.addr().to_string()).collect();
    (handles, addrs)
}

fn boot_coordinator(workers: Vec<String>, shard_trials: u64) -> ServiceHandle {
    let mut config = test_config();
    // Any request slower than 1 ms is "slow" — which a fabric ensemble job
    // always is, so the slow_request warning path gets exercised.
    config.slow_request_ms = 1;
    config.fabric = Some(FabricConfig {
        workers,
        shard_trials,
        backoff: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(50),
        ..FabricConfig::default()
    });
    serve(config).expect("bind coordinator")
}

fn coin_request(seed: u64, trials: u64, wait: bool) -> String {
    format!(
        "{{\"network\":\"x -> h @ 3\\nx -> t @ 1\",\"initial\":{{\"x\":1}},\
         \"trials\":{trials},\"seed\":{seed},\"wait\":{wait},\
         \"classifier\":[\
         {{\"species\":\"h\",\"at_least\":1,\"outcome\":\"heads\"}},\
         {{\"species\":\"t\",\"at_least\":1,\"outcome\":\"tails\"}}]}}"
    )
}

fn json_number(body: &str, path: &[&str]) -> f64 {
    let mut value = service::json::parse(body).expect("valid JSON body");
    for key in path {
        value = value
            .get(key)
            .unwrap_or_else(|| panic!("missing `{key}` in {body}"))
            .clone();
    }
    value.as_f64(path.last().unwrap()).expect("numeric field")
}

fn shutdown_all(handles: impl IntoIterator<Item = ServiceHandle>) {
    for handle in handles {
        handle.shutdown(Duration::from_secs(5));
        handle.join();
    }
}

/// One parsed span from a `/trace/:id` body.
#[derive(Debug)]
struct SpanRow {
    id: String,
    parent: Option<String>,
    name: String,
}

fn parse_spans(body: &str) -> Vec<SpanRow> {
    let parsed = service::json::parse(body).expect("valid trace body");
    let Some(Json::Array(spans)) = parsed.get("spans") else {
        panic!("no spans array in {body}");
    };
    spans
        .iter()
        .map(|span| {
            let field = |key: &str| {
                span.get(key)
                    .unwrap_or_else(|| panic!("span missing `{key}` in {body}"))
                    .clone()
            };
            let id = field("id").as_str("id").expect("span id").to_string();
            let parent = match field("parent") {
                Json::Null => None,
                Json::String(parent) => Some(parent),
                other => panic!("span parent is {other:?}"),
            };
            let name = field("name").as_str("name").expect("span name").to_string();
            SpanRow { id, parent, name }
        })
        .collect()
}

/// The tentpole's acceptance gate: turn EVERYTHING on — trace-level JSON
/// logging into a capture buffer, a 3-worker fabric with trace-header
/// propagation, a 1 ms slow-request threshold — and the result bytes must
/// still be identical to a silent single-process run. Then walk the
/// recorded span tree end to end.
#[test]
fn trace_level_logging_leaves_fabric_bytes_identical_and_records_the_span_tree() {
    // Reference bytes first, with the logger in its default (off) state.
    let reference_request = coin_request(99, 600, true);
    let single = serve(test_config()).expect("bind single");
    let reference = Client::new(single.addr())
        .expect("client")
        .post("/simulate", &reference_request)
        .expect("single-process run");
    assert_eq!(reference.status, 200, "body: {}", reference.body);
    shutdown_all([single]);

    // Now the loudest possible telemetry configuration.
    let buffer = BufferWriter::new();
    obs::logger().set_writer(Box::new(buffer.clone()));
    obs::logger().set_json(true);
    obs::logger().set_level_spec("trace").expect("level spec");

    let (workers, addrs) = boot_workers(3);
    let coordinator = boot_coordinator(addrs, 200); // 600 trials → 3 shards
    let client = Client::new(coordinator.addr()).expect("client");
    let reply = client
        .post("/simulate", &reference_request)
        .expect("fabric run");
    assert_eq!(reply.status, 200, "body: {}", reply.body);
    assert_eq!(
        reply.body, reference.body,
        "trace-level logging + fabric tracing changed the result bytes"
    );

    // A fresh-seed async submission hands back the job id, which is the
    // trace id. (A cache replay would record no trace at all.)
    let submitted = client
        .post("/simulate", &coin_request(100, 600, false))
        .expect("async submit");
    assert_eq!(submitted.status, 202, "body: {}", submitted.body);
    let job = json_number(&submitted.body, &["job"]) as u64;
    let done = client
        .get(&format!("/jobs/{job}?wait=1"))
        .expect("wait for job");
    assert_eq!(done.status, 200, "body: {}", done.body);

    // Coordinator-side span tree: root job span, parse, classify,
    // schedule-wait, one shard span per planned shard with its dispatch
    // attempts, and the merge.
    let trace = client.get(&format!("/trace/{job}")).expect("trace query");
    assert_eq!(trace.status, 200, "body: {}", trace.body);
    let spans = parse_spans(&trace.body);
    let count = |name: &str| spans.iter().filter(|s| s.name == name).count();
    assert_eq!(count("job"), 1, "spans: {:?}", spans);
    assert_eq!(count("parse"), 1, "spans: {:?}", spans);
    assert_eq!(count("classify"), 1, "spans: {:?}", spans);
    assert_eq!(count("schedule-wait"), 1, "spans: {:?}", spans);
    assert_eq!(count("shard"), 3, "spans: {:?}", spans);
    assert!(count("dispatch") >= 3, "spans: {:?}", spans);
    assert_eq!(count("merge"), 1, "spans: {:?}", spans);

    // The tree is well-formed: exactly one root, and every parent id
    // resolves to another recorded span.
    let ids: HashSet<&str> = spans.iter().map(|s| s.id.as_str()).collect();
    for span in &spans {
        match (&span.parent, span.name.as_str()) {
            (None, "job") => {}
            (None, other) => panic!("span `{other}` has no parent"),
            (Some(parent), _) => {
                assert!(
                    ids.contains(parent.as_str()),
                    "span `{}` has dangling parent {parent}; spans: {:?}",
                    span.name,
                    spans
                );
            }
        }
    }

    // Worker-side: the trace header carried the coordinator's trace id, so
    // the workers' own sinks hold the `shard-exec` spans for this job.
    let mut shard_execs = 0;
    for worker in &workers {
        let reply = Client::new(worker.addr())
            .expect("client")
            .get(&format!("/trace/{job}"))
            .expect("worker trace query");
        if reply.status == 200 {
            shard_execs += parse_spans(&reply.body)
                .iter()
                .filter(|s| s.name == "shard-exec")
                .count();
        }
    }
    assert!(
        shard_execs >= 3,
        "expected one shard-exec span per shard across the workers, saw {shard_execs}"
    );

    // Captured log output: JSON lines with the standard envelope, covering
    // the scheduler, the fabric and the slow-request warning (the 1 ms
    // threshold on the coordinator makes every ensemble job "slow").
    let contents = buffer.contents();
    assert!(!contents.is_empty(), "trace-level run logged nothing");
    for line in contents.lines().filter(|l| !l.is_empty()) {
        let parsed = service::json::parse(line)
            .unwrap_or_else(|e| panic!("log line is not JSON ({e}): {line}"));
        for key in ["ts_us", "level", "target", "event"] {
            assert!(
                parsed.get(key).is_some(),
                "log line missing `{key}`: {line}"
            );
        }
    }
    for event in [
        "job_queued",
        "job_started",
        "job_finished",
        "dispatch",
        "slow_request",
    ] {
        assert!(
            contents.contains(&format!("\"event\":\"{event}\"")),
            "no `{event}` event in captured logs:\n{contents}"
        );
    }

    // Leave the global logger silent for any test scheduled after this one.
    obs::logger().set_level_spec("off").expect("reset level");
    obs::logger().set_json(false);
    shutdown_all([coordinator]);
    shutdown_all(workers);
}

/// The JSON exposition gained an additive per-endpoint section, and
/// `?format=text` renders the whole registry (plus cache/scheduler extras)
/// as a Prometheus-style text document.
#[test]
fn metrics_expositions_cover_endpoints_uptime_and_cache() {
    let handle = serve(test_config()).expect("bind");
    let client = Client::new(handle.addr()).expect("client");
    let request = coin_request(7, 50, true);
    let first = client.post("/simulate", &request).expect("simulate");
    assert_eq!(first.status, 200, "body: {}", first.body);
    let bad = client
        .post("/simulate", "{definitely not json")
        .expect("bad request");
    assert_eq!(bad.status, 400, "body: {}", bad.body);
    let replay = client.post("/simulate", &request).expect("replay");
    assert_eq!(replay.header("cache"), Some("hit"));

    let metrics = client.get("/metrics").expect("metrics");
    assert_eq!(metrics.status, 200);
    assert!(json_number(&metrics.body, &["uptime_ms"]) >= 0.0);
    assert_eq!(
        json_number(&metrics.body, &["endpoints", "simulate", "requests"]),
        3.0,
        "body: {}",
        metrics.body
    );
    assert_eq!(
        json_number(&metrics.body, &["endpoints", "simulate", "responses_4xx"]),
        1.0
    );
    assert_eq!(
        json_number(
            &metrics.body,
            &["endpoints", "simulate", "latency_us", "count"]
        ),
        3.0
    );
    // The legacy shape is untouched: the per-endpoint counter and the named
    // field are the same series.
    assert_eq!(
        json_number(&metrics.body, &["http", "simulate_requests"]),
        3.0
    );

    let text = client.get("/metrics?format=text").expect("text metrics");
    assert_eq!(text.status, 200);
    assert_eq!(
        text.header("content-type"),
        Some("text/plain; charset=utf-8")
    );
    for needle in [
        "http_requests_total{endpoint=\"simulate\"} 3\n",
        "http_responses_total{endpoint=\"simulate\",class=\"4xx\"} 1\n",
        "http_request_duration_us{endpoint=\"simulate\",quantile=\"0.5\"}",
        "sim_steps_total{stepper=\"",
        "scheduler_queue_depth 0\n",
        "scheduler_queue_wait_us_count 1\n",
        "cache_lookup_duration_us_count 2\n",
        "cache_hits_total 1\n",
        "cache_misses_total 1\n",
        "service_uptime_ms",
    ] {
        assert!(
            text.body.contains(needle),
            "missing `{needle}` in:\n{}",
            text.body
        );
    }

    shutdown_all([handle]);
}

/// `/trace/:id` input validation: unknown jobs 404, non-numeric ids 400.
#[test]
fn trace_endpoint_rejects_unknown_and_malformed_ids() {
    let handle = serve(test_config()).expect("bind");
    let client = Client::new(handle.addr()).expect("client");
    assert_eq!(client.get("/trace/999999").expect("query").status, 404);
    assert_eq!(client.get("/trace/not-a-job").expect("query").status, 400);
    shutdown_all([handle]);
}

/// Queue-depth and running-jobs gauges move with the scheduler: a saturated
/// one-worker daemon reports a visible queue through the text exposition.
#[test]
fn scheduler_gauges_track_queue_depth() {
    let mut config = test_config();
    config.workers = 1;
    let handle = serve(config).expect("bind");
    let client = Client::new(handle.addr()).expect("client");
    // A pile of async jobs (distinct seeds defeat the cache) on one worker:
    // at least some must be queued or running when we sample the gauges.
    for seed in 0..8 {
        let reply = client
            .post("/simulate", &coin_request(1_000 + seed, 50_000, false))
            .expect("submit");
        assert_eq!(reply.status, 202, "body: {}", reply.body);
    }
    let text = client.get("/metrics?format=text").expect("text metrics");
    let gauge = |name: &str| -> f64 {
        text.body
            .lines()
            .find_map(|line| line.strip_prefix(&format!("{name} ")))
            .unwrap_or_else(|| panic!("no `{name}` in:\n{}", text.body))
            .trim()
            .parse()
            .expect("gauge value")
    };
    assert!(
        gauge("scheduler_queue_depth") + gauge("scheduler_running_jobs") >= 1.0,
        "all jobs settled before the gauges were sampled:\n{}",
        text.body
    );
    shutdown_all([handle]);
}
