#!/usr/bin/env bash
# Service smoke test: boot `stochsynthd` on an ephemeral port, drive it
# through simulate/exact/synthesize round trips with `stochsynth-cli`, and
# assert that a repeated request is a cache hit with a byte-identical body.
#
# Run from the workspace root (CI runs it after `cargo build --release`):
#
#   ./scripts/service_smoke.sh [path-to-target-dir]
set -euo pipefail

TARGET_DIR="${1:-target/release}"
DAEMON="$TARGET_DIR/stochsynthd"
CLI="$TARGET_DIR/stochsynth-cli"
WORK="$(mktemp -d)"
trap 'kill "$DAEMON_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

[ -x "$DAEMON" ] || { echo "missing $DAEMON (build with: cargo build --release)"; exit 2; }
[ -x "$CLI" ] || { echo "missing $CLI"; exit 2; }

# --- boot on an ephemeral port -------------------------------------------
"$DAEMON" --addr 127.0.0.1:0 --workers 2 --port-file "$WORK/addr" >"$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!
for _ in $(seq 1 100); do
    [ -s "$WORK/addr" ] && break
    kill -0 "$DAEMON_PID" 2>/dev/null || { cat "$WORK/daemon.log"; exit 1; }
    sleep 0.1
done
SERVER="$(cat "$WORK/addr")"
echo "stochsynthd up on $SERVER"
"$CLI" health --server "$SERVER" >/dev/null

# --- simulate: fresh, then byte-identical cache hit ----------------------
cat >"$WORK/simulate.json" <<'EOF'
{
  "network": "x -> h @ 3\nx -> t @ 1",
  "initial": {"x": 1},
  "trials": 2000,
  "seed": 7,
  "classifier": [
    {"species": "h", "at_least": 1, "outcome": "heads"},
    {"species": "t", "at_least": 1, "outcome": "tails"}
  ]
}
EOF
"$CLI" submit --server "$SERVER" --endpoint simulate --file "$WORK/simulate.json" --wait \
    >"$WORK/fresh.body" 2>"$WORK/fresh.meta"
grep -q '^cache: miss$' "$WORK/fresh.meta" || { echo "first simulate was not a miss"; cat "$WORK/fresh.meta"; exit 1; }

"$CLI" submit --server "$SERVER" --endpoint simulate --file "$WORK/simulate.json" --wait \
    >"$WORK/cached.body" 2>"$WORK/cached.meta"
grep -q '^cache: hit$' "$WORK/cached.meta" || { echo "repeated simulate was not a cache hit"; cat "$WORK/cached.meta"; exit 1; }
cmp "$WORK/fresh.body" "$WORK/cached.body" || { echo "cached body differs from fresh body"; exit 1; }
echo "simulate: cache hit is byte-identical"

# --- exact: the coin's ground truth --------------------------------------
cat >"$WORK/exact.json" <<'EOF'
{
  "network": "x -> h @ 3\nx -> t @ 1",
  "initial": {"x": 1},
  "bounds": {"policy": "strict", "default_cap": 1},
  "analysis": {"type": "first_passage", "outcomes": [
    {"name": "heads", "species": "h", "at_least": 1},
    {"name": "tails", "species": "t", "at_least": 1}
  ]}
}
EOF
"$CLI" submit --server "$SERVER" --endpoint exact --file "$WORK/exact.json" --wait >"$WORK/exact.body"
grep -q '"heads":0.75' "$WORK/exact.body" || { echo "exact endpoint wrong:"; cat "$WORK/exact.body"; exit 1; }
echo "exact: P(heads) = 0.75"

# --- synthesize: scaled lambda response ----------------------------------
cat >"$WORK/synthesize.json" <<'EOF'
{
  "input": "moi",
  "response": {"constant": 2, "log2": 1, "linear": 1},
  "outcomes": ["lysis", "lysogeny"],
  "outputs": ["cro2", "ci2"],
  "thresholds": [1, 1],
  "food": [1, 1],
  "input_total": 8,
  "input_range": [1, 4],
  "evaluate": [2]
}
EOF
"$CLI" submit --server "$SERVER" --endpoint synthesize --file "$WORK/synthesize.json" --wait >"$WORK/synth.body"
grep -q '"lysis":0.62499' "$WORK/synth.body" || { echo "synthesize endpoint wrong:"; cat "$WORK/synth.body"; exit 1; }
echo "synthesize: P(lysis | moi=2) matches the exact golden"

# --- metrics must show exactly one cache hit -----------------------------
"$CLI" metrics --server "$SERVER" >"$WORK/metrics.body"
grep -q '"hits":1' "$WORK/metrics.body" || { echo "expected exactly one cache hit:"; cat "$WORK/metrics.body"; exit 1; }
echo "metrics: exactly one cache hit recorded"

# --- graceful shutdown ---------------------------------------------------
"$CLI" shutdown --server "$SERVER" --deadline-ms 10000 >/dev/null
wait "$DAEMON_PID"
echo "service smoke test passed"
