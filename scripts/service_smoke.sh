#!/usr/bin/env bash
# Service smoke test: boot `stochsynthd` on an ephemeral port, drive it
# through simulate/exact/synthesize/check round trips with `stochsynth-cli`,
# and assert that a repeated request is a cache hit with a byte-identical
# body.
# Then exercise the telemetry surface (JSON logs, text metrics exposition,
# trace-span trees), boot a three-worker fabric, kill a worker mid-pool,
# and assert the sharded report is byte-identical to the single-node bytes
# with the failure visible in the federated cache metrics.
#
# Run from the workspace root (CI runs it after `cargo build --release`):
#
#   ./scripts/service_smoke.sh [path-to-target-dir]
set -euo pipefail

TARGET_DIR="${1:-target/release}"
DAEMON="$TARGET_DIR/stochsynthd"
CLI="$TARGET_DIR/stochsynth-cli"
WORK="$(mktemp -d)"
PIDS=()

# Tears down every daemon this script booted, whatever state the run died
# in. `${PIDS[@]+...}` keeps `set -u` happy when no daemon was booted yet
# (bash < 4.4 treats expanding an empty array as an unset-variable error).
# Graceful TERM first; anything still alive after the grace window gets
# KILLed, and the final `wait` reaps the zombies so no orphaned daemon can
# outlive a failed CI job and wedge the runner.
cleanup() {
    local alive=()
    for pid in ${PIDS[@]+"${PIDS[@]}"}; do
        if kill -0 "$pid" 2>/dev/null; then
            kill "$pid" 2>/dev/null || true
            alive+=("$pid")
        fi
    done
    if [ "${#alive[@]}" -gt 0 ]; then
        for _ in $(seq 1 50); do
            local still=0
            for pid in "${alive[@]}"; do
                kill -0 "$pid" 2>/dev/null && still=1
            done
            [ "$still" -eq 0 ] && break
            sleep 0.1
        done
        for pid in "${alive[@]}"; do
            kill -9 "$pid" 2>/dev/null || true
        done
        wait ${alive[@]+"${alive[@]}"} 2>/dev/null || true
    fi
    # CI sets SMOKE_LOG_DIR to preserve the daemons' logs and the compared
    # response bodies as a failure artifact before the workdir vanishes.
    if [ -n "${SMOKE_LOG_DIR:-}" ]; then
        mkdir -p "$SMOKE_LOG_DIR"
        cp "$WORK"/*.log "$WORK"/*.body "$WORK"/*.meta "$SMOKE_LOG_DIR"/ 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

# Boots a daemon with the given log/addr basename; extra flags pass through.
# Sets BOOTED_ADDR and appends the PID to PIDS.
boot_daemon() {
    local name="$1"; shift
    "$DAEMON" --addr 127.0.0.1:0 --workers 2 --port-file "$WORK/$name.addr" "$@" \
        >"$WORK/$name.log" 2>&1 &
    local pid=$!
    PIDS+=("$pid")
    for _ in $(seq 1 100); do
        [ -s "$WORK/$name.addr" ] && break
        kill -0 "$pid" 2>/dev/null || { cat "$WORK/$name.log"; exit 1; }
        sleep 0.1
    done
    BOOTED_ADDR="$(cat "$WORK/$name.addr")"
    BOOTED_PID="$pid"
}

[ -x "$DAEMON" ] || { echo "missing $DAEMON (build with: cargo build --release)"; exit 2; }
[ -x "$CLI" ] || { echo "missing $CLI"; exit 2; }

# --- boot on an ephemeral port -------------------------------------------
boot_daemon single
SERVER="$BOOTED_ADDR"
DAEMON_PID="$BOOTED_PID"
echo "stochsynthd up on $SERVER"
"$CLI" health --server "$SERVER" >/dev/null

# --- simulate: fresh, then byte-identical cache hit ----------------------
cat >"$WORK/simulate.json" <<'EOF'
{
  "network": "x -> h @ 3\nx -> t @ 1",
  "initial": {"x": 1},
  "trials": 2000,
  "seed": 7,
  "classifier": [
    {"species": "h", "at_least": 1, "outcome": "heads"},
    {"species": "t", "at_least": 1, "outcome": "tails"}
  ]
}
EOF
"$CLI" submit --server "$SERVER" --endpoint simulate --file "$WORK/simulate.json" --wait \
    >"$WORK/fresh.body" 2>"$WORK/fresh.meta"
grep -q '^cache: miss$' "$WORK/fresh.meta" || { echo "first simulate was not a miss"; cat "$WORK/fresh.meta"; exit 1; }

"$CLI" submit --server "$SERVER" --endpoint simulate --file "$WORK/simulate.json" --wait \
    >"$WORK/cached.body" 2>"$WORK/cached.meta"
grep -q '^cache: hit$' "$WORK/cached.meta" || { echo "repeated simulate was not a cache hit"; cat "$WORK/cached.meta"; exit 1; }
cmp "$WORK/fresh.body" "$WORK/cached.body" || { echo "cached body differs from fresh body"; exit 1; }
echo "simulate: cache hit is byte-identical"

# --- exact: the coin's ground truth --------------------------------------
cat >"$WORK/exact.json" <<'EOF'
{
  "network": "x -> h @ 3\nx -> t @ 1",
  "initial": {"x": 1},
  "bounds": {"policy": "strict", "default_cap": 1},
  "analysis": {"type": "first_passage", "outcomes": [
    {"name": "heads", "species": "h", "at_least": 1},
    {"name": "tails", "species": "t", "at_least": 1}
  ]}
}
EOF
"$CLI" submit --server "$SERVER" --endpoint exact --file "$WORK/exact.json" --wait >"$WORK/exact.body"
grep -q '"heads":0.75' "$WORK/exact.body" || { echo "exact endpoint wrong:"; cat "$WORK/exact.body"; exit 1; }
echo "exact: P(heads) = 0.75"

# --- synthesize: scaled lambda response ----------------------------------
cat >"$WORK/synthesize.json" <<'EOF'
{
  "input": "moi",
  "response": {"constant": 2, "log2": 1, "linear": 1},
  "outcomes": ["lysis", "lysogeny"],
  "outputs": ["cro2", "ci2"],
  "thresholds": [1, 1],
  "food": [1, 1],
  "input_total": 8,
  "input_range": [1, 4],
  "evaluate": [2]
}
EOF
"$CLI" submit --server "$SERVER" --endpoint synthesize --file "$WORK/synthesize.json" --wait >"$WORK/synth.body"
grep -q '"lysis":0.62499' "$WORK/synth.body" || { echo "synthesize endpoint wrong:"; cat "$WORK/synth.body"; exit 1; }
echo "synthesize: P(lysis | moi=2) matches the exact golden"

# --- metrics must show exactly one cache hit -----------------------------
"$CLI" metrics --server "$SERVER" >"$WORK/metrics.body"
grep -q '"hits":1' "$WORK/metrics.body" || { echo "expected exactly one cache hit:"; cat "$WORK/metrics.body"; exit 1; }
echo "metrics: exactly one cache hit recorded"

# --- check: model checker verdicts and a parameter sweep -----------------
cat >"$WORK/check.json" <<'EOF'
{
  "network": "x -> h @ 3\nx -> t @ 1",
  "initial": {"x": 1},
  "bounds": {"policy": "strict", "default_cap": 1},
  "property": {"type": "hitting_time", "target": {"species": "h", "at_least": 1}}
}
EOF
"$CLI" submit --server "$SERVER" --endpoint check --file "$WORK/check.json" --wait >"$WORK/check.body"
grep -q '"probability":0.75' "$WORK/check.body" || { echo "check endpoint wrong:"; cat "$WORK/check.body"; exit 1; }
grep -q '"conditional_mean":0.25' "$WORK/check.body" || { echo "check hitting time wrong:"; cat "$WORK/check.body"; exit 1; }
echo "check: E[T | hit h] = 0.25 at P = 0.75"

printf 'x -> h @ {k}\nx -> t @ 1\n' >"$WORK/race.crn"
check_sweep() {
    "$CLI" check --server "$1" --network-file "$WORK/race.crn" --initial x=1 \
        --cap 1 --policy strict --type reach_before \
        --target 'h>=1' --competitor 't>=1' --sweep k=1,3,9
}
check_sweep "$SERVER" >"$WORK/sweep.body" 2>"$WORK/sweep.meta"
grep -q '^cache: miss$' "$WORK/sweep.meta" || { echo "first sweep was not a miss"; cat "$WORK/sweep.meta"; exit 1; }
grep -q '"kind":"check_sweep"' "$WORK/sweep.body" || { echo "sweep document wrong:"; cat "$WORK/sweep.body"; exit 1; }
grep -q '"value":0.75' "$WORK/sweep.body" || { echo "sweep landscape wrong:"; cat "$WORK/sweep.body"; exit 1; }
check_sweep "$SERVER" >"$WORK/sweep2.body" 2>"$WORK/sweep2.meta"
grep -q '^cache: hit$' "$WORK/sweep2.meta" || { echo "repeated sweep was not a cache hit"; cat "$WORK/sweep2.meta"; exit 1; }
cmp "$WORK/sweep.body" "$WORK/sweep2.body" || { echo "cached sweep differs from fresh sweep"; exit 1; }
echo "check: swept P(h before t) over k, replay byte-identical"

# --- telemetry: JSON logs, text metrics exposition, trace spans ----------
# A daemon with the full telemetry surface on: structured JSON logs at
# debug, a 1 ms slow-request threshold (every ensemble job trips it), and
# the Prometheus-style text exposition.
boot_daemon telemetry --log-json --log-level debug --slow-request-ms 1
TELEM="$BOOTED_ADDR"
"$CLI" submit --server "$TELEM" --endpoint simulate --file "$WORK/simulate.json" --wait \
    >"$WORK/telemetry_run.body"
cmp "$WORK/fresh.body" "$WORK/telemetry_run.body" || { echo "telemetry daemon changed result bytes"; exit 1; }

"$CLI" metrics --server "$TELEM" --format text >"$WORK/telemetry_metrics.body"
grep -q '^http_requests_total{endpoint="simulate"} 1$' "$WORK/telemetry_metrics.body" \
    || { echo "text exposition missing request counter:"; cat "$WORK/telemetry_metrics.body"; exit 1; }
grep -q '^service_uptime_ms ' "$WORK/telemetry_metrics.body" \
    || { echo "text exposition missing uptime:"; cat "$WORK/telemetry_metrics.body"; exit 1; }

# The first submission is job 1; its trace tree must be queryable.
"$CLI" trace --server "$TELEM" --job 1 >"$WORK/trace.body"
for span in job parse classify schedule-wait shard merge; do
    grep -q "\"name\":\"$span\"" "$WORK/trace.body" \
        || { echo "trace missing $span span:"; cat "$WORK/trace.body"; exit 1; }
done

# Every log line (past the boot banner on stdout) is a JSON record with
# the standard envelope, and the 1 ms threshold fired a slow_request.
if grep -v '^stochsynthd' "$WORK/telemetry.log" | grep -qv '^{"ts_us":'; then
    echo "non-JSON telemetry log line:"; cat "$WORK/telemetry.log"; exit 1
fi
grep -q '"event":"request"' "$WORK/telemetry.log" \
    || { echo "no request events logged:"; cat "$WORK/telemetry.log"; exit 1; }
grep -q '"event":"slow_request"' "$WORK/telemetry.log" \
    || { echo "slow_request threshold never fired:"; cat "$WORK/telemetry.log"; exit 1; }
"$CLI" shutdown --server "$TELEM" --deadline-ms 10000 >/dev/null
echo "telemetry: JSON logs, text metrics and trace tree all check out"

# --- fabric: three workers, byte-identical sharded reports ---------------
boot_daemon worker1; W1="$BOOTED_ADDR"; W1_PID="$BOOTED_PID"
boot_daemon worker2; W2="$BOOTED_ADDR"
boot_daemon worker3; W3="$BOOTED_ADDR"
boot_daemon coordinator \
    --fabric-worker "$W1" --fabric-worker "$W2" --fabric-worker "$W3" \
    --shard-trials 250 --shard-backoff-ms 10
COORD="$BOOTED_ADDR"
echo "fabric up: coordinator $COORD over workers $W1 $W2 $W3"

# The sharded run must be byte-identical to the single-node bytes.
"$CLI" submit --server "$COORD" --endpoint simulate --file "$WORK/simulate.json" --wait \
    >"$WORK/sharded.body"
cmp "$WORK/fresh.body" "$WORK/sharded.body" || { echo "sharded body differs from single-node body"; exit 1; }
"$CLI" fabric --server "$COORD" >"$WORK/fabric.body"
grep -q '"shards_completed":8' "$WORK/fabric.body" || { echo "expected 8 shards:"; cat "$WORK/fabric.body"; exit 1; }
echo "fabric: 3-worker sharded report byte-identical to single-node"

# The coordinator's first job must carry the distributed trace: shard spans
# with their dispatch attempts alongside the merge.
"$CLI" trace --server "$COORD" --job 1 >"$WORK/trace_fabric.body"
for span in job shard dispatch merge; do
    grep -q "\"name\":\"$span\"" "$WORK/trace_fabric.body" \
        || { echo "fabric trace missing $span span:"; cat "$WORK/trace_fabric.body"; exit 1; }
done
echo "fabric: trace tree covers shard dispatch and merge"

# Kill a worker; the next job's shards must rebalance onto the survivors
# and still reproduce the single-node bytes exactly.
kill -9 "$W1_PID"
sed 's/"seed": 7/"seed": 8/' "$WORK/simulate.json" >"$WORK/simulate8.json"
"$CLI" submit --server "$SERVER" --endpoint simulate --file "$WORK/simulate8.json" --wait \
    >"$WORK/fresh8.body"
"$CLI" submit --server "$COORD" --endpoint simulate --file "$WORK/simulate8.json" --wait \
    >"$WORK/sharded8.body"
cmp "$WORK/fresh8.body" "$WORK/sharded8.body" || { echo "post-kill sharded body differs"; exit 1; }
"$CLI" fabric --server "$COORD" >"$WORK/fabric.body"
grep -q '"worker_failures":0' "$WORK/fabric.body" && { echo "expected worker failures:"; cat "$WORK/fabric.body"; exit 1; }
echo "fabric: killed worker rebalanced, bytes unchanged, failures recorded"

# Cache federation: a fresh coordinator over the two survivors (one booted
# with a flag, one registered at runtime) re-shards the first job and is
# answered partly from the workers' shard caches.
boot_daemon coordinator2 --fabric-worker "$W2" --shard-trials 250 --shard-backoff-ms 10
COORD2="$BOOTED_ADDR"
"$CLI" fabric --server "$COORD2" --register "$W3" >/dev/null
"$CLI" submit --server "$COORD2" --endpoint simulate --file "$WORK/simulate.json" --wait \
    >"$WORK/federated.body"
cmp "$WORK/fresh.body" "$WORK/federated.body" || { echo "federated replay differs"; exit 1; }
"$CLI" fabric --server "$COORD2" >"$WORK/fabric2.body"
grep -q '"remote_cache_hits":0' "$WORK/fabric2.body" && { echo "expected worker-tier cache hits:"; cat "$WORK/fabric2.body"; exit 1; }
echo "fabric: federated worker caches answered the re-sharded replay"

# A fabric-dispatched check sweep (one grid point per worker dispatch) must
# reproduce the single-node sweep document byte for byte.
check_sweep "$COORD2" >"$WORK/sweep_fabric.body"
cmp "$WORK/sweep.body" "$WORK/sweep_fabric.body" || { echo "fabric sweep differs from single-node sweep"; exit 1; }
echo "fabric: check sweep byte-identical to single-node document"

for peer in "$COORD2" "$COORD" "$W3" "$W2"; do
    "$CLI" shutdown --server "$peer" --deadline-ms 10000 >/dev/null
done

# --- graceful shutdown ---------------------------------------------------
"$CLI" shutdown --server "$SERVER" --deadline-ms 10000 >/dev/null
wait "$DAEMON_PID"
echo "service smoke test passed"
