//! `stochsynth` — a reproduction of *"Synthesizing Stochasticity in
//! Biochemical Systems"* (Fett, Bruck & Riedel, DAC 2007), grown toward a
//! production-scale stochastic simulation and synthesis engine.
//!
//! This facade crate re-exports the workspace's public API so downstream
//! users depend on a single crate:
//!
//! * [`crn`] — the chemical reaction network data model (species, reactions,
//!   states, parsing, structural analysis);
//! * [`gillespie`] — stochastic simulation: the exact direct, first-reaction
//!   and next-reaction methods, approximate tau-leaping
//!   ([`TauLeaping`](gillespie::TauLeaping)), the hybrid multiscale stepper
//!   ([`Hybrid`](gillespie::Hybrid)) and the parallel Monte-Carlo
//!   [`Ensemble`](gillespie::Ensemble) engine;
//! * [`synthesis`] — the paper's stochastic and deterministic function
//!   modules and their composition;
//! * [`lambda`] — the lambda-phage lysis/lysogeny switch case study;
//! * [`numerics`] — statistics, confidence intervals, histograms, the
//!   chi-square/Kolmogorov–Smirnov distribution-conformance harness and
//!   small linear algebra;
//! * [`cme`] — exact chemical-master-equation verification: reachable
//!   state-space enumeration, sparse generator matrices, uniformization
//!   ([`cme::transient`]) and first-passage outcome analysis
//!   ([`cme::FirstPassage`]) — the noise-free oracle behind the test
//!   suites;
//! * [`service`] — simulation as a service: a dependency-free HTTP/1.1
//!   JSON job server ([`service::serve`], the `stochsynthd` binary) with a
//!   bounded work-stealing scheduler, a deterministic byte-identical
//!   result cache and embeddable [`Server`]/[`Router`] building blocks.
//!
//! The most common entry points are also re-exported at the crate root.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use stochsynth::{Crn, DirectMethod, Simulation, SimulationOptions, StopCondition};
//!
//! let crn: Crn = "a + b -> 2 c @ 0.01".parse()?;
//! let initial = crn.state_from_counts([("a", 100), ("b", 100)])?;
//! let result = Simulation::new(&crn, DirectMethod::new())
//!     .options(SimulationOptions::new().seed(7).stop(StopCondition::exhaustion()))
//!     .run(&initial)?;
//! assert_eq!(result.final_state.count(crn.require_species("c")?), 200);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cme;
pub use crn;
pub use gillespie;
pub use lambda;
pub use numerics;
pub use service;
pub use synthesis;

pub use cme::{CmeError, FirstPassage, OutcomeDistribution, PopulationBounds, StateSpace};
pub use crn::{Crn, CrnBuilder, CrnError, Reaction, Species, SpeciesId, State};
pub use gillespie::{
    CompositionRejection, DirectMethod, Ensemble, EnsembleOptions, EnsemblePartial, EnsembleReport,
    FirstReactionMethod, Hybrid, NextReactionMethod, Simulation, SimulationError,
    SimulationOptions, SimulationResult, SsaMethod, SsaStepper, StepperKind, StopCondition,
    TauLeaping,
};
pub use service::{Client, Router, Scheduler, Server, ServiceConfig, ServiceHandle};
pub use synthesis::{StochasticModule, TargetDistribution};
