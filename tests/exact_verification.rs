//! Paper regression tests pinned to **exact** CME golden values.
//!
//! Every number asserted here is computed from the chemical master equation
//! by the `cme` crate — no Monte-Carlo tolerance anywhere. The golden
//! constants were produced by this very code and are pinned to 1e-9 so any
//! change in the synthesis rules, the rate schedule or the CME solver that
//! shifts a paper-level result by more than floating-point noise fails
//! loudly. Alongside the pins, ensembles from all five SSA steppers must
//! conformance-pass against the exact distribution, closing the loop
//! between the samplers and the oracle.
//!
//! Scale note: the CME is solved on scaled-down instances of the paper's
//! examples (10 input molecules instead of 100, decision thresholds of 1–2
//! instead of 10). Outcome probabilities are programmed by *ratios* of
//! input counts, so the targets are unchanged; only the winner-take-all
//! error (already at most ~1e-4 here, and pinned exactly) depends on the
//! absolute scale.

use gillespie::{Ensemble, EnsembleOptions, StepperKind};
use numerics::{chi_square_goodness_of_fit, LogLinearFit};
use stochsynth::cme::sweep::{landscape, satisfaction_boundary};
use stochsynth::cme::{CmeError, FirstPassage, PopulationBounds};
use stochsynth::synthesis::{AntitheticController, LogLinearSynthesizer, Preprocessor};
use stochsynth::{Crn, StochasticModule};

fn example_1_module(gamma: f64) -> StochasticModule {
    StochasticModule::builder()
        .outcomes(["T1", "T2", "T3"])
        .gamma(gamma)
        .input_total(10)
        .food(2)
        .decision_threshold(2)
        .build()
        .expect("module")
}

/// The paper's Example 1 — target distribution {0.3, 0.4, 0.3} — computed
/// exactly. At γ = 10⁹ the synthesized module must match the target to
/// 1e-6 (it in fact matches to ~1e-10; the residual is the winner-take-all
/// error the paper bounds by its rate-hierarchy argument).
#[test]
fn example_1_exact_distribution_matches_the_target_at_high_gamma() {
    let module = example_1_module(1e9);
    let exact = module
        .exact_outcome_distribution(&[3, 4, 3])
        .expect("exact distribution");
    let target = [0.3, 0.4, 0.3];
    for (outcome, (&p, &t)) in module.outcomes().iter().zip(exact.iter().zip(&target)) {
        assert!(
            (p - t).abs() <= 1e-6,
            "{outcome}: exact {p:.12} vs target {t} (|Δ| = {:.3e})",
            (p - t).abs()
        );
    }
    // Symmetry of the CME: outcomes 1 and 3 are programmed identically.
    assert!(
        (exact[0] - exact[2]).abs() < 1e-12,
        "exchangeable outcomes must agree to machine precision"
    );
}

/// The same module at the paper's baseline γ = 1000: the deviation from the
/// target is now ~1e-4 — real, reproducible physics of the rate hierarchy,
/// far below ensemble noise but exactly quantified. Pinned as golden
/// values, including the ~1.4e-7 probability that the module never decides
/// (all catalysts annihilate after the inputs run dry).
#[test]
fn example_1_golden_values_at_gamma_1000() {
    let module = example_1_module(1000.0);
    let analysis = module
        .exact_outcome_analysis(&[3, 4, 3], &module.exact_bounds(&[3, 4, 3]))
        .expect("exact analysis");
    let golden = [
        0.299_899_775_918_368,
        0.400_200_303_486_317,
        0.299_899_775_918_368,
    ];
    for (outcome, (&p, &g)) in module
        .outcomes()
        .iter()
        .zip(analysis.probabilities().iter().zip(&golden))
    {
        assert!(
            (p - g).abs() < 1e-9,
            "{outcome}: exact {p:.15} vs golden {g:.15}"
        );
    }
    let undecided_golden = 1.446_769e-7;
    assert!(
        (analysis.undecided() - undecided_golden).abs() < 1e-12,
        "undecided mass {:.6e} vs golden {undecided_golden:.6e}",
        analysis.undecided()
    );
    assert!(analysis.escaped() == 0.0, "strict bounds: no truncation");
}

/// All five steppers' ensemble estimates must conformance-pass against the
/// CME-exact outcome distribution of Example 1 — the samplers are judged by
/// the exact law, not by an analytic shortcut or by each other.
#[test]
fn example_1_ensembles_conform_to_the_exact_distribution_for_every_method() {
    let module = example_1_module(1000.0);
    let exact = module
        .exact_outcome_distribution(&[3, 4, 3])
        .expect("exact distribution");
    let initial = module
        .initial_state_from_counts(&[3, 4, 3])
        .expect("initial state");
    let trials = 2_000u64;
    for method in StepperKind::ALL {
        let report = Ensemble::new(
            module.crn(),
            initial.clone(),
            module.classifier().expect("classifier"),
        )
        .options(
            EnsembleOptions::new()
                .trials(trials)
                .master_seed(20_070_604) // DAC 2007 conference date
                .method(method)
                .simulation(module.simulation_options()),
        )
        .run()
        .expect("ensemble");
        assert_eq!(report.undecided, 0, "{}: undecided", method.name());
        let observed: Vec<u64> = module.outcomes().iter().map(|o| report.count(o)).collect();
        let gof = chi_square_goodness_of_fit(&observed, &exact).expect("test");
        assert!(
            gof.passes(1e-3),
            "{}: ensemble vs exact CME failed: observed {observed:?}, \
             expected {exact:?}, chi2 = {:.2}, p = {:.2e}",
            method.name(),
            gof.statistic,
            gof.p_value
        );
    }
}

/// The paper's Example 2 — the affine preprocessed distribution
/// `p1 = 0.3 + 0.02·X1 − 0.03·X2`, `p2 = 0.4 + 0.03·X2`,
/// `p3 = 0.3 − 0.02·X1` (per-molecule units scaled to a 10-molecule input
/// pool) — verified exactly over an input sweep and pinned as goldens.
///
/// The CME resolves what no ensemble can: with preprocessing 10⁶× faster
/// than the module, the probability that an initializing reaction *beats*
/// the preprocessing is ~3e-6 — visible below as the exact deviation from
/// the ideal affine law.
#[test]
fn example_2_affine_distribution_golden_values() {
    let module = example_1_module(1e9);
    // Scaled Example 2: each x1 moves 2 molecules e3 -> e1 (20% of the
    // 10-molecule pool), each x2 moves 3 molecules e1 -> e2 (30%).
    let preprocessor = Preprocessor::new(3)
        .term("x1", 2, 0, 2)
        .expect("term")
        .term("x2", 0, 1, 3)
        .expect("term");
    let merged = module
        .crn()
        .merge(&preprocessor.build(1e6).expect("preprocessing"))
        .expect("merged network");

    let base = [3u64, 4, 3];
    let golden: [((u64, u64), [f64; 3]); 4] = [
        ((0, 0), [0.299_999_999_9, 0.400_000_000_2, 0.299_999_999_9]),
        (
            (1, 0),
            [
                0.499_999_333_835_555,
                0.400_000_000_2,
                0.100_000_665_864_445,
            ],
        ),
        (
            (0, 1),
            [0.000_002_999_969_998, 0.699_997_000_43, 0.299_999_999_6],
        ),
        (
            (1, 1),
            [
                0.200_000_307_932_894,
                0.699_999_026_102_661,
                0.100_000_665_864_445,
            ],
        ),
    ];
    for ((x1, x2), expected) in golden {
        // Program the module state, then add the external inputs.
        let module_state = module
            .initial_state_from_counts(&base)
            .expect("module state");
        let mut state = merged.zero_state();
        for species in module.crn().species() {
            state.set(
                merged.species_id(species.name()).expect("shared species"),
                module_state.count(species.id()),
            );
        }
        state.set(merged.species_id("x1").expect("x1"), x1);
        state.set(merged.species_id("x2").expect("x2"), x2);

        let distribution = FirstPassage::new(&merged)
            .outcome_species_at_least("T1", "o1", 2)
            .expect("outcome")
            .outcome_species_at_least("T2", "o2", 2)
            .expect("outcome")
            .outcome_species_at_least("T3", "o3", 2)
            .expect("outcome")
            .solve(&state, &PopulationBounds::strict(10))
            .expect("first passage");

        let predicted = preprocessor.predicted_probabilities(&base, &[("x1", x1), ("x2", x2)]);
        for i in 0..3 {
            let p = distribution.probabilities()[i];
            assert!(
                (p - expected[i]).abs() < 1e-9,
                "X1={x1}, X2={x2}, outcome {i}: exact {p:.15} vs golden {:.15}",
                expected[i]
            );
            assert!(
                (p - predicted[i]).abs() < 1e-5,
                "X1={x1}, X2={x2}, outcome {i}: exact {p:.12} vs affine law {:.12}",
                predicted[i]
            );
        }
    }
}

/// The lambda-phage lysis/lysogeny response, scaled down: the synthesized
/// network realises `P(lysis) = (2 + ⌊log2 MOI⌋ + MOI)/8` over an
/// 8-molecule probability pool. MOI = 2 exercises the full pipeline —
/// fan-out, the logarithm module (clock loop and all), the linear branch
/// and both assimilations — and the exact values are pinned as goldens.
///
/// The ~1e-6 deficit at MOI = 2 is again the exactly-quantified
/// probability that the stochastic module starts before the deterministic
/// front end finishes.
#[test]
fn lambda_response_golden_values() {
    let response = LogLinearFit::from_coefficients(2.0, 1.0, 1.0);
    let synthesized = LogLinearSynthesizer::new("moi", response)
        .outcomes("lysis", "lysogeny")
        .outputs("cro2", "ci2")
        .thresholds(1, 1)
        .food(1, 1)
        .input_total(8)
        .input_range(1, 4)
        .synthesize()
        .expect("synthesized response");

    let golden = [(1u64, 0.374_999_999_750), (2, 0.624_998_998_258)];
    for (moi, expected) in golden {
        let analysis = synthesized
            .exact_outcome_analysis(moi, &synthesized.exact_bounds(moi))
            .expect("exact analysis");
        let lysis = analysis.probability("lysis");
        assert!(
            (lysis - expected).abs() < 1e-9,
            "MOI {moi}: exact P(lysis) {lysis:.12} vs golden {expected:.12}"
        );
        let realised = (2.0 + (moi as f64).log2().floor() + moi as f64) / 8.0;
        assert!(
            (lysis - realised).abs() < 1e-5,
            "MOI {moi}: exact {lysis:.12} vs realised law {realised:.12}"
        );
        assert!(
            analysis.escaped() < 1e-9,
            "MOI {moi}: clock-loop truncation must be negligible, got {:.3e}",
            analysis.escaped()
        );
        assert!(
            (analysis.probability("lysis")
                + analysis.probability("lysogeny")
                + analysis.undecided()
                - 1.0)
                .abs()
                < 1e-9,
            "MOI {moi}: mass accounting"
        );
    }
}

/// The exact probability that Example 1 never decides, as a function of γ —
/// the measure the robustness landscape and satisfaction boundary below
/// sweep. Shared by [`example_1_gamma_robustness_landscape_golden`].
fn example_1_undecided_mass(gamma: f64) -> Result<f64, CmeError> {
    let module = example_1_module(gamma);
    let analysis = module
        .exact_outcome_analysis(&[3, 4, 3], &module.exact_bounds(&[3, 4, 3]))
        .map_err(|e| CmeError::InvalidInput {
            message: e.to_string(),
        })?;
    Ok(analysis.undecided())
}

/// Example 1's γ robustness landscape, pinned. The winner-take-all error
/// (undecided mass) falls monotonically in the rate-hierarchy separation γ;
/// the landscape grid must reproduce the γ = 1000 golden of
/// `example_1_golden_values_at_gamma_1000`, bracket the spec
/// `P(undecided) ≤ 1e-6` between γ = 300 and γ = 1000, and the log-space
/// bisection must land on the pinned boundary γ* where the error law
/// crosses 1e-6 — all deterministic CME solves, golden to 1e-9 relative.
#[test]
fn example_1_gamma_robustness_landscape_golden() {
    let grid = [100.0, 300.0, 1_000.0, 3_000.0];
    let scan = landscape(&grid, example_1_undecided_mass).expect("landscape");
    let values = scan.values();
    for pair in values.windows(2) {
        assert!(
            pair[1] < pair[0],
            "undecided mass must fall monotonically in γ: {pair:?}"
        );
    }
    // The γ = 1000 grid point is the same solve as the pinned golden.
    assert!(
        (values[2] - 1.446_769e-7).abs() < 1e-12,
        "landscape γ=1000 point {:.6e} disagrees with the pinned golden",
        values[2]
    );
    let (above, below) = scan
        .crossing(1e-6)
        .expect("the error law crosses 1e-6 inside the grid");
    assert_eq!(above.parameter, 300.0);
    assert_eq!(below.parameter, 1_000.0);

    let boundary = satisfaction_boundary(100.0, 1_000.0, 1e-6, 1e-12, example_1_undecided_mass)
        .expect("boundary");
    let golden = 389.811_272_311;
    assert!(
        (boundary - golden).abs() < 1e-9 * golden,
        "satisfaction boundary γ* = {boundary:.9} vs golden {golden:.9}"
    );
    let at_boundary = example_1_undecided_mass(boundary).expect("solve at γ*");
    assert!(
        (at_boundary - 1e-6).abs() < 1e-12,
        "error law at γ* must sit on the spec: {at_boundary:.9e}"
    );
}

/// Closed-loop golden: an antithetic integral controller (μ = 2, θ = 1,
/// η = 100, k = 2) wrapped around the pure-death plant `x -> 0 @ 1` drives
/// the stationary mean of `x` to the programmed set point μ/θ = 2 up to a
/// small truncation offset. The exact stationary output on the pinned
/// finite window is golden to 1e-9 — any drift in the controller wiring,
/// the stationary solver or the bounds handling fails loudly.
#[test]
fn antithetic_closed_loop_set_point_golden() {
    let plant: Crn = "x -> 0 @ 1".parse().expect("plant");
    let controller = AntitheticController::new(2.0, 1.0, 100.0, 2.0).expect("controller");
    let closed = controller
        .close_loop(&plant, &plant.zero_state(), "x", "x")
        .expect("closed loop");
    assert_eq!(closed.set_point(), 2.0);
    let bounds = PopulationBounds::truncating(14).cap("z1", 8).cap("z2", 8);
    let output = closed
        .stationary_output(&bounds)
        .expect("stationary output");
    let golden = 2.022_666_428_559;
    assert!(
        (output - golden).abs() < 1e-9,
        "stationary E[x] {output:.12} vs golden {golden:.12}"
    );
    assert!(
        (output - closed.set_point()).abs() < 0.05,
        "output {output} must track the set point 2"
    );
}
