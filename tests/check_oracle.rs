//! Cross-method conformance oracle for the probabilistic model checker.
//!
//! Every verdict class the checker emits — race probabilities, time-window
//! threshold probabilities and first-passage means — is re-derived here by
//! large SSA ensembles and compared through the `numerics` goodness-of-fit
//! harness, for **all five concrete steppers plus the `Auto` portfolio**.
//! The checker solves the CME by uniformization/linear algebra while the
//! ensembles sample trajectories event by event; agreement across two
//! independent numerical routes (and six simulation methods) pins both
//! sides at once.

use gillespie::{
    Ensemble, EnsembleOptions, Outcome, OutcomeClassifier, SimulationOptions, SimulationResult,
    SpeciesThresholdClassifier, StepperKind, StopCondition,
};
use numerics::chi_square_goodness_of_fit;
use stochsynth::cme::{Checker, PopulationBounds};
use stochsynth::{Crn, SpeciesId};

/// Master seed for every ensemble: the checker is deterministic, so a fixed
/// seed makes the whole conformance suite reproducible bit for bit.
const SEED: u64 = 20_070_604;

/// Trials per (method, property) cell.
const TRIALS: u64 = 2_000;

/// The five concrete steppers plus the adaptive portfolio.
fn all_methods() -> impl Iterator<Item = StepperKind> {
    StepperKind::ALL.into_iter().chain([StepperKind::Auto])
}

/// `P(reach A before B)`: a five-coin tournament decided by majority.
///
/// From `x = 5` the biased coin `x -> h @ 3 | x -> t @ 1` flips five times;
/// exactly one of `h ≥ 3` or `t ≥ 3` holds at exhaustion, so the race
/// verdict partitions all mass between target and competitor. The checker's
/// probabilities (a Binomial(5, 3/4) tail, computed via the embedded
/// jump chain) serve as the expected law for a χ² goodness-of-fit test of
/// each stepper's outcome frequencies.
#[test]
fn race_verdict_matches_ssa_outcome_frequencies() {
    let crn: Crn = "x -> h @ 3\nx -> t @ 1".parse().unwrap();
    let initial = crn.state_from_counts([("x", 5)]).unwrap();

    let checker = Checker::new(&crn, initial.clone(), PopulationBounds::strict(5));
    let race = checker
        .reach_before_species(("h", 3), ("t", 3))
        .expect("race verdict");
    assert!(race.never.abs() < 1e-12, "majority always resolves");
    assert!(race.escaped.abs() < 1e-12, "strict bounds lose no mass");
    let expected = [race.target, race.competitor];

    let classifier = SpeciesThresholdClassifier::new()
        .rule_named(&crn, "h", 3, "target")
        .unwrap()
        .rule_named(&crn, "t", 3, "competitor")
        .unwrap();
    for method in all_methods() {
        let report = Ensemble::new(&crn, initial.clone(), classifier.clone())
            .options(
                EnsembleOptions::new()
                    .trials(TRIALS)
                    .master_seed(SEED)
                    .method(method),
            )
            .run()
            .expect("ensemble");
        assert_eq!(
            report.undecided,
            0,
            "{}: no trial may dangle",
            method.name()
        );
        let observed = [report.count("target"), report.count("competitor")];
        let gof = chi_square_goodness_of_fit(&observed, &expected).expect("χ² GOF");
        assert!(
            gof.passes(1e-3),
            "{}: race frequencies {:?} reject checker law {:?} (p = {:.3e})",
            method.name(),
            observed,
            expected,
            gof.p_value
        );
    }
}

/// Classifies a trial as `reached` only when the threshold crossing landed
/// inside the deadline. A plain final-state rule would over-count: at a time
/// stop the engine applies the event whose firing time crosses the deadline
/// before `is_met` halts the trial, so the final state sits one event past
/// the window. Pairing a `species_at_least` stop (which freezes the trial at
/// the crossing) with a final-time check recovers the within-window law.
#[derive(Clone)]
struct WithinDeadline {
    species: SpeciesId,
    threshold: u64,
    deadline: f64,
}

impl OutcomeClassifier for WithinDeadline {
    fn classify(&self, result: &SimulationResult) -> Option<Outcome> {
        (result.final_state.count(self.species) >= self.threshold
            && result.final_time <= self.deadline)
            .then(|| Outcome::new("reached"))
    }

    fn outcomes(&self) -> Vec<Outcome> {
        vec![Outcome::new("reached")]
    }
}

/// `P(X_a ≥ k within [0, t])`: a conversion cascade against a deadline.
///
/// `x -> a @ 2` from `x = 12` produces `a` monotonically, so "`a` first
/// reached 5 within the window" needs no path bookkeeping — only the
/// deadline-aware classifier above. The checker integrates the
/// hypoexponential first-passage law through the transient CME solve; each
/// stepper's reached/missed split is tested against that probability.
#[test]
fn window_verdict_matches_ssa_deadline_frequencies() {
    let crn: Crn = "x -> a @ 2".parse().unwrap();
    let initial = crn.state_from_counts([("x", 12)]).unwrap();
    let deadline = 0.25;

    let checker = Checker::new(&crn, initial.clone(), PopulationBounds::strict(12));
    let verdict = checker
        .species_within("a", 5, (0.0, deadline))
        .expect("window verdict");
    assert!(
        verdict.probability > 0.1 && verdict.probability < 0.9,
        "deadline must split the ensemble to give the χ² test power, got {}",
        verdict.probability
    );
    assert!(
        verdict.error_bound < 1e-9,
        "conserved chain truncates nothing"
    );
    let expected = [verdict.probability, 1.0 - verdict.probability];

    let classifier = WithinDeadline {
        species: crn.species_id("a").unwrap(),
        threshold: 5,
        deadline,
    };
    let stop = StopCondition::any_of(vec![
        StopCondition::time(deadline),
        StopCondition::named_species_at_least(&crn, "a", 5).unwrap(),
    ]);
    for method in all_methods() {
        let report = Ensemble::new(&crn, initial.clone(), classifier.clone())
            .options(
                EnsembleOptions::new()
                    .trials(TRIALS)
                    .master_seed(SEED)
                    .method(method)
                    .simulation(SimulationOptions::new().stop(stop.clone())),
            )
            .run()
            .expect("ensemble");
        let reached = report.count("reached");
        let observed = [reached, TRIALS - reached];
        let gof = chi_square_goodness_of_fit(&observed, &expected).expect("χ² GOF");
        assert!(
            gof.passes(1e-3),
            "{}: deadline frequencies {:?} reject checker law {:?} (p = {:.3e})",
            method.name(),
            observed,
            expected,
            gof.p_value
        );
    }
}

/// Expected first-passage time: full decay of a six-copy death chain.
///
/// `a -> b @ 1` from `a = 6` absorbs at `b = 6` after a sum of independent
/// exponentials with rates 6, 5, …, 1 — mean `H₆ = 49/20`, variance
/// `Σ 1/i² ≈ 1.4914`. The checker must land on the closed form to 1e-9;
/// each stepper's empirical mean absorption time must agree with the
/// checker's conditional mean within a 4.5σ CLT band.
#[test]
fn hitting_time_mean_matches_ssa_absorption_times() {
    let crn: Crn = "a -> b @ 1".parse().unwrap();
    let initial = crn.state_from_counts([("a", 6)]).unwrap();

    let checker = Checker::new(&crn, initial.clone(), PopulationBounds::strict(6));
    let hit = checker.hitting_time_species("b", 6).expect("hitting time");
    assert!(
        (hit.probability - 1.0).abs() < 1e-12,
        "absorption is certain"
    );
    let mean = hit
        .conditional_mean
        .expect("conditional mean of a sure hit");
    let exact_mean: f64 = (1..=6).map(|i| 1.0 / i as f64).sum();
    let exact_var: f64 = (1..=6).map(|i| 1.0 / (i * i) as f64).sum();
    assert!(
        (mean - exact_mean).abs() < 1e-9,
        "checker mean {mean} vs closed form {exact_mean}"
    );

    let tolerance = 4.5 * (exact_var / TRIALS as f64).sqrt();
    let classifier = SpeciesThresholdClassifier::new()
        .rule_named(&crn, "b", 6, "absorbed")
        .unwrap();
    let stop = StopCondition::named_species_at_least(&crn, "b", 6).unwrap();
    for method in all_methods() {
        let report = Ensemble::new(&crn, initial.clone(), classifier.clone())
            .options(
                EnsembleOptions::new()
                    .trials(TRIALS)
                    .master_seed(SEED)
                    .method(method)
                    .simulation(SimulationOptions::new().stop(stop.clone())),
            )
            .run()
            .expect("ensemble");
        assert_eq!(
            report.count("absorbed"),
            TRIALS,
            "{}: every trial absorbs",
            method.name()
        );
        assert!(
            (report.mean_final_time - mean).abs() < tolerance,
            "{}: empirical mean {} vs checker mean {} (tolerance {})",
            method.name(),
            report.mean_final_time,
            mean,
            tolerance
        );
    }
}

/// The race partition is itself a probability law: target + competitor +
/// never must carry all the mass the SSA ensemble distributes, even when a
/// trap makes `never` strictly positive. The checker's three-way split is
/// tested against a three-bin ensemble histogram.
#[test]
fn race_with_trap_matches_three_way_ssa_histogram() {
    // From x the chain picks g (trap: neither h nor t ever fires) with
    // probability 1/5, else flips the biased coin.
    let crn: Crn = "x -> g @ 1\nx -> h @ 3\nx -> t @ 1".parse().unwrap();
    let initial = crn.state_from_counts([("x", 1)]).unwrap();

    let checker = Checker::new(&crn, initial.clone(), PopulationBounds::strict(1));
    let race = checker
        .reach_before_species(("h", 1), ("t", 1))
        .expect("race verdict");
    assert!(
        (race.target + race.competitor + race.never + race.escaped - 1.0).abs() < 1e-12,
        "verdict must partition all mass"
    );
    assert!((race.never - 0.2).abs() < 1e-12, "trap mass is exactly 1/5");
    let expected = [race.target, race.competitor, race.never];

    let classifier = SpeciesThresholdClassifier::new()
        .rule_named(&crn, "h", 1, "target")
        .unwrap()
        .rule_named(&crn, "t", 1, "competitor")
        .unwrap();
    for method in all_methods() {
        let report = Ensemble::new(&crn, initial.clone(), classifier.clone())
            .options(
                EnsembleOptions::new()
                    .trials(TRIALS)
                    .master_seed(SEED)
                    .method(method),
            )
            .run()
            .expect("ensemble");
        // Trials swallowed by the trap match no classifier rule.
        let observed = [
            report.count("target"),
            report.count("competitor"),
            report.undecided,
        ];
        let gof = chi_square_goodness_of_fit(&observed, &expected).expect("χ² GOF");
        assert!(
            gof.passes(1e-3),
            "{}: three-way frequencies {:?} reject checker law {:?} (p = {:.3e})",
            method.name(),
            observed,
            expected,
            gof.p_value
        );
    }
}
