//! Cross-crate integration tests: the stochastic module synthesized by the
//! `synthesis` crate, simulated with the `gillespie` crate and checked with
//! the `numerics` crate.

use gillespie::{Ensemble, EnsembleOptions, SsaMethod, StepperKind};
use numerics::{chi_square_two_sample, ks_two_sample, wilson_interval};
use synthesis::{StochasticModule, TargetDistribution};

/// The paper's Example 1 end to end: the programmed distribution
/// {0.3, 0.4, 0.3} is reproduced within tight confidence intervals.
#[test]
fn example_1_distribution_is_reproduced_within_confidence_intervals() {
    let module = StochasticModule::builder()
        .outcomes(["d1", "d2", "d3"])
        .gamma(1_000.0)
        .build()
        .expect("module");
    let target = TargetDistribution::new(vec![0.3, 0.4, 0.3]).expect("target");
    let initial = module.initial_state(&target).expect("initial state");
    let trials = 3_000;
    let report = Ensemble::new(
        module.crn(),
        initial,
        module.classifier().expect("classifier"),
    )
    .options(
        EnsembleOptions::new()
            .trials(trials)
            .master_seed(99)
            .simulation(module.simulation_options()),
    )
    .run()
    .expect("ensemble");

    assert_eq!(
        report.undecided, 0,
        "every trajectory must decide an outcome"
    );
    for (i, outcome) in module.outcomes().iter().enumerate() {
        let ci = wilson_interval(report.count(outcome), trials, 0.99).expect("interval");
        assert!(
            ci.contains(target.probability(i)),
            "outcome {outcome}: target {} outside 99% CI [{}, {}]",
            target.probability(i),
            ci.lower,
            ci.upper
        );
    }
}

/// Tau-leaping is distributionally faithful to the exact SSA on the
/// paper's synthesized module: the outcome distributions of the two
/// solvers pass the two-sample chi-square and Kolmogorov–Smirnov
/// conformance tests at fixed seeds.
#[test]
fn tau_leaping_conforms_to_exact_ssa_on_the_synthesized_module() {
    let module = StochasticModule::builder()
        .outcomes(["T1", "T2", "T3"])
        .gamma(1_000.0)
        .build()
        .expect("module");
    let target = TargetDistribution::new(vec![0.3, 0.4, 0.3]).expect("target");
    let initial = module.initial_state(&target).expect("initial state");

    let outcome_counts = |method: StepperKind| -> Vec<u64> {
        let report = Ensemble::new(
            module.crn(),
            initial.clone(),
            module.classifier().expect("classifier"),
        )
        .options(
            EnsembleOptions::new()
                .trials(2_000)
                .master_seed(20_260_728)
                .method(method)
                .simulation(module.simulation_options()),
        )
        .run()
        .expect("ensemble");
        assert_eq!(
            report.undecided,
            0,
            "{}: undecided trajectories",
            method.name()
        );
        module.outcomes().iter().map(|o| report.count(o)).collect()
    };

    let exact = outcome_counts(StepperKind::Direct);
    let leaped = outcome_counts(StepperKind::TauLeaping);
    let chi = chi_square_two_sample(&exact, &leaped).expect("chi-square");
    let ks = ks_two_sample(&exact, &leaped).expect("ks");
    assert!(
        chi.passes(1e-3),
        "tau-leaping outcome distribution diverges from direct: \
         exact {exact:?} vs leaped {leaped:?}, chi2 = {:.2}, p = {:.2e}",
        chi.statistic,
        chi.p_value
    );
    assert!(ks.passes(1e-3), "KS p = {:.2e}", ks.p_value);
}

/// The decision is insensitive to the stepper used: every method — the
/// four exact SSA variants and tau-leaping — estimates the same
/// distribution.
#[test]
fn all_ssa_methods_agree_on_the_programmed_distribution() {
    let module = StochasticModule::builder()
        .outcomes(["a", "b"])
        .gamma(1_000.0)
        .build()
        .expect("module");
    let target = TargetDistribution::new(vec![0.25, 0.75]).expect("target");
    let initial = module.initial_state(&target).expect("initial state");

    let mut estimates = Vec::new();
    for method in SsaMethod::ALL {
        let report = Ensemble::new(
            module.crn(),
            initial.clone(),
            module.classifier().expect("classifier"),
        )
        .options(
            EnsembleOptions::new()
                .trials(1_200)
                .master_seed(5)
                .method(method)
                .simulation(module.simulation_options()),
        )
        .run()
        .expect("ensemble");
        estimates.push(report.probability("a"));
    }
    for p in &estimates {
        assert!((p - 0.25).abs() < 0.05, "estimate {p} too far from 0.25");
    }
    let spread = estimates
        .iter()
        .fold(0.0f64, |acc, p| acc.max((p - estimates[0]).abs()));
    assert!(spread < 0.07, "methods disagree: {estimates:?}");
}

/// The paper's central robustness claim (Figure 3): the probability that the
/// final outcome differs from the initially selected outcome falls as the
/// rate separation γ grows.
#[test]
fn error_rate_decreases_monotonically_in_gamma() {
    let error_rate = |gamma: f64, trials: u64| -> f64 {
        let module = StochasticModule::builder()
            .outcomes(["T1", "T2", "T3"])
            .gamma(gamma)
            .input_total(300)
            .build()
            .expect("module");
        let dist = TargetDistribution::uniform(3).expect("uniform");
        let initial = module.initial_state(&dist).expect("state");
        let errors = (0..trials)
            .filter(|&seed| module.error_trial(&initial, seed).expect("trial").2)
            .count();
        errors as f64 / trials as f64
    };
    let at_1 = error_rate(1.0, 150);
    let at_100 = error_rate(100.0, 150);
    let at_10000 = error_rate(10_000.0, 150);
    assert!(
        at_1 > at_100,
        "γ=1 error rate ({at_1}) should exceed γ=100 ({at_100})"
    );
    assert!(
        at_100 >= at_10000,
        "γ=100 error rate ({at_100}) should not be below γ=10000 ({at_10000})"
    );
    assert!(
        at_1 > 0.15,
        "γ=1 should misassign a sizeable fraction, got {at_1}"
    );
    assert!(
        at_10000 < 0.03,
        "γ=10000 should almost never err, got {at_10000}"
    );
}

/// Reprogramming the same network with different initial counts changes the
/// outcome distribution without touching any reaction.
#[test]
fn the_same_network_supports_multiple_programs() {
    let module = StochasticModule::builder()
        .outcomes(["x", "y"])
        .gamma(1_000.0)
        .build()
        .expect("module");
    let run = |p: f64| {
        let dist = TargetDistribution::new(vec![p, 1.0 - p]).expect("target");
        let initial = module.initial_state(&dist).expect("state");
        Ensemble::new(
            module.crn(),
            initial,
            module.classifier().expect("classifier"),
        )
        .options(
            EnsembleOptions::new()
                .trials(800)
                .master_seed(17)
                .simulation(module.simulation_options()),
        )
        .run()
        .expect("ensemble")
        .probability("x")
    };
    assert!((run(0.1) - 0.1).abs() < 0.05);
    assert!((run(0.5) - 0.5).abs() < 0.06);
    assert!((run(0.9) - 0.9).abs() < 0.05);
}
