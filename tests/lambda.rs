//! Cross-crate integration tests of the lambda-phage case study: natural
//! surrogate → Monte-Carlo sweep → curve fit → synthesis → comparison, the
//! full flow behind Figure 5.

use gillespie::OutcomeClassifier;
use lambda::{
    equation_14, figure4_verbatim, LambdaModel, MoiSweep, NaturalLambdaModel, SyntheticLambdaModel,
    CI2_THRESHOLD, CRO2_THRESHOLD, LYSOGENY,
};

/// The natural surrogate's response is increasing in MOI and lives in the
/// same band as the paper's Equation 14 (roughly 15 % to 37 %).
#[test]
fn natural_surrogate_response_matches_the_papers_band() {
    let natural = NaturalLambdaModel::new().expect("natural model");
    let curve = MoiSweep::new([1u64, 4, 10])
        .trials(400)
        .master_seed(31)
        .run(&natural)
        .expect("sweep");
    let p: Vec<f64> = curve.points().iter().map(|pt| pt.probability).collect();
    assert!(
        p[0] < p[1] && p[1] < p[2],
        "response must increase with MOI: {p:?}"
    );
    assert!((p[0] - 0.15).abs() < 0.08, "MOI 1 response {p:?}");
    assert!((p[2] - 0.37).abs() < 0.10, "MOI 10 response {p:?}");
    let eq14 = equation_14();
    for point in curve.points() {
        let predicted = eq14.evaluate(point.moi as f64) / 100.0;
        assert!(
            (point.probability - predicted).abs() < 0.12,
            "MOI {}: surrogate {} vs Equation 14 {}",
            point.moi,
            point.probability,
            predicted
        );
    }
}

/// The full reduced-order-modelling loop: fit the natural surrogate, build
/// the synthetic model from the fit, and check that the synthetic response
/// stays close to the natural one (the paper's Figure 5 claim).
#[test]
fn synthesized_model_reproduces_the_natural_response_shape() {
    // Enough MOI values and trials that the three-coefficient fit is well
    // conditioned; with too few points the interpolating fit can have wild
    // coefficients that the integer encoding then distorts.
    let moi_values = [1u64, 2, 4, 6, 8, 10];
    let trials = 400;

    let natural = NaturalLambdaModel::new().expect("natural model");
    let natural_curve = MoiSweep::new(moi_values)
        .trials(trials)
        .master_seed(41)
        .run(&natural)
        .expect("natural sweep");

    // Fitting needs at least three points; use the paper's Equation 14 form.
    let fit = natural_curve.fit_log_linear().expect("fit");
    let synthetic = SyntheticLambdaModel::from_fit(&fit).expect("synthesis");
    let synthetic_curve = MoiSweep::new(moi_values)
        .trials(trials)
        .master_seed(43)
        .run(&synthetic)
        .expect("synthetic sweep");

    // Both responses increase with MOI.
    let natural_p: Vec<f64> = natural_curve
        .points()
        .iter()
        .map(|p| p.probability)
        .collect();
    let synthetic_p: Vec<f64> = synthetic_curve
        .points()
        .iter()
        .map(|p| p.probability)
        .collect();
    assert!(
        natural_p[0] < natural_p[2],
        "natural response not increasing: {natural_p:?}"
    );
    assert!(
        synthetic_p[0] < synthetic_p[2],
        "synthetic response not increasing: {synthetic_p:?}"
    );

    // The curves agree point-wise within Monte-Carlo noise plus the integer
    // granularity of the synthesized encoding.
    let gap = natural_curve
        .max_absolute_difference(&synthetic_curve)
        .expect("comparable curves");
    assert!(gap < 0.15, "max gap between natural and synthetic is {gap}");
}

/// The synthesized model tracks its own target response across MOI.
#[test]
fn paper_synthetic_model_tracks_equation_14() {
    let model = SyntheticLambdaModel::paper().expect("model");
    let curve = MoiSweep::new([2u64, 6])
        .trials(300)
        .master_seed(53)
        .run(&model)
        .expect("sweep");
    for point in curve.points() {
        let predicted = model.predicted_probability(point.moi);
        assert!(
            (point.probability - predicted).abs() < 0.1,
            "MOI {}: simulated {} vs predicted {}",
            point.moi,
            point.probability,
            predicted
        );
    }
}

/// Structural reproduction of Figure 4 (experiment E7): 19 reactions over 17
/// species, rates spanning 10⁻⁹ to 10⁹, with the outputs and thresholds used
/// by the classifier.
#[test]
fn figure_4_network_and_thresholds_match_the_paper() {
    let crn = figure4_verbatim();
    assert_eq!(crn.reactions().len(), 19);
    assert_eq!(crn.species_len(), 17);
    assert!(crn.species_id("moi").is_some());
    assert!(crn.species_id("cro2").is_some());
    assert!(crn.species_id("ci2").is_some());
    assert_eq!(crn.summary().rate_span, 1e18);
    assert_eq!(CRO2_THRESHOLD, 55);
    assert_eq!(CI2_THRESHOLD, 145);

    // The behavioural synthetic model exposes the same outputs.
    let model = SyntheticLambdaModel::paper().expect("model");
    let classifier = model.classifier().expect("classifier");
    let outcomes: Vec<String> = classifier
        .outcomes()
        .iter()
        .map(|o| o.as_str().to_string())
        .collect();
    assert!(outcomes.contains(&LYSOGENY.to_string()));
    assert_eq!(model.crn().species_len(), 18);
}
