//! Cross-crate integration tests of the synthesis pipeline: deterministic
//! modules feeding preprocessing and stochastic stages, text round-trips of
//! synthesized networks, and end-to-end programmable responses.

use gillespie::{Ensemble, EnsembleOptions};
use synthesis::modules::{linear::linear, logarithm::logarithm};
use synthesis::{
    Composer, LogLinearSynthesizer, Preprocessor, StochasticModule, TargetDistribution,
};

/// Example 2 end to end: the affine programmable distribution implemented by
/// preprocessing reactions matches its predicted probabilities.
#[test]
fn example_2_affine_response_matches_prediction() {
    let module = StochasticModule::builder()
        .outcomes(["T1", "T2", "T3"])
        .gamma(1_000.0)
        .build()
        .expect("module");
    let preprocessor = Preprocessor::new(3)
        .term("x1", 2, 0, 2)
        .expect("term")
        .term("x2", 0, 1, 3)
        .expect("term");
    let crn = Composer::new()
        .add(module.crn())
        .add(&preprocessor.build(1_000.0).expect("preprocessing"))
        .build()
        .expect("composition");
    let base = TargetDistribution::new(vec![0.3, 0.4, 0.3]).expect("base");
    let base_counts = base.to_counts(100);

    for &(x1, x2) in &[(5u64, 0u64), (0, 5), (10, 10)] {
        let predicted =
            preprocessor.predicted_probabilities(&base_counts, &[("x1", x1), ("x2", x2)]);
        let mut initial = crn.zero_state();
        for (i, &count) in base_counts.iter().enumerate() {
            initial.set(
                crn.require_species(&format!("e{}", i + 1)).expect("e"),
                count,
            );
            initial.set(crn.require_species(&format!("f{}", i + 1)).expect("f"), 100);
        }
        initial.set(crn.require_species("x1").expect("x1"), x1);
        initial.set(crn.require_species("x2").expect("x2"), x2);

        let report = Ensemble::new(&crn, initial, module.classifier().expect("classifier"))
            .options(
                EnsembleOptions::new()
                    .trials(1_200)
                    .master_seed(100 + x1 * 13 + x2)
                    .simulation(module.simulation_options()),
            )
            .run()
            .expect("ensemble");
        for (i, outcome) in module.outcomes().iter().enumerate() {
            assert!(
                (report.probability(outcome) - predicted[i]).abs() < 0.06,
                "X1={x1}, X2={x2}, outcome {outcome}: simulated {} vs predicted {}",
                report.probability(outcome),
                predicted[i]
            );
        }
    }
}

/// Deterministic modules compose through shared species names: a logarithm
/// module's output can feed a linear module, computing `6·log2(x)`.
#[test]
fn chained_logarithm_and_linear_modules_compute_a_scaled_logarithm() {
    let log = logarithm("x", "mid", 100.0).expect("log module");
    let scale = linear(1, 6, "mid", "y", 1_000.0).expect("linear module");
    let crn = Composer::new()
        .add_module(&log)
        .add_module(&scale)
        .build()
        .expect("composition");

    let mut initial = crn.zero_state();
    initial.set(crn.require_species("x").expect("x"), 64);
    for (name, count) in log.seed_counts() {
        initial.set(crn.require_species(name).expect("seed"), *count);
    }
    let result = gillespie::Simulation::new(&crn, gillespie::DirectMethod::new())
        .options(
            gillespie::SimulationOptions::new()
                .seed(7)
                .stop(log.stop_condition().clone())
                .max_events(5_000_000),
        )
        .run(&initial)
        .expect("trajectory");
    // There can be one trailing `mid` molecule still unscaled at the instant
    // the stop condition triggers; accept 6·log2(64) = 36 within one step.
    let y = result
        .final_state
        .count(crn.require_species("y").expect("y"));
    let mid = result
        .final_state
        .count(crn.require_species("mid").expect("mid"));
    let total = y + 6 * mid;
    assert!(
        (total as i64 - 36).abs() <= 6,
        "expected ≈36 output molecules for 6·log2(64), got y={y}, mid={mid}"
    );
}

/// A synthesized response network round-trips through its textual notation:
/// parsing the rendered text yields a network with identical structure.
#[test]
fn synthesized_network_round_trips_through_text() {
    let response = numerics::LogLinearFit::from_coefficients(20.0, 5.0, 0.5);
    let synthesized = LogLinearSynthesizer::new("x", response)
        .outcomes("hi", "lo")
        .outputs("up", "down")
        .thresholds(10, 10)
        .food(30, 30)
        .synthesize()
        .expect("synthesis");
    let text = synthesized.crn().to_text();
    let reparsed: crn::Crn = text.parse().expect("reparse");
    assert_eq!(
        reparsed.reactions().len(),
        synthesized.crn().reactions().len()
    );
    assert_eq!(reparsed.species_len(), synthesized.crn().species_len());
    // Reaction rates survive the round trip.
    let original_rates: Vec<f64> = synthesized
        .crn()
        .reactions()
        .iter()
        .map(|r| r.rate())
        .collect();
    let reparsed_rates: Vec<f64> = reparsed.reactions().iter().map(|r| r.rate()).collect();
    assert_eq!(original_rates, reparsed_rates);
}

/// The synthesizer honours its programmable-response contract for a response
/// with a negative linear coefficient (probability mass moves away from the
/// tracked outcome as the input grows).
#[test]
fn negative_coefficients_reduce_the_tracked_probability() {
    let response = numerics::LogLinearFit::from_coefficients(60.0, 0.0, -2.0);
    let synthesized = LogLinearSynthesizer::new("x", response)
        .outcomes("keep", "drop")
        .outputs("kout", "dout")
        .thresholds(5, 5)
        .food(20, 20)
        .stochastic_gamma(1e6)
        .synthesize()
        .expect("synthesis");

    let probability_at = |x: u64, seed: u64| {
        let initial = synthesized.initial_state(x).expect("state");
        Ensemble::new(
            synthesized.crn(),
            initial,
            synthesized.classifier().expect("classifier"),
        )
        .options(
            EnsembleOptions::new()
                .trials(500)
                .master_seed(seed)
                .simulation(synthesized.simulation_options()),
        )
        .run()
        .expect("ensemble")
        .probability("keep")
    };
    let at_1 = probability_at(1, 7);
    let at_15 = probability_at(15, 9);
    assert!(
        at_1 > at_15 + 0.15,
        "probability should fall with the input: P(1) = {at_1}, P(15) = {at_15}"
    );
    assert!(
        (at_1 - 0.58).abs() < 0.1,
        "P(1) should be near 58%, got {at_1}"
    );
    assert!(
        (at_15 - 0.30).abs() < 0.1,
        "P(15) should be near 30%, got {at_15}"
    );
}
