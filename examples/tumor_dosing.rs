//! The paper's motivating scenario (Section 1.2): engineered bacteria that
//! invade a tumour and must release a drug *probabilistically*, so that only
//! a fraction of the population responds and the total dose stays on target.
//!
//! Each bacterium carries the same synthesized network. The probability of
//! responding is programmed as an affine function of the injected compound
//! quantity `X`:
//!
//! ```text
//! P(respond) = 0.10 + 0.02·X
//! ```
//!
//! so the clinician can raise the responding fraction by injecting more of
//! the compound. The example sweeps the compound quantity and reports the
//! responding fraction of a simulated population.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example tumor_dosing
//! ```

use gillespie::{Ensemble, EnsembleOptions};
use synthesis::{Composer, Preprocessor, StochasticModule, TargetDistribution};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two outcomes per bacterium: release the drug, or stay inert.
    let module = StochasticModule::builder()
        .outcomes(["respond", "inert"])
        .gamma(1_000.0)
        .input_total(100)
        .build()?;

    // Base response: 10 % of bacteria respond with no compound present.
    let base = TargetDistribution::new(vec![0.10, 0.90])?;
    let base_counts = base.to_counts(100);

    // Preprocessing: every compound molecule moves 2 molecules of
    // probability mass (2 %) from "inert" to "respond".
    let preprocessor = Preprocessor::new(2).term("compound", 1, 0, 2)?;
    let crn = Composer::new()
        .add(module.crn())
        .add(&preprocessor.build(1_000.0)?)
        .build()?;

    println!("engineered response: P(respond) = 0.10 + 0.02 * X (compound molecules)\n");
    println!("compound X   predicted   simulated   responders out of 10000");

    for &compound in &[0u64, 5, 10, 20, 30, 45] {
        let predicted =
            preprocessor.predicted_probabilities(&base_counts, &[("compound", compound)])[0];

        let mut initial = crn.zero_state();
        for (i, &count) in base_counts.iter().enumerate() {
            initial.set(crn.require_species(&format!("e{}", i + 1))?, count);
            initial.set(crn.require_species(&format!("f{}", i + 1))?, 100);
        }
        initial.set(crn.require_species("compound")?, compound);

        // Each trial is one bacterium; the population is the ensemble.
        let population = 10_000;
        let report = Ensemble::new(&crn, initial, module.classifier()?)
            .options(
                EnsembleOptions::new()
                    .trials(population)
                    .master_seed(7 + compound)
                    .simulation(module.simulation_options()),
            )
            .run()?;

        println!(
            "{compound:>10}   {predicted:>9.3}   {:>9.4}   {}",
            report.probability("respond"),
            report.count("respond")
        );
    }

    println!("\nEvery bacterium runs the same reactions; the dose is set by chemistry, not by addressing individual cells.");
    Ok(())
}
