//! Exact CME verification, end to end.
//!
//! Run with `cargo run --release --example exact_verification`.
//!
//! Three demonstrations of the `cme` crate as a noise-free oracle:
//!
//! 1. the paper's Example 1 module verified *exactly* — including the
//!    γ-dependent deviation from the target that no ensemble can resolve;
//! 2. an ensemble cross-check: the Monte-Carlo estimate agrees with the
//!    exact law within its own statistical error;
//! 3. a truncated (open) birth–death system, showing the rigorous error
//!    accounting of finite-state-projection bounds.

use stochsynth::cme::{PopulationBounds, StateSpace};
use stochsynth::gillespie::{Ensemble, EnsembleOptions};
use stochsynth::{Crn, StochasticModule};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---------------------------------------------------------------- 1 --
    // Example 1, scaled to 10 input molecules: target {0.3, 0.4, 0.3}.
    // The exact outcome distribution is a first-passage computation on the
    // reachable state space — no trajectories, no tolerance bands.
    println!("── Example 1: exact outcome distribution vs. γ ──");
    let counts = [3u64, 4, 3];
    for gamma in [100.0, 1_000.0, 1e6, 1e9] {
        let module = StochasticModule::builder()
            .outcomes(["T1", "T2", "T3"])
            .gamma(gamma)
            .input_total(10)
            .food(2)
            .decision_threshold(2)
            .build()?;
        let analysis = module.exact_outcome_analysis(&counts, &module.exact_bounds(&counts))?;
        let deviation: f64 = analysis
            .probabilities()
            .iter()
            .zip([0.3, 0.4, 0.3])
            .map(|(p, t)| (p - t).abs())
            .sum::<f64>()
            / 2.0;
        println!(
            "  γ = {gamma:>9.0e}: P = [{:.9}, {:.9}, {:.9}]  |Δ|_TV = {:.2e}  \
             P(never decides) = {:.2e}  ({} states)",
            analysis.probabilities()[0],
            analysis.probabilities()[1],
            analysis.probabilities()[2],
            deviation,
            analysis.undecided(),
            analysis.states(),
        );
    }
    println!("  The deviation falls as 1/γ — the paper's robustness claim, exactly.\n");

    // ---------------------------------------------------------------- 2 --
    // Cross-check one ensemble against the exact law.
    println!("── Ensemble vs. exact law (γ = 1000) ──");
    let module = StochasticModule::builder()
        .outcomes(["T1", "T2", "T3"])
        .gamma(1_000.0)
        .input_total(10)
        .food(2)
        .decision_threshold(2)
        .build()?;
    let exact = module.exact_outcome_distribution(&counts)?;
    let initial = module.initial_state_from_counts(&counts)?;
    let trials = 4_000u64;
    let report = Ensemble::new(module.crn(), initial, module.classifier()?)
        .options(
            EnsembleOptions::new()
                .trials(trials)
                .master_seed(7)
                .simulation(module.simulation_options()),
        )
        .run()?;
    for (i, outcome) in module.outcomes().iter().enumerate() {
        println!(
            "  {outcome}: exact {:.6}   ensemble {:.6} ± {:.4} ({} trials)",
            exact[i],
            report.probability(outcome),
            2.0 * (exact[i] * (1.0 - exact[i]) / trials as f64).sqrt(),
            trials,
        );
    }
    println!();

    // ---------------------------------------------------------------- 3 --
    // An open system needs truncation; the leak is tracked, never hidden.
    println!("── Truncated birth–death: rigorous error accounting ──");
    let crn: Crn = "0 -> a @ 40\na -> 0 @ 1".parse()?;
    for cap in [50u64, 60, 80] {
        let space =
            StateSpace::enumerate(&crn, &crn.zero_state(), &PopulationBounds::truncating(cap))?;
        let solution = space.transient(2.0, 1e-10)?;
        let retained: f64 = solution.probabilities.iter().sum();
        println!(
            "  cap {cap:>3}: retained mass {retained:.12}, leaked {:.3e}, \
             Poisson tail {:.3e}  ({} uniformization terms)",
            solution.leaked, solution.truncation_error, solution.terms,
        );
    }
    println!("  Retained + leaked + tail = 1 exactly; pick the cap by the leak you can accept.");

    Ok(())
}
