//! Computing with molecule counts: the deterministic function modules of
//! Section 2.2 (linear scaling, exponentiation, logarithm, raising to a
//! power, isolation).
//!
//! Each module is a handful of reactions whose *final* molecule counts equal
//! a function of the *initial* counts. They are approximate — accuracy
//! improves with the rate separation between their internal speed bands —
//! and they compose: the lambda-phage model chains fan-out, linear and
//! logarithm modules in front of a stochastic module.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example function_modules
//! ```

use synthesis::modules::{
    exponentiation::exponentiation, isolation::isolation, linear::linear, logarithm::logarithm,
    power::power,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let separation = 100.0;

    println!("linear:  y = x / 6");
    let sixth = linear(6, 1, "x", "y", separation)?;
    for x in [6u64, 24, 60] {
        println!("  x = {x:>3}  ->  y = {}", sixth.evaluate(&[("x", x)], 1)?);
    }

    println!("\nexponentiation:  y = 2^x");
    let exp = exponentiation("x", "y", separation)?;
    for x in [0u64, 1, 3, 5] {
        println!("  x = {x:>3}  ->  y = {}", exp.evaluate(&[("x", x)], 2)?);
    }

    println!("\nlogarithm:  y = log2(x)");
    let log = logarithm("x", "y", separation)?;
    for x in [1u64, 4, 16, 64] {
        println!("  x = {x:>3}  ->  y = {}", log.evaluate(&[("x", x)], 3)?);
    }

    println!("\npower:  y = x^p");
    let pow = power("x", "p", "y", separation)?;
    for (x, p) in [(2u64, 2u64), (3, 2), (2, 3)] {
        println!(
            "  x = {x}, p = {p}  ->  y = {}",
            pow.evaluate(&[("x", x), ("p", p)], 4)?
        );
    }

    println!("\nisolation:  y = 1 (from any starting quantity)");
    let iso = isolation("y", "c", separation * 10.0)?;
    for y0 in [5u64, 50, 500] {
        println!(
            "  y0 = {y0:>3}  ->  y = {}",
            iso.evaluate(&[("y", y0), ("c", 3)], 5)?
        );
    }

    println!("\nThe exact results would be x/6, 2^x, log2(x), x^p and 1; deviations are the");
    println!("price of computing with stochastic chemistry at finite rate separation.");
    Ok(())
}
