//! Choosing a solver: exact SSA vs tau-leaping on a stiff, high-population
//! network, with a distribution-conformance check between the two.
//!
//! Run with `cargo run --release --example tau_leap`.

use std::time::Instant;

use stochsynth::numerics::{histogram_chi_square, histogram_ks, Histogram};
use stochsynth::{Crn, Simulation, SimulationOptions, StepperKind, StopCondition};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A fast reversible isomerisation pair (stiff: it dominates the event
    // count) feeding a slow dimerisation (the observable of interest).
    let crn: Crn = "a -> b @ 50\n\
                    b -> a @ 50\n\
                    2 b -> c @ 0.00001\n\
                    c -> 2 b @ 0.01"
        .parse()?;
    let initial = crn.state_from_counts([("a", 5_000), ("b", 5_000)])?;
    let c = crn.require_species("c")?;

    let trials = 200u64;
    let t_end = 0.2;
    let run = |method: StepperKind| -> Result<(Histogram, f64), Box<dyn std::error::Error>> {
        // Histogram the terminal dimer count across an ensemble of trials.
        let mut hist = Histogram::new(-0.5, 60.5, 61);
        let start = Instant::now();
        for seed in 0..trials {
            let result = Simulation::new(&crn, method.stepper())
                .options(
                    SimulationOptions::new()
                        .seed(seed)
                        .stop(StopCondition::time(t_end)),
                )
                .run(&initial)?;
            hist.add(result.final_state.count(c) as f64);
        }
        Ok((hist, start.elapsed().as_secs_f64()))
    };

    let (exact, t_exact) = run(StepperKind::Direct)?;
    let (leaped, t_leap) = run(StepperKind::TauLeaping)?;

    println!("direct:      {trials} trials in {t_exact:.3} s");
    println!("tau-leaping: {trials} trials in {t_leap:.3} s");
    println!("speedup:     {:.1}x", t_exact / t_leap);

    // The two solvers must sample the same terminal distribution; the
    // conformance harness quantifies "the same".
    let chi = histogram_chi_square(&exact, &leaped)?;
    let ks = histogram_ks(&exact, &leaped)?;
    println!(
        "chi-square:  statistic = {:.2}, dof = {}, p = {:.3}",
        chi.statistic, chi.dof, chi.p_value
    );
    println!(
        "KS:          D = {:.4}, p = {:.3}",
        ks.statistic, ks.p_value
    );
    assert!(
        chi.passes(1e-3) && ks.passes(1e-3),
        "tau-leaping diverged from the exact SSA"
    );
    println!("tau-leaping is distributionally faithful at alpha = 1e-3");
    Ok(())
}
