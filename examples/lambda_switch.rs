//! The lambda bacteriophage lysis/lysogeny switch (Section 3 of the paper):
//! fit the natural model's probabilistic response and synthesize a compact
//! network that reproduces it.
//!
//! The full reproduction of Figure 5 lives in the benchmark harness
//! (`cargo run --release -p bench --bin fig5_lambda_response`); this example
//! is a smaller, faster version of the same flow.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example lambda_switch
//! ```

use lambda::{equation_14, LambdaModel, MoiSweep, NaturalLambdaModel, SyntheticLambdaModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trials = 400;
    let moi_values = [1u64, 2, 4, 6, 8, 10];

    // 1. Characterise the natural model (surrogate) by Monte-Carlo sweep.
    let natural = NaturalLambdaModel::new()?;
    let natural_curve = MoiSweep::new(moi_values)
        .trials(trials)
        .master_seed(11)
        .run(&natural)?;

    // 2. Fit the log-linear response (the analogue of the paper's Eq. 14).
    let fit = natural_curve.fit_log_linear()?;
    println!("fitted response:   {fit}");
    println!("paper Equation 14: 15.000 + 6.000·log2(x) + 0.1667·x\n");

    // 3. Synthesize a compact model from the fit and simulate it.
    let synthetic = SyntheticLambdaModel::from_fit(&fit)?;
    let synthetic_curve = MoiSweep::new(moi_values)
        .trials(trials)
        .master_seed(13)
        .run(&synthetic)?;

    println!("MOI   natural %   synthetic %   Eq14 %");
    let eq14 = equation_14();
    for (n, s) in natural_curve.points().iter().zip(synthetic_curve.points()) {
        println!(
            "{:>3}   {:>9.1}   {:>11.1}   {:>6.1}",
            n.moi,
            100.0 * n.probability,
            100.0 * s.probability,
            eq14.evaluate(n.moi as f64)
        );
    }

    println!(
        "\nnatural surrogate: {} reactions / {} species;  synthesized model: {} reactions / {} species",
        LambdaModel::crn(&natural).reactions().len(),
        LambdaModel::crn(&natural).species_len(),
        LambdaModel::crn(&synthetic).reactions().len(),
        LambdaModel::crn(&synthetic).species_len(),
    );
    Ok(())
}
