//! Robustness landscapes with the model checker's sweep layer.
//!
//! Run with `cargo run --release --example robustness_landscape`.
//!
//! The paper programs Example 1's outcome distribution with a rate
//! hierarchy: initialization runs a factor γ faster than the working
//! reactions. γ is therefore a *robustness knob* — crank it up and the
//! winner-take-all error (the probability that the module never decides)
//! falls off polynomially. This example maps that landscape exactly:
//!
//! 1. sweep γ over a grid, solving the CME at every point
//!    ([`cme::sweep::landscape`]);
//! 2. locate the satisfaction boundary — the γ where the error law crosses
//!    the spec `P(undecided) ≤ 1e-6` — by log-space bisection
//!    ([`cme::sweep::satisfaction_boundary`]);
//! 3. verify a closed-loop antithetic integral controller drives its plant
//!    to the programmed set point, using the same exact machinery.
//!
//! Every number is a deterministic CME solve; the same sweep is available
//! over HTTP as `POST /check` (`stochsynth-cli check --sweep ...`), where
//! each grid point becomes an independently cached, fabric-dispatchable
//! job.

use stochsynth::cme::sweep::{landscape, satisfaction_boundary};
use stochsynth::cme::{CmeError, PopulationBounds};
use stochsynth::synthesis::AntitheticController;
use stochsynth::{Crn, StochasticModule};

/// The exact probability that Example 1 (scaled to 10 inputs) never
/// decides, as a function of the rate-hierarchy separation γ.
fn undecided_mass(gamma: f64) -> Result<f64, CmeError> {
    let counts = [3u64, 4, 3];
    let module = StochasticModule::builder()
        .outcomes(["T1", "T2", "T3"])
        .gamma(gamma)
        .input_total(10)
        .food(2)
        .decision_threshold(2)
        .build()
        .map_err(|e| CmeError::InvalidInput {
            message: e.to_string(),
        })?;
    let analysis = module
        .exact_outcome_analysis(&counts, &module.exact_bounds(&counts))
        .map_err(|e| CmeError::InvalidInput {
            message: e.to_string(),
        })?;
    Ok(analysis.undecided())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---------------------------------------------------------------- 1 --
    println!("── Example 1: undecided-mass landscape over γ ──");
    let grid = [30.0, 100.0, 300.0, 1_000.0, 3_000.0, 10_000.0];
    let scan = landscape(&grid, undecided_mass)?;
    for point in scan.points() {
        println!(
            "  γ = {:>8}:  P(never decides) = {:.6e}",
            point.parameter, point.value
        );
    }
    if let Some((above, below)) = scan.crossing(1e-6) {
        println!(
            "  spec P ≤ 1e-6 first holds between γ = {} and γ = {}",
            above.parameter, below.parameter
        );
    }

    // ---------------------------------------------------------------- 2 --
    println!("\n── Satisfaction boundary: P(undecided) = 1e-6 ──");
    let boundary = satisfaction_boundary(100.0, 1_000.0, 1e-6, 1e-12, undecided_mass)?;
    println!("  boundary γ* = {boundary:.9}");
    println!("  check: P(γ*) = {:.9e}", undecided_mass(boundary)?);

    // ---------------------------------------------------------------- 3 --
    println!("\n── Closed-loop antithetic integral control ──");
    let plant: Crn = "x -> 0 @ 1".parse()?;
    let controller = AntitheticController::new(2.0, 1.0, 100.0, 2.0)?;
    let closed = controller.close_loop(&plant, &plant.zero_state(), "x", "x")?;
    let bounds = PopulationBounds::truncating(14).cap("z1", 8).cap("z2", 8);
    let output = closed.stationary_output(&bounds)?;
    println!("  set point μ/θ       = {}", closed.set_point());
    println!("  stationary E[x]     = {output:.12}");
    println!(
        "  steady-state offset = {:+.3e}",
        output - closed.set_point()
    );
    Ok(())
}
