//! Quickstart for the simulation service: start an in-process server, run
//! an ensemble over HTTP, see the deterministic cache replay it byte for
//! byte, and ask the exact-CME endpoint for the ground truth.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example service_client
//! ```
//!
//! Against a standalone server, the same requests work through the
//! `stochsynth-cli` binary — see the README's *Running as a service*.

use std::time::Duration;

use stochsynth::service::{serve, Client, ServiceConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. An in-process service instance on an ephemeral port.
    let handle = serve(ServiceConfig::default())?;
    println!("service listening on {}", handle.addr());
    let client = Client::new(handle.addr())?;

    // 2. A biased coin as an ensemble job: `wait: true` blocks until the
    //    scheduler has fanned the trials out and merged the report.
    let request = r#"{
        "network": "x -> h @ 3\nx -> t @ 1",
        "initial": {"x": 1},
        "trials": 10000,
        "seed": 7,
        "method": "direct",
        "wait": true,
        "classifier": [
            {"species": "h", "at_least": 1, "outcome": "heads"},
            {"species": "t", "at_least": 1, "outcome": "tails"}
        ]
    }"#;
    let fresh = client.post("/simulate", request).map_err(to_io)?;
    println!(
        "\nPOST /simulate (cache: {}):\n{}",
        fresh.header("cache").unwrap_or("?"),
        fresh.body
    );

    // 3. The identical request replays from the cache, byte for byte.
    let cached = client.post("/simulate", request).map_err(to_io)?;
    assert_eq!(cached.body, fresh.body, "cache replays are byte-identical");
    println!(
        "\nsame request again (cache: {}): body identical = {}",
        cached.header("cache").unwrap_or("?"),
        cached.body == fresh.body
    );

    // 4. The exact answer, for comparison: P(heads) = 3/4 from the CME.
    let exact = client
        .post(
            "/exact",
            r#"{
                "network": "x -> h @ 3\nx -> t @ 1",
                "initial": {"x": 1},
                "bounds": {"policy": "strict", "default_cap": 1},
                "analysis": {"type": "first_passage", "outcomes": [
                    {"name": "heads", "species": "h", "at_least": 1},
                    {"name": "tails", "species": "t", "at_least": 1}
                ]},
                "wait": true
            }"#,
        )
        .map_err(to_io)?;
    println!("\nPOST /exact:\n{}", exact.body);

    // 5. Metrics show the one hit, then drain and stop.
    let metrics = client.get("/metrics").map_err(to_io)?;
    println!("\nGET /metrics:\n{}", metrics.body);
    handle.shutdown(Duration::from_secs(2));
    handle.join();
    println!("\nservice drained cleanly");
    Ok(())
}

fn to_io(message: String) -> std::io::Error {
    std::io::Error::other(message)
}
