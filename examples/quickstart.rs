//! Quickstart: program a probability distribution into a set of chemical
//! reactions and verify it by Monte-Carlo simulation.
//!
//! This is the paper's Example 1: three outcomes produced with probabilities
//! {0.3, 0.4, 0.3}, chosen by a winner-take-all stochastic module whose
//! response is programmed purely through initial molecule counts.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gillespie::{Ensemble, EnsembleOptions};
use synthesis::{StochasticModule, TargetDistribution};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the stochastic module: five categories of reactions per
    //    outcome, with a rate separation of γ = 1000 between the categories.
    let module = StochasticModule::builder()
        .outcomes(["T1", "T2", "T3"])
        .gamma(1_000.0)
        .build()?;

    println!(
        "Synthesized reaction network ({} reactions):\n",
        module.crn().reactions().len()
    );
    println!("{}", module.crn().to_text());

    // 2. Program the target distribution through the initial quantities of
    //    the input species e1, e2, e3 (30, 40 and 30 molecules).
    let target = TargetDistribution::new(vec![0.3, 0.4, 0.3])?;
    let initial = module.initial_state(&target)?;

    // 3. Estimate the outcome distribution with a Monte-Carlo ensemble.
    let report = Ensemble::new(module.crn(), initial, module.classifier()?)
        .options(
            EnsembleOptions::new()
                .trials(5_000)
                .master_seed(2024)
                .simulation(module.simulation_options()),
        )
        .run()?;

    println!("outcome   target   simulated");
    for (i, outcome) in module.outcomes().iter().enumerate() {
        println!(
            "{outcome:>7}   {:>6.3}   {:>9.4}",
            target.probability(i),
            report.probability(outcome)
        );
    }
    println!("\nundecided trajectories: {}", report.undecided);
    Ok(())
}
