//! Fabric drill: an in-process cluster running a million-trial ensemble.
//!
//! Boots N worker daemons plus a sharding coordinator, proves the fabric
//! byte-identical to a single-process run on a pilot job, then streams a
//! large ensemble through the cluster while polling `GET /fabric` for the
//! live Welford statistics — demonstrating that a million-trial job costs
//! the coordinator one `O(1)` partial per shard, never per-trial storage.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example fabric_loadtest -- [workers] [trials] [shard-trials]
//! ```
//!
//! Defaults: 3 workers × 1 000 000 trials in 50 000-trial shards.

use std::time::{Duration, Instant};

use stochsynth::service::{serve, Client, FabricConfig, ServiceConfig, ServiceHandle};

fn simulate_request(seed: u64, trials: u64, wait: bool) -> String {
    format!(
        "{{\"network\":\"x -> h @ 3\\nx -> t @ 1\",\"initial\":{{\"x\":1}},\
         \"trials\":{trials},\"seed\":{seed},\"wait\":{wait},\
         \"classifier\":[\
         {{\"species\":\"h\",\"at_least\":1,\"outcome\":\"heads\"}},\
         {{\"species\":\"t\",\"at_least\":1,\"outcome\":\"tails\"}}]}}"
    )
}

fn field(body: &str, path: &[&str]) -> f64 {
    let mut value = stochsynth::service::json::parse(body).expect("valid JSON");
    for key in path {
        value = value
            .get(key)
            .unwrap_or_else(|| panic!("missing `{key}` in {body}"))
            .clone();
    }
    value.as_f64("field").expect("number")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<u64> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("numeric argument"))
        .collect();
    let pool_size = *args.first().unwrap_or(&3) as usize;
    let trials = *args.get(1).unwrap_or(&1_000_000);
    let shard_trials = *args.get(2).unwrap_or(&50_000);

    let workers: Vec<ServiceHandle> = (0..pool_size)
        .map(|_| serve(ServiceConfig::default()))
        .collect::<Result<_, _>>()?;
    let worker_addrs: Vec<String> = workers.iter().map(|w| w.addr().to_string()).collect();
    let coordinator = serve(ServiceConfig {
        fabric: Some(FabricConfig {
            workers: worker_addrs.clone(),
            shard_trials,
            ..FabricConfig::default()
        }),
        ..ServiceConfig::default()
    })?;
    println!(
        "fabric_loadtest: coordinator {} sharding over {} workers ({})",
        coordinator.addr(),
        pool_size,
        worker_addrs.join(", ")
    );
    let client = Client::new(coordinator.addr())?;

    // Pilot: the fabric must be unobservable in the bytes.
    let single = serve(ServiceConfig::default())?;
    let pilot = simulate_request(7, 20_000, true);
    let reference = Client::new(single.addr())?.post("/simulate", &pilot)?;
    let sharded = client.post("/simulate", &pilot)?;
    assert_eq!(reference.status, 200, "body: {}", reference.body);
    assert_eq!(
        sharded.body, reference.body,
        "sharded pilot diverged from the single-process bytes"
    );
    println!("pilot: 20000-trial sharded run byte-identical to single-process");
    single.shutdown(Duration::from_secs(5));
    single.join();

    // The main event: a large job submitted asynchronously, watched through
    // the fabric's streaming statistics as shards land. The streaming
    // surface is cumulative over the fabric's lifetime, so subtract what
    // the pilot already merged.
    let baseline = client.get("/fabric")?;
    let trials_before = field(&baseline.body, &["streaming", "trials"]) as u64;
    let shards_before = field(&baseline.body, &["shards_completed"]) as u64;
    let started = Instant::now();
    let submitted = client.post("/simulate", &simulate_request(42, trials, false))?;
    assert_eq!(submitted.status, 202, "body: {}", submitted.body);
    let id = field(&submitted.body, &["job"]) as u64;
    loop {
        let status = client.get(&format!("/jobs/{id}"))?;
        let fabric = client.get("/fabric")?;
        let merged = field(&fabric.body, &["streaming", "trials"]) as u64 - trials_before;
        println!(
            "  streamed {merged:>9}/{trials} trials | shards {}/{} | mean_final_time {:.6}",
            field(&fabric.body, &["shards_completed"]) as u64 - shards_before,
            trials.div_ceil(shard_trials),
            field(&fabric.body, &["streaming", "mean_final_time"]),
        );
        if status.header("x-job-state") == Some("completed") {
            break;
        }
        if let Some(state @ ("failed" | "cancelled")) = status.header("x-job-state") {
            return Err(format!("job ended as {state}: {}", status.body).into());
        }
        std::thread::sleep(Duration::from_millis(200));
    }
    let elapsed = started.elapsed();

    let done = client.get(&format!("/jobs/{id}"))?;
    let fabric = client.get("/fabric")?;
    assert_eq!(
        field(&fabric.body, &["streaming", "trials"]) as u64 - trials_before,
        trials,
        "every merged trial must be streamed through the fabric moments"
    );
    println!("\nfabric state:\n{}", fabric.body);
    println!(
        "\nfabric_loadtest: {trials} trials in {:.2}s ({:.0} trials/s) over {} shards; \
         report mean_final_time {:.9}, coordinator held O(shards) partials only",
        elapsed.as_secs_f64(),
        trials as f64 / elapsed.as_secs_f64(),
        field(&fabric.body, &["shards_completed"]) as u64 - shards_before,
        field(&done.body, &["report", "mean_final_time"]),
    );

    coordinator.shutdown(Duration::from_secs(5));
    coordinator.join();
    for worker in workers {
        worker.shutdown(Duration::from_secs(5));
        worker.join();
    }
    println!("fabric_loadtest passed");
    Ok(())
}
