//! Solver choice at scale: composition–rejection on generated networks.
//!
//! ```sh
//! cargo run --release --example large_networks
//! ```
//!
//! Builds a family of `crn::generators` networks of growing size and times
//! one trajectory budget (5000 events) per exact stepper on each. The
//! direct method's cost grows linearly with the reaction count; the
//! composition–rejection method stays flat because its two-level draw
//! (pick a log₂ propensity group, then rejection-sample inside it) never
//! looks at more than a few dozen group sums — no matter how many channels
//! the network has. A cross-check at the end verifies the steppers agree
//! on what they simulate, not just how fast they do it.

use std::time::Instant;

use stochsynth::crn::generators::{gene_regulatory_tree, reversible_chain, GeneratedSystem};
use stochsynth::gillespie::{Ensemble, EnsembleOptions, SpeciesThresholdClassifier};
use stochsynth::{Simulation, SimulationOptions, StepperKind, StopCondition};

fn time_one(system: &GeneratedSystem, method: StepperKind, trials: u64) -> f64 {
    let start = Instant::now();
    for seed in 0..trials {
        Simulation::new(&system.crn, method.stepper())
            .options(
                SimulationOptions::new()
                    .seed(seed)
                    .stop(StopCondition::events(5_000)),
            )
            .run(&system.initial)
            .expect("trajectory");
    }
    start.elapsed().as_secs_f64() * 1e3 / trials as f64
}

fn main() {
    let methods = [
        StepperKind::Direct,
        StepperKind::NextReaction,
        StepperKind::CompositionRejection,
    ];

    println!("ms per 5000-event trajectory (lower is better):\n");
    println!(
        "{:<22} {:>10} {:>10} {:>14} {:>22}",
        "network", "reactions", "direct", "next-reaction", "composition-rejection"
    );
    for &length in &[50usize, 200, 1000, 2000] {
        let system = reversible_chain(length, 1.0, 0.5, 200);
        let times: Vec<f64> = methods.iter().map(|&m| time_one(&system, m, 5)).collect();
        println!(
            "{:<22} {:>10} {:>10.2} {:>14.2} {:>22.2}",
            format!("chain_{length}"),
            system.crn.reactions().len(),
            times[0],
            times[1],
            times[2]
        );
    }
    let tree = gene_regulatory_tree(5, 3, 0.2, 0.5, 8.0, 1.0);
    let times: Vec<f64> = methods.iter().map(|&m| time_one(&tree, m, 5)).collect();
    println!(
        "{:<22} {:>10} {:>10.2} {:>14.2} {:>22.2}",
        "gene_tree(depth 5)",
        tree.crn.reactions().len(),
        times[0],
        times[1],
        times[2]
    );

    // Speed means nothing if the samplers disagree: estimate the same
    // outcome probability with the O(R) reference and the O(1) selector.
    println!("\ncross-check: P(root protein p0 ≥ 10 by t = 4) on the gene tree");
    let estimate = |method: StepperKind| -> f64 {
        let classifier = SpeciesThresholdClassifier::new()
            .rule_named(&tree.crn, "p0", 10, "expressed")
            .expect("rule");
        Ensemble::new(&tree.crn, tree.initial.clone(), classifier)
            .options(
                EnsembleOptions::new()
                    .trials(2_000)
                    .master_seed(7)
                    .method(method)
                    .simulation(SimulationOptions::new().stop(StopCondition::time(4.0))),
            )
            .run()
            .expect("ensemble")
            .probability("expressed")
    };
    let p_direct = estimate(StepperKind::Direct);
    let p_cr = estimate(StepperKind::CompositionRejection);
    println!("  direct:                {p_direct:.4}");
    println!("  composition-rejection: {p_cr:.4}");
    assert!(
        (p_direct - p_cr).abs() < 0.05,
        "steppers disagree: {p_direct} vs {p_cr}"
    );
    println!("  agreement within Monte-Carlo error — same law, O(1) selection.");
}
