//! Load generator: N concurrent clients hammering an in-process service.
//!
//! Each client thread submits ensemble jobs (unique seeds, so every one is
//! a cache miss), polls them to completion and verifies the served report
//! against a single-threaded library run. The driver records the peak
//! number of in-flight jobs observed on the scheduler and fails loudly on
//! any divergence, deadlock (via timeout) or failed job.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example loadtest -- [clients] [jobs-per-client] [trials]
//! ```
//!
//! Defaults: 64 clients × 2 jobs × 20 000 trials — comfortably past the
//! acceptance bar of 64 concurrent in-flight jobs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use stochsynth::gillespie::{
    Ensemble, EnsembleOptions, SimulationOptions, SpeciesThresholdClassifier,
};
use stochsynth::service::{serve, Client, ServiceConfig};

const NETWORK: &str = "x -> h @ 3\nx -> t @ 1";

fn simulate_request(seed: u64, trials: u64) -> String {
    format!(
        "{{\"network\":\"x -> h @ 3\\nx -> t @ 1\",\"initial\":{{\"x\":1}},\
         \"trials\":{trials},\"seed\":{seed},\"priority\":{},\
         \"classifier\":[\
         {{\"species\":\"h\",\"at_least\":1,\"outcome\":\"heads\"}},\
         {{\"species\":\"t\",\"at_least\":1,\"outcome\":\"tails\"}}]}}",
        seed % 10
    )
}

fn field(body: &str, path: &[&str]) -> f64 {
    let mut value = stochsynth::service::json::parse(body).expect("valid JSON");
    for key in path {
        value = value
            .get(key)
            .unwrap_or_else(|| panic!("missing `{key}` in {body}"))
            .clone();
    }
    value.as_f64("field").expect("number")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<u64> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("numeric argument"))
        .collect();
    let clients = *args.first().unwrap_or(&64) as usize;
    let jobs_per_client = *args.get(1).unwrap_or(&2);
    let trials = *args.get(2).unwrap_or(&20_000);

    let handle = serve(ServiceConfig {
        queue_capacity: clients * jobs_per_client as usize + 16,
        ..ServiceConfig::default()
    })?;
    println!(
        "loadtest: {clients} clients x {jobs_per_client} jobs x {trials} trials against {}",
        handle.addr()
    );

    let peak_in_flight = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let mut threads = Vec::new();
    for client_index in 0..clients {
        let addr = handle.addr();
        let peak = Arc::clone(&peak_in_flight);
        threads.push(std::thread::spawn(move || -> Result<u64, String> {
            let client = Client::new(addr)?;
            let mut completed = 0u64;
            for job_index in 0..jobs_per_client {
                let seed = client_index as u64 * 10_000 + job_index;
                let submitted = client.post("/simulate", &simulate_request(seed, trials))?;
                if submitted.status != 202 {
                    return Err(format!(
                        "seed {seed}: submit returned HTTP {}: {}",
                        submitted.status, submitted.body
                    ));
                }
                let id = field(&submitted.body, &["job"]) as u64;

                // Sample the scheduler occupancy while the job is in flight.
                let metrics = client.get("/metrics")?;
                let in_flight = field(&metrics.body, &["scheduler", "queued"])
                    + field(&metrics.body, &["scheduler", "running"]);
                peak.fetch_max(in_flight as u64, Ordering::Relaxed);

                let done = client.get(&format!("/jobs/{id}?wait=1"))?;
                if done.header("x-job-state") != Some("completed") {
                    return Err(format!(
                        "seed {seed}: job ended as {:?}",
                        done.header("x-job-state")
                    ));
                }

                // Conformance: the served report must match a fresh
                // single-threaded run bit for bit.
                let crn: crn::Crn = NETWORK.parse().expect("network");
                let initial = crn.state_from_counts([("x", 1)]).expect("state");
                let classifier = SpeciesThresholdClassifier::new()
                    .rule_named(&crn, "h", 1, "heads")
                    .expect("rule")
                    .rule_named(&crn, "t", 1, "tails")
                    .expect("rule");
                let reference = Ensemble::new(&crn, initial, classifier)
                    .options(
                        EnsembleOptions::new()
                            .trials(trials)
                            .master_seed(seed)
                            .threads(1)
                            .simulation(SimulationOptions::new().max_events(10_000_000)),
                    )
                    .run()
                    .map_err(|e| e.to_string())?;
                let served_heads = field(&done.body, &["report", "counts", "heads"]) as u64;
                let served_time = field(&done.body, &["report", "mean_final_time"]);
                if served_heads != reference.count("heads")
                    || served_time != reference.mean_final_time
                {
                    return Err(format!(
                        "seed {seed}: served report diverged from the single-threaded run \
                         (heads {served_heads} vs {}, mean_final_time {served_time} vs {})",
                        reference.count("heads"),
                        reference.mean_final_time
                    ));
                }
                completed += 1;
            }
            Ok(completed)
        }));
    }

    let mut total_jobs = 0u64;
    for thread in threads {
        total_jobs += thread.join().expect("client thread")?;
    }
    let elapsed = started.elapsed();

    let client = Client::new(handle.addr())?;
    let metrics = client.get("/metrics").map_err(std::io::Error::other)?;
    println!("\nfinal metrics:\n{}", metrics.body);
    println!(
        "\nloadtest: {total_jobs} jobs x {trials} trials in {:.2}s \
         ({:.1} jobs/s, {:.0} trials/s), peak in-flight {} jobs, steals {}",
        elapsed.as_secs_f64(),
        total_jobs as f64 / elapsed.as_secs_f64(),
        (total_jobs * trials) as f64 / elapsed.as_secs_f64(),
        peak_in_flight.load(Ordering::Relaxed),
        field(&metrics.body, &["scheduler", "steals"]),
    );
    assert_eq!(
        field(&metrics.body, &["scheduler", "failed"]),
        0.0,
        "no job may fail under load"
    );

    handle.shutdown(Duration::from_secs(5));
    handle.join();
    println!("loadtest passed: no divergence, no deadlock, no failed jobs");
    Ok(())
}
